"""Benchmark harness: Figure 8 — tDVFS with the traditional fan.

Regenerates the LU.A.4 run (traditional fan capped at 25 %, 51 °C
trigger) and asserts the figure's narrative: one deliberate scale-down
when the average temperature is consistently above threshold, one
restore when the lighter phase cools the plant, and no reaction to
short-term spikes.
"""

import pytest

from repro.experiments import fig08_tdvfs_static_fan as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_fig08_tdvfs_static_fan(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    benchmark.extra_info["freq_changes"] = result.freq_changes
    benchmark.extra_info["trigger_time"] = result.trigger_time
    benchmark.extra_info["restore_time"] = result.restore_time
    benchmark.extra_info["max_temp"] = round(result.max_temp, 2)

    # -- shape claims ------------------------------------------------------
    # 1. the scale-down happens, and it is the single-step 2.4 -> 2.2
    assert result.trigger_time is not None
    assert result.trigger_ghz == pytest.approx(2.2)
    # 2. it fires near the 51 degC threshold, not at the first sample
    assert result.temp_at_trigger == pytest.approx(51.0, abs=2.0)
    assert result.trigger_time > 10.0
    # 3. the restore follows in the lighter phase
    assert result.restore_time is not None
    assert result.restore_time > result.trigger_time
    # 4. exactly one down + one up: spikes drew nothing extra
    assert result.freq_changes == 2
    # 5. the frequency path is exactly down-then-up
    ghzs = [g for _, g in result.frequency_path]
    assert ghzs == [pytest.approx(2.2), pytest.approx(2.4)]
