"""Benchmark harness: seed-robustness of the Table-1 claims.

Reruns the central comparison across five independent platform seeds
and asserts which of the paper's claims are noise-robust — error bars
the original single-run evaluation could not provide.
"""

from repro.experiments import robustness as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_robustness(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    n = result.n_seeds
    for claim, count in result.claim_holds.items():
        benchmark.extra_info[claim] = f"{count}/{n}"

    # -- robustness claims -----------------------------------------------
    assert n >= 5
    # 1. the change-count reduction holds in EVERY seed
    assert result.claim_holds["changes_reduced_99pct"] == n
    # 2. in the regimes where the fan is genuinely limited, tDVFS's
    #    power win holds in every seed ...
    assert result.claim_holds["power_win_at_weak_fans"] == n
    # 3. ... and so does the 25 %-cap power-delay win
    assert result.claim_holds["pdp_win_at_25pct"] == n
    # 4. at 50/75 % the PDP gap stays inside the statistical tie band
    assert result.claim_holds["pdp_within_1.5pct_at_50_75"] == n
    # 5. the aggregated metrics stay in the paper's absolute bands
    for cap in (0.75, 0.50, 0.25):
        for daemon in ("cpuspeed", "tdvfs"):
            power = result.summary(daemon, cap, "power")
            assert 88.0 < power.low and power.high < 106.0
            time = result.summary(daemon, cap, "time")
            assert 205.0 < time.low and time.high < 250.0