"""Benchmark harness: fan-failure / thermal-emergency avoidance.

Extension experiment (the reliability scenario the paper's introduction
motivates but never injects): node 0's fan seizes mid-run and three
control strategies face the consequences under realistic hardware
protection (PROCHOT at 85 °C, THERMTRIP at 97 °C).
"""

from repro.experiments import emergency as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_emergency(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    for row in result.rows:
        benchmark.extra_info[f"{row.strategy}_prochot"] = row.prochot_count
        benchmark.extra_info[f"{row.strategy}_max_temp"] = round(row.max_temp, 1)
        benchmark.extra_info[f"{row.strategy}_gcycles"] = round(
            row.retired_gcycles, 1
        )

    stock = result.row("stock")
    ondemand = result.row("ondemand")
    cpuspeed = result.row("cpuspeed")
    unified = result.row("unified")

    # -- shape claims -------------------------------------------------------
    # 1. with no OS thermal daemon, the hardware emergency fires
    assert stock.prochot_count >= 1
    assert stock.max_temp >= 84.0
    # 2. a temperature-blind utilization governor is no protection at
    #    all: ondemand holds 2.4 GHz into the danger zone and racks up
    #    the most thermal stress
    assert ondemand.final_ghz == 2.4
    assert ondemand.max_temp >= 84.0
    assert ondemand.stress_ks >= max(cpuspeed.stress_ks, unified.stress_ks)
    # 3. the unified controller keeps the node out of hardware
    #    protection entirely — the paper's reliability promise
    assert unified.prochot_count == 0
    assert not unified.thermtrip
    assert unified.max_temp < 80.0
    assert unified.stress_ks < 0.2
    # 4. it does so *deliberately*: the in-band path walked down
    assert unified.tdvfs_triggers >= 2
    assert unified.final_ghz <= 1.8
    # 5. nobody lost the node
    assert not any(r.thermtrip for r in result.rows)
    # 6. among the *thermally safe* strategies, unified salvages the
    #    most work on the failed node
    assert unified.retired_gcycles > cpuspeed.retired_gcycles
