"""Baseline the batched (lockstep) fastpath on the fig07 sweep.

Times the Figure-7 four-cap sweep through the serial fastpath (v1: one
compiled run at a time) and through the batched fastpath
(:mod:`repro.fastpath.batch`: all four runs advanced in lockstep with
one stacked thermal solve per tick), verifies the batched results are
bitwise identical to the serial-fastpath ones — execution times, full
trace sets, events and per-node summaries — **before** trusting any
timing, and writes ``BENCH_batch.json`` so future PRs can compare
against this PR's numbers::

    PYTHONPATH=src python benchmarks/bench_batch.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_batch.py --quick    # smoke

The acceptance gate is a **1.5x speedup** of the batched leg over the
serial-fastpath leg (the bench exits non-zero below the floor).  Both
legs are single-process, single-core work — the gate holds on any
host, single-CPU included (matching the caveat recorded in the other
BENCH files).  Serial-fastpath equivalence to the *reference* engine is
the previous bench's gate (BENCH_fastpath.json), so the chain
reference == fastpath == batch is checked end to end across the two.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.experiments import fig07_max_pwm
from repro.runtime import DEFAULT_SEED, RunExecutor

SPEEDUP_FLOOR = 1.5


def _time_sweep(specs, repeats: int, batch: bool):
    """Median sweep wall time (seconds) and the last sweep's results."""
    walls, results = [], None
    for _ in range(repeats):
        executor = RunExecutor(fastpath=True, batch=batch)
        t0 = time.perf_counter()
        results = executor.map(specs)
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls), results


def _assert_equivalent(serial, batched) -> None:
    """Bitwise result equality; raises AssertionError with the field."""
    for i, (ref, bat) in enumerate(zip(serial, batched)):
        assert bat.execution_time == ref.execution_time, f"run {i}: time"
        assert bat.average_power == ref.average_power, f"run {i}: power"
        assert bat.energy_joules == ref.energy_joules, f"run {i}: energy"
        assert bat.retired_cycles == ref.retired_cycles, f"run {i}: cycles"
        assert bat.node_shutdown == ref.node_shutdown, f"run {i}: shutdown"
        assert sorted(bat.traces.names()) == sorted(ref.traces.names())
        for name in ref.traces.names():
            rt, bt = ref.traces[name], bat.traces[name]
            assert (bt.times == rt.times).all(), f"run {i}: {name} times"
            assert (bt.values == rt.values).all(), f"run {i}: {name} values"
        assert len(bat.events) == len(ref.events), f"run {i}: event count"
        for ea, eb in zip(ref.events, bat.events):
            assert str(ea) == str(eb), f"run {i}: event {ea}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_batch.json"
        ),
    )
    args = parser.parse_args(argv)

    repeats = 5 if args.quick else 3
    specs = fig07_max_pwm.specs(seed=args.seed, quick=args.quick)
    print(f"fig07 sweep: {len(specs)} runs, {repeats} repeats per leg")

    serial_s, serial_results = _time_sweep(specs, repeats, batch=False)
    print(f"fastpath v1 (serial) : {serial_s:7.2f}s median")
    batch_s, batch_results = _time_sweep(specs, repeats, batch=True)
    print(f"fastpath v2 (batched): {batch_s:7.2f}s median")

    print("verifying result equivalence ...", end=" ")
    _assert_equivalent(serial_results, batch_results)
    print("identical")

    speedup = serial_s / batch_s if batch_s > 0 else float("inf")
    ok = speedup >= SPEEDUP_FLOOR
    print(f"speedup   : {speedup:6.2f}x  (gate >= {SPEEDUP_FLOOR}x)")
    print("gate      :", "PASS" if ok else "FAIL")

    payload = {
        "benchmark": "batched fastpath (lockstep sweep), fig07 max-PWM caps",
        "runs": len(specs),
        "quick": args.quick,
        "seed": args.seed,
        "repeats": repeats,
        "fastpath_wall_s": round(serial_s, 3),
        "batch_wall_s": round(batch_s, 3),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "equivalent": True,
        "gate": "pass" if ok else "fail",
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
