"""Benchmark harness: Figure 5 — dynamic fan control, P_p sweep.

Regenerates the cpu-burn × 3 protocol under P_p ∈ {75, 50, 25} and
asserts the paper's orderings: smaller P_p → cooler and more fan; the
controller reacts to sudden events but not to jitter.

Paper's reference numbers: mean PWM duty 36 / 53 / 70 % for
P_p = 75 / 50 / 25 (our plant runs hotter, so the duties sit higher,
but the ordering and spacing reproduce — see EXPERIMENTS.md).
"""

from repro.experiments import fig05_fan_pp as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_fig05_fan_pp(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    for row in result.rows:
        benchmark.extra_info[f"pp{row.pp}_mean_temp"] = round(row.mean_temp, 2)
        benchmark.extra_info[f"pp{row.pp}_mean_duty_pct"] = round(
            row.mean_duty * 100, 1
        )

    # -- shape claims -----------------------------------------------------
    # 1. smaller P_p holds lower temperature
    assert (
        result.row(25).mean_temp
        < result.row(50).mean_temp
        < result.row(75).mean_temp
    )
    # 2. ... by spending more fan
    assert (
        result.row(25).mean_duty
        > result.row(50).mean_duty
        > result.row(75).mean_duty
    )
    # 3. the duty spread is material (the knob has real authority)
    assert result.row(25).mean_duty - result.row(75).mean_duty > 0.10
    # 4. sudden events move the fan decisively; jitter produces no
    #    systematic motion (per-round wobble is mean-reverting)
    for row in result.rows:
        assert row.duty_move_sudden > 0.0
        assert abs(row.duty_net_jitter) < 0.5 * row.duty_move_sudden
