"""Measure the telemetry subsystem's overhead, on and off.

Two views, written to ``BENCH_telemetry.json`` so future PRs can
compare against this PR's numbers::

    PYTHONPATH=src python benchmarks/bench_telemetry.py            # full
    PYTHONPATH=src python benchmarks/bench_telemetry.py --quick    # smoke

* **Simulation leg** — the same spec executed repeatedly with
  telemetry disabled (the default path: every recorder call early
  returns against the null registry) and enabled (events + metrics
  recorded); reports median wall time of each and the enabled
  overhead.
* **Hot-path leg** — nanoseconds per ``ProvenanceRecorder`` round
  call, disabled vs enabled.  The disabled per-call cost times the
  actual number of control rounds in the simulation leg gives the
  total time a run spends in disabled telemetry calls; the acceptance
  gate is that this stays **under 5% of the run's wall time** (it is
  orders of magnitude under — the bench exits non-zero if not).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.runtime import DEFAULT_SEED, RunSpec, execute_spec
from repro.sim.events import EventLog
from repro.telemetry import MetricsRegistry, ProvenanceRecorder


def bench_spec(seed: int, duration: float, telemetry: bool) -> RunSpec:
    return RunSpec.of(
        "mixed_thermal_profile",
        {"duration": duration},
        rigs=["dynamic_fan"],
        n_nodes=1,
        seed=seed,
        timeout=600.0,
        telemetry=telemetry,
    )


def _time_runs(spec: RunSpec, repeats: int):
    execute_spec(spec)  # warmup: imports, allocator and cache effects
    walls, result = [], None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = execute_spec(spec)
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls), result


def _time_round_calls(recorder: ProvenanceRecorder, calls: int) -> float:
    """Median ns per control_round call over three timing passes."""
    passes = []
    for _ in range(3):
        t0 = time.perf_counter()
        for i in range(calls):
            recorder.control_round(
                float(i),
                delta_l1=0.4,
                delta_l2=-0.2,
                via="l1",
                slot=8,
                target_slot=9,
                mode=0.12,
                target_mode=0.15,
                n_p=3,
                array_size=100,
            )
        passes.append((time.perf_counter() - t0) / calls * 1e9)
    return statistics.median(passes)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"
        ),
    )
    args = parser.parse_args(argv)

    duration = 60.0 if args.quick else 300.0
    repeats = 3 if args.quick else 5
    calls = 50_000 if args.quick else 200_000

    print(f"simulation leg: duration={duration:.0f}s sim, {repeats} repeats")
    off_wall, _ = _time_runs(bench_spec(args.seed, duration, False), repeats)
    print(f"telemetry off : {off_wall * 1e3:8.1f} ms median wall")
    on_wall, on_result = _time_runs(
        bench_spec(args.seed, duration, True), repeats
    )
    print(f"telemetry on  : {on_wall * 1e3:8.1f} ms median wall")
    enabled_overhead_pct = (on_wall - off_wall) / off_wall * 100.0
    print(f"enabled overhead: {enabled_overhead_pct:+.1f}%")

    rounds = int(on_result.telemetry.total("ctrl.rounds"))
    print(f"\nhot-path leg: {calls} round calls x3 passes, {rounds} rounds/run")
    off_ns = _time_round_calls(
        ProvenanceRecorder(EventLog(), None, "bench", "fan"), calls
    )
    on_ns = _time_round_calls(
        ProvenanceRecorder(EventLog(), MetricsRegistry(), "bench", "fan"),
        calls,
    )
    print(f"disabled call : {off_ns:8.1f} ns")
    print(f"enabled call  : {on_ns:8.1f} ns")

    disabled_run_s = off_ns * 1e-9 * rounds
    disabled_overhead_pct = disabled_run_s / off_wall * 100.0
    print(
        f"disabled path : {disabled_run_s * 1e6:.1f} us per run "
        f"({disabled_overhead_pct:.4f}% of wall, gate <5%)"
    )
    ok = disabled_overhead_pct < 5.0
    print("gate          :", "PASS" if ok else "FAIL")

    payload = {
        "benchmark": "telemetry overhead (mixed_thermal_profile/dynamic_fan)",
        "quick": args.quick,
        "seed": args.seed,
        "sim_duration_s": duration,
        "repeats": repeats,
        "wall_off_ms": round(off_wall * 1e3, 2),
        "wall_on_ms": round(on_wall * 1e3, 2),
        "enabled_overhead_pct": round(enabled_overhead_pct, 2),
        "round_call_disabled_ns": round(off_ns, 1),
        "round_call_enabled_ns": round(on_ns, 1),
        "rounds_per_run": rounds,
        "disabled_overhead_pct": round(disabled_overhead_pct, 5),
        "disabled_gate_pct": 5.0,
        "disabled_gate": "pass" if ok else "fail",
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
