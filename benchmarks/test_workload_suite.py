"""Benchmark harness: workload-suite thermal signatures.

The paper's fourth contribution — application behaviour creates the
thermal/power opportunity — quantified across EP/BT/MG/CG under the
hybrid controller vs CPUSPEED.
"""

from repro.experiments import workload_suite as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_workload_suite(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    for row in result.rows:
        benchmark.extra_info[f"{row.workload}_util"] = round(row.mean_util, 2)
        benchmark.extra_info[f"{row.workload}_T_hybrid"] = round(
            row.hybrid_mean_temp, 1
        )
        benchmark.extra_info[f"{row.workload}_chg_cpuspeed"] = row.cpuspeed_changes

    ep = result.row("EP.B.4")
    bt = result.row("BT.B.4")
    mg = result.row("MG.B.4")
    cg = result.row("CG.B.4")

    # -- shape claims -----------------------------------------------------
    # 1. the suite spans a real utilization gradient ...
    assert ep.mean_util > bt.mean_util > mg.mean_util > cg.mean_util
    assert ep.mean_util - cg.mean_util > 0.2
    # 2. ... which maps onto a thermal gradient (the "opportunity")
    assert (
        ep.hybrid_mean_temp
        > bt.hybrid_mean_temp
        > mg.hybrid_mean_temp
        > cg.hybrid_mean_temp
    )
    # 3. utilization governors are wildly workload-dependent — their
    #    change counts swing by orders of magnitude across the suite
    counts = [r.cpuspeed_changes for r in result.rows]
    assert max(counts) > 100
    assert min(counts) < 30
    # 4. the unified controller's behaviour is workload-*insensitive*:
    #    a handful of deliberate changes everywhere
    assert all(r.hybrid_changes <= 5 for r in result.rows)
    # 5. and it never pays an energy premium for that stability
    for row in result.rows:
        assert row.hybrid_energy_kj <= row.cpuspeed_energy_kj * 1.01
