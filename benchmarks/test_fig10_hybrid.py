"""Benchmark harness: Figure 10 — hybrid fan + tDVFS, shared P_p.

Regenerates the §4.4 experiment: BT.B.4 under the combined controller
with one P_p ∈ {25, 50, 75} shared by both techniques (fan capped at
50 %).  Asserts the paper's three observations: smaller P_p is cooler,
triggers the in-band technique *later* (the coordination effect),
scales deeper when it does (2.4 → 2.0 GHz at P_p = 25), and pays the
longest — but still small (paper: 4.76 %) — execution-time cost.
"""

from repro.experiments import fig10_hybrid as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_fig10_hybrid(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    for row in result.rows:
        benchmark.extra_info[f"pp{row.pp}_exec_time"] = round(row.execution_time, 1)
        benchmark.extra_info[f"pp{row.pp}_mean_temp"] = round(row.mean_temp, 2)
        benchmark.extra_info[f"pp{row.pp}_first_trigger"] = row.first_trigger
        benchmark.extra_info[f"pp{row.pp}_min_ghz"] = row.min_ghz
    benchmark.extra_info["exec_spread_pct"] = round(
        result.performance_spread * 100, 2
    )

    # -- shape claims ----------------------------------------------------
    # 1. smaller P_p controls temperature more effectively
    assert (
        result.row(25).mean_temp
        < result.row(50).mean_temp
        < result.row(75).mean_temp
    )
    # 2. coordination: aggressive fan defers the in-band trigger
    assert result.row(25).first_trigger is not None
    assert result.row(75).first_trigger is not None
    assert result.row(25).first_trigger > result.row(75).first_trigger
    # 3. aggressive policy scales deeper when it finally acts
    assert result.row(25).min_ghz < result.row(50).min_ghz
    # 4. P_p=25 pays the longest execution, but the spread stays small
    times = {r.pp: r.execution_time for r in result.rows}
    assert times[25] == max(times.values())
    assert 0.0 < result.performance_spread < 0.08
