"""Benchmark harness: cluster-size scaling (the paper's §5 future work).

Weak-scales a BT-like workload over 4 → 32 nodes under the hybrid
controller with a 5 K rack inlet gradient.  Asserts that per-node
control keeps working at scale: the hottest node stays bounded,
triggers concentrate in the warm top half of the rack, and
execution-time dilation from barrier coupling stays small.
"""

from repro.experiments import scaling as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_scaling(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    for row in result.rows:
        benchmark.extra_info[f"n{row.n_nodes}_exec"] = round(row.execution_time, 1)
        benchmark.extra_info[f"n{row.n_nodes}_hottest"] = round(
            row.hottest_end_temp, 2
        )
        benchmark.extra_info[f"n{row.n_nodes}_triggers"] = row.triggers

    smallest = result.rows[0]
    largest = result.rows[-1]

    # -- shape claims ---------------------------------------------------
    # 1. weak scaling: execution time dilates only mildly with size
    assert largest.execution_time < smallest.execution_time * 1.10
    # 2. control effectiveness is scale-invariant: the hottest node at
    #    32 nodes is no worse than at 4 nodes (+1 K tolerance)
    assert largest.hottest_end_temp <= smallest.hottest_end_temp + 1.0
    # 3. the rack gradient shows: hottest - coldest spread is real
    assert largest.hottest_end_temp - largest.coldest_end_temp > 1.0
    # 4. thermal triggers track the gradient: the warm top half
    #    triggers at least as much as the cool bottom half
    for row in result.rows:
        assert row.triggers_top_half >= row.triggers_bottom_half
    # 5. trigger volume grows with node count (per-node control, not a
    #    global bottleneck)
    assert largest.triggers > smallest.triggers
