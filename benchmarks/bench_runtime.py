"""Baseline the runtime layer's fan-out and cache on the fig07 sweep.

Times the Figure-7 four-cap sweep three ways — serially (``jobs=1``,
the historical execution path), across a process pool, and out of a
warm result cache — verifies the parallel results are identical to the
serial ones, and writes ``BENCH_runtime.json`` so future PRs can
compare against this PR's numbers::

    PYTHONPATH=src python benchmarks/bench_runtime.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_runtime.py --quick    # smoke

The JSON records the run count, the wall time of each leg, the
parallel and cache speedups, the pool-reuse comparison (two sweeps on
fresh executors vs two sweeps sharing one persistent worker pool), and
the host's CPU count.  The parallel
acceptance floor is a 1.5x speedup at ``--jobs 4`` — reachable only
when the host actually has cores to fan out over (``cpus >= 2``); on a
single-core host the pool can only add overhead, and the report says
so rather than pretending otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import fig07_max_pwm
from repro.runtime import DEFAULT_SEED, RunExecutor


def _time_sweep(specs, jobs: int, cache_dir=None):
    executor = RunExecutor(jobs=jobs, cache_dir=cache_dir)
    t0 = time.perf_counter()
    executor.map(specs)
    wall = time.perf_counter() - t0
    executor.close()
    return wall, executor.effective_jobs


def _time_pool_reuse(specs, jobs: int):
    """Two back-to-back sweeps: fresh executor each vs one reused pool."""
    t0 = time.perf_counter()
    for _ in range(2):
        executor = RunExecutor(jobs=jobs)
        executor.map(specs)
        executor.close()
    fresh = time.perf_counter() - t0
    executor = RunExecutor(jobs=jobs)
    t0 = time.perf_counter()
    for _ in range(2):
        executor.map(specs)
    reused = time.perf_counter() - t0
    executor.close()
    return fresh, reused


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4, metavar="N")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_runtime.json"),
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    specs = fig07_max_pwm.specs(seed=args.seed, quick=args.quick)
    print(f"fig07 sweep: {len(specs)} runs, jobs={args.jobs}, cpus={cpus}")

    serial_s, _ = _time_sweep(specs, jobs=1)
    print(f"serial   : {serial_s:7.2f}s")
    parallel_s, effective_jobs = _time_sweep(specs, jobs=args.jobs)
    clamp_note = (
        f" (clamped to {effective_jobs} worker(s))"
        if effective_jobs < args.jobs
        else ""
    )
    print(f"parallel : {parallel_s:7.2f}s{clamp_note}")
    with tempfile.TemporaryDirectory() as cache_dir:
        _time_sweep(specs, jobs=1, cache_dir=cache_dir)  # warm
        cached_s, _ = _time_sweep(specs, jobs=1, cache_dir=cache_dir)
    print(f"cached   : {cached_s:7.2f}s")
    fresh_s, reused_s = _time_pool_reuse(specs, jobs=args.jobs)
    print(f"2 sweeps, fresh pools : {fresh_s:7.2f}s")
    print(f"2 sweeps, reused pool : {reused_s:7.2f}s")

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cache_speedup = serial_s / cached_s if cached_s > 0 else float("inf")
    print(f"parallel speedup : {speedup:6.2f}x")
    print(f"cache speedup    : {cache_speedup:6.2f}x")
    if cpus < 2:
        print(
            "note: single-CPU host — process fan-out cannot beat serial "
            "here; the parallel figure below is overhead, not capability"
        )

    payload = {
        "benchmark": "fig07 max-PWM cap sweep",
        "runs": len(specs),
        "jobs": args.jobs,
        "effective_jobs": effective_jobs,
        "cpus": cpus,
        "quick": args.quick,
        "seed": args.seed,
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "cached_wall_s": round(cached_s, 3),
        "speedup": round(speedup, 3),
        "cache_speedup": round(cache_speedup, 3),
        "pool_fresh_wall_s": round(fresh_s, 3),
        "pool_reused_wall_s": round(reused_s, 3),
        "pool_reuse_speedup": round(
            fresh_s / reused_s if reused_s > 0 else float("inf"), 3
        ),
        "notes": (
            "pool_* legs run the sweep twice on fresh executors vs one "
            "persistent pool (RunExecutor keeps its ProcessPoolExecutor "
            "alive across map() calls)."
            + (
                "  Single-CPU host: effective_jobs clamps to 1, so both "
                "parallel and pool-reuse legs take the serial path and "
                "measure overhead, not fan-out capability."
                if cpus < 2
                else ""
            )
        ),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
