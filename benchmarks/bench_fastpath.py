"""Baseline the fastpath step compiler on the fig07 sweep.

Times the Figure-7 four-cap sweep through the reference engine and
through the :mod:`repro.fastpath` step compiler (same seed and
settings as ``bench_runtime.py``), verifies the fastpath results are
identical to the reference ones — execution times, full trace sets,
events and per-node summaries — and writes ``BENCH_fastpath.json`` so
future PRs can compare against this PR's numbers::

    PYTHONPATH=src python benchmarks/bench_fastpath.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_fastpath.py --quick    # smoke

The acceptance gate is a **2x speedup** of the fastpath leg over the
reference leg (the bench exits non-zero below the floor).  Unlike the
process fan-out of ``bench_runtime.py``, this is single-process work —
the gate holds on any host, single-core included.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import statistics
import sys
import time
from pathlib import Path

from repro.experiments import fig07_max_pwm
from repro.runtime import DEFAULT_SEED, execute_spec

SPEEDUP_FLOOR = 2.0


def _time_sweep(specs, repeats: int):
    """Median sweep wall time (seconds) and the last sweep's results."""
    walls, results = [], None
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = [execute_spec(spec) for spec in specs]
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls), results


def _assert_equivalent(reference, fastpath) -> None:
    """Bitwise result equality; raises AssertionError with the field."""
    for i, (ref, fast) in enumerate(zip(reference, fastpath)):
        assert fast.execution_time == ref.execution_time, f"run {i}: time"
        assert fast.average_power == ref.average_power, f"run {i}: power"
        assert fast.energy_joules == ref.energy_joules, f"run {i}: energy"
        assert fast.retired_cycles == ref.retired_cycles, f"run {i}: cycles"
        assert fast.node_shutdown == ref.node_shutdown, f"run {i}: shutdown"
        assert sorted(fast.traces.names()) == sorted(ref.traces.names())
        for name in ref.traces.names():
            rt, ft = ref.traces[name], fast.traces[name]
            assert (ft.times == rt.times).all(), f"run {i}: {name} times"
            assert (ft.values == rt.values).all(), f"run {i}: {name} values"
        assert len(fast.events) == len(ref.events), f"run {i}: event count"
        for ea, eb in zip(ref.events, fast.events):
            assert str(ea) == str(eb), f"run {i}: event {ea}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"
        ),
    )
    args = parser.parse_args(argv)

    repeats = 5 if args.quick else 3
    specs = fig07_max_pwm.specs(seed=args.seed, quick=args.quick)
    fast_specs = [dataclasses.replace(s, fastpath=True) for s in specs]
    print(f"fig07 sweep: {len(specs)} runs, {repeats} repeats per leg")

    reference_s, reference_results = _time_sweep(specs, repeats)
    print(f"reference : {reference_s:7.2f}s median")
    fastpath_s, fastpath_results = _time_sweep(fast_specs, repeats)
    print(f"fastpath  : {fastpath_s:7.2f}s median")

    print("verifying result equivalence ...", end=" ")
    _assert_equivalent(reference_results, fastpath_results)
    print("identical")

    speedup = reference_s / fastpath_s if fastpath_s > 0 else float("inf")
    ok = speedup >= SPEEDUP_FLOOR
    print(f"speedup   : {speedup:6.2f}x  (gate >= {SPEEDUP_FLOOR}x)")
    print("gate      :", "PASS" if ok else "FAIL")

    payload = {
        "benchmark": "fastpath step compiler, fig07 max-PWM cap sweep",
        "runs": len(specs),
        "quick": args.quick,
        "seed": args.seed,
        "repeats": repeats,
        "reference_wall_s": round(reference_s, 3),
        "fastpath_wall_s": round(fastpath_s, 3),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "equivalent": True,
        "gate": "pass" if ok else "fail",
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
