"""Baseline the sharded fleet engine: equivalence first, speedup second.

Simulates one 64-node fleet (8 racks x 8 nodes, imbalanced load, a
fleet power budget and a mid-run hot-aisle fault — the heaviest
realistic configuration) at ``shards=1`` and ``shards=4``, asserts the
two results are **bitwise identical** (``FleetResult.canonical_bytes``,
the engine's equivalence gate) before trusting any timing, and writes
``BENCH_fleet.json``::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full fleet
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick    # CI smoke

Two gates, scaled to the host:

* **equivalence** — always enforced; a byte of divergence exits
  non-zero.
* **speedup** — sharding is process parallelism, so the 2x floor for
  the 4-shard leg is enforced only on hosts with >= 4 CPUs.  On
  smaller hosts the wall times are still recorded (with the honest
  ``cpus`` count) but the floor is reported ``"skipped"`` — a
  single-CPU container cannot demonstrate a parallel speedup and
  pretending otherwise would poison cross-PR comparisons.

Throughput is reported as node-ticks/s (nodes x physics ticks / wall
second) for each leg so future PRs can track the per-node stepping
cost independently of topology choices.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.fleet import FleetFaultSpec, FleetSpec, run_fleet
from repro.runtime import DEFAULT_SEED

SPEEDUP_FLOOR = 2.0
MIN_CPUS_FOR_SPEEDUP_GATE = 4
PARALLEL_SHARDS = 4


def bench_spec(seed: int, quick: bool) -> FleetSpec:
    """The benchmark fleet: 64 nodes, capped, faulted mid-run."""
    racks, nodes = (4, 4) if quick else (8, 8)
    horizon = 20.0 if quick else 90.0
    return FleetSpec(
        racks=racks,
        nodes_per_rack=nodes,
        horizon=horizon,
        seed=seed,
        workload="imbalance",
        power_budget=45.0 * racks * nodes,
        fault=FleetFaultSpec(rack=0, at=horizon / 3.0),
        quick=quick,
    )


def _time_leg(spec: FleetSpec, shards: int, repeats: int):
    """Median wall seconds and the last run's result for one leg."""
    walls, result = [], None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_fleet(spec, shards=shards)
        walls.append(time.perf_counter() - t0)
    return statistics.median(walls), result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
        ),
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    repeats = 2 if args.quick else 3
    spec = bench_spec(args.seed, args.quick)
    node_ticks = spec.total_nodes * spec.total_ticks()
    print(
        f"fleet: {spec.describe()}  "
        f"({spec.total_nodes} nodes, {spec.total_ticks()} ticks, "
        f"{spec.epochs()} epochs; host has {cpus} CPU(s))"
    )

    serial_s, serial = _time_leg(spec, shards=1, repeats=repeats)
    print(
        f"shards=1 : {serial_s:7.2f}s median  "
        f"({node_ticks / serial_s:,.0f} node-ticks/s)"
    )
    sharded_s, sharded = _time_leg(
        spec, shards=PARALLEL_SHARDS, repeats=repeats
    )
    print(
        f"shards={PARALLEL_SHARDS} : {sharded_s:7.2f}s median  "
        f"({node_ticks / sharded_s:,.0f} node-ticks/s)"
    )

    print("verifying shards=1 == shards=4 bitwise ...", end=" ")
    equivalent = serial.canonical_bytes() == sharded.canonical_bytes()
    print("identical" if equivalent else "DIVERGED")

    speedup = serial_s / sharded_s if sharded_s > 0 else float("inf")
    gate_speedup = cpus >= MIN_CPUS_FOR_SPEEDUP_GATE
    speedup_ok = (not gate_speedup) or speedup >= SPEEDUP_FLOOR
    ok = equivalent and speedup_ok
    print(f"speedup   : {speedup:6.2f}x  (floor {SPEEDUP_FLOOR}x, "
          + ("enforced" if gate_speedup
             else f"skipped: {cpus} CPU(s) < {MIN_CPUS_FOR_SPEEDUP_GATE}")
          + ")")
    print("gate      :", "PASS" if ok else "FAIL")

    payload = {
        "benchmark": "sharded fleet engine (shards=1 vs shards=4)",
        "fleet": spec.describe(),
        "nodes": spec.total_nodes,
        "node_ticks": node_ticks,
        "quick": args.quick,
        "seed": args.seed,
        "repeats": repeats,
        "cpus": cpus,
        "serial_wall_s": round(serial_s, 3),
        "sharded_wall_s": round(sharded_s, 3),
        "serial_node_ticks_per_s": round(node_ticks / serial_s),
        "sharded_node_ticks_per_s": round(node_ticks / sharded_s),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_gate": (
            ("pass" if speedup >= SPEEDUP_FLOOR else "fail")
            if gate_speedup
            else "skipped (needs >= 4 CPUs)"
        ),
        "equivalent": equivalent,
        "gate": "pass" if ok else "fail",
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
