"""Load-test the serve layer with a mixed hot/cold/duplicate replay.

Drives a real :class:`ReproServer` (listening socket, HTTP parser, job
ledger, executor, content-addressed cache) through the stdlib client
with a replayed request trace shaped like sweep traffic:

* **cold** — distinct specs never seen before (each must execute),
* **duplicate** — concurrent copies of in-flight specs (dedup
  followers: they must ride the leader, not execute),
* **hot** — re-requests of already-cached digests against a fresh
  server process sharing the cache directory (every one must be
  satisfied from the cache without touching the queue).

Before any timing is trusted the bench verifies the determinism
contract across phases: the result bytes served hot must equal the
bytes served cold for every digest.  Then it reports sustained
completed-specs/sec for the cold+duplicate replay, per-POST latency
quantiles, and hot-path requests/sec — and **gates** on a cache-hit
throughput floor (exit non-zero below it)::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full trace
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke

The floor is deliberately conservative (an order of magnitude under a
dev-container measurement) so the gate catches regressions that turn
the O(1) cache path back into an execution, not host noise.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.runtime import RunSpec
from repro.serve import ClientSession, ReproServer, ServeConfig

HOST = "127.0.0.1"

#: Hot-phase floor, cache-hit requests/sec.  A dev container sustains
#: several hundred; below this the cache path has regressed to real work.
CACHE_HIT_FLOOR_RPS = 25.0


def build_trace(quick: bool, seed: int) -> Tuple[List[RunSpec], int]:
    """The replayed specs and the duplicate factor.

    Cold specs are one-node synthetic-profile runs with distinct seeds
    (distinct digests, each cheap enough that the bench measures the
    serving machinery, not the simulator).
    """
    n_cold = 6 if quick else 12
    duplicates = 2 if quick else 3
    specs = [
        RunSpec.of(
            "mixed_thermal_profile",
            {"duration": 20.0},
            rigs=[("constant_fan", {"duty": 0.45})],
            n_nodes=1,
            seed=seed + i,
            timeout=120.0,
        )
        for i in range(n_cold)
    ]
    return specs, duplicates


async def post_all(
    sessions: List[ClientSession],
    bodies: List[bytes],
) -> Tuple[List[float], List[dict]]:
    """POST every body round-robin across sessions; return latencies
    (seconds) and response envelopes, in body order."""
    latencies: List[float] = [0.0] * len(bodies)
    envelopes: List[dict] = [{}] * len(bodies)

    async def one(i: int, body: bytes) -> None:
        session = sessions[i % len(sessions)]
        t0 = time.perf_counter()
        response = await session.request("POST", "/v1/runs", body)
        latencies[i] = time.perf_counter() - t0
        assert response.status in (200, 202), response.body
        envelopes[i] = response.json_body()

    # One task per session keeps each keep-alive connection sequential.
    per_session: Dict[int, List[int]] = {}
    for i in range(len(bodies)):
        per_session.setdefault(i % len(sessions), []).append(i)

    async def drain(indexes: List[int]) -> None:
        for i in indexes:
            await one(i, bodies[i])

    await asyncio.gather(*(drain(ix) for ix in per_session.values()))
    return latencies, envelopes


async def wait_all_done(session: ClientSession, digests: List[str]) -> None:
    for digest in dict.fromkeys(digests):
        while True:
            response = await session.request("GET", f"/v1/runs/{digest}")
            assert response.status == 200, response.body
            if response.json_body()["status"] in ("done", "failed"):
                assert response.json_body()["status"] == "done", response.body
                break
            await asyncio.sleep(0.01)


async def fetch_results(
    session: ClientSession, digests: List[str]
) -> Dict[str, bytes]:
    out: Dict[str, bytes] = {}
    for digest in dict.fromkeys(digests):
        response = await session.request("GET", f"/v1/runs/{digest}/result")
        assert response.status == 200, response.body
        out[digest] = response.body
    return out


async def run_bench(args) -> dict:
    specs, duplicates = build_trace(args.quick, args.seed)
    bodies = [spec.to_json().encode("utf-8") for spec in specs]
    # The mixed trace: every cold body, then duplicate copies woven in
    # (round-robin) so copies land while their leaders are in flight.
    trace = bodies * duplicates
    concurrency = 4

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache_dir:
        # -- phase A: cold + duplicates ---------------------------------
        server = ReproServer(
            ServeConfig(port=0, cache_dir=cache_dir, batch_window=0.02)
        )
        await server.start()
        sessions = [
            ClientSession(HOST, server.port) for _ in range(concurrency)
        ]
        t0 = time.perf_counter()
        post_latencies, envelopes = await post_all(sessions, trace)
        digests = [e["digest"] for e in envelopes]
        await wait_all_done(sessions[0], digests)
        cold_wall = time.perf_counter() - t0
        cold_results = await fetch_results(sessions[0], digests)
        snapshot = server.registry.snapshot()
        followers = snapshot.value("serve.runs.dedup_followers")
        executed = snapshot.total("host.exec.executed")
        for session in sessions:
            await session.close()
        await server.stop()

        expected_followers = len(trace) - len(specs)
        assert executed == len(specs), (
            f"duplicates leaked into execution: {executed} != {len(specs)}"
        )
        assert followers == expected_followers, (
            f"follower count {followers} != {expected_followers}"
        )

        # -- phase B: hot (fresh server, warm cache) --------------------
        rounds = 3 if args.quick else 5
        server = ReproServer(
            ServeConfig(port=0, cache_dir=cache_dir, batch_window=0.02)
        )
        await server.start()
        sessions = [
            ClientSession(HOST, server.port) for _ in range(concurrency)
        ]
        t0 = time.perf_counter()
        hot_latencies, hot_envelopes = await post_all(
            sessions, bodies * rounds
        )
        hot_wall = time.perf_counter() - t0
        for envelope in hot_envelopes:
            assert envelope["status"] == "done", envelope
        hot_results = await fetch_results(
            sessions[0], [e["digest"] for e in hot_envelopes]
        )
        snapshot = server.registry.snapshot()
        cache_hits = snapshot.value("serve.runs.cache_hits")
        hot_executed = snapshot.total("host.exec.executed")
        for session in sessions:
            await session.close()
        await server.stop()

        assert hot_executed == 0, "hot phase executed a spec"
        assert cache_hits == len(specs), "hot phase missed the cache"

    # Determinism across phases before any timing is trusted.
    assert cold_results == hot_results, "hot bytes differ from cold bytes"

    hot_requests = len(bodies) * rounds
    return {
        "benchmark": "serve replay load test (cold + duplicate + hot)",
        "quick": args.quick,
        "seed": args.seed,
        "cold_specs": len(specs),
        "duplicate_factor": duplicates,
        "trace_requests": len(trace),
        "cold_wall_s": round(cold_wall, 3),
        "sustained_specs_per_s": round(len(specs) / cold_wall, 2),
        "post_latency_p50_ms": round(
            statistics.median(post_latencies) * 1e3, 3
        ),
        "post_latency_p99_ms": round(
            statistics.quantiles(post_latencies, n=100)[98] * 1e3, 3
        ),
        "hot_requests": hot_requests,
        "hot_wall_s": round(hot_wall, 3),
        "cache_hit_rps": round(hot_requests / hot_wall, 2),
        "hot_latency_p50_ms": round(
            statistics.median(hot_latencies) * 1e3, 3
        ),
        "hot_latency_p99_ms": round(
            statistics.quantiles(hot_latencies, n=100)[98] * 1e3, 3
        ),
        "cache_hit_floor_rps": CACHE_HIT_FLOOR_RPS,
        "byte_identical_hot_vs_cold": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=600)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_serve.json"
        ),
    )
    args = parser.parse_args(argv)

    payload = asyncio.run(run_bench(args))
    ok = payload["cache_hit_rps"] >= CACHE_HIT_FLOOR_RPS
    payload["gate"] = "pass" if ok else "fail"

    print(
        f"cold replay : {payload['trace_requests']} requests "
        f"({payload['cold_specs']} distinct) in {payload['cold_wall_s']}s "
        f"-> {payload['sustained_specs_per_s']} specs/s"
    )
    print(
        f"POST latency: p50 {payload['post_latency_p50_ms']}ms  "
        f"p99 {payload['post_latency_p99_ms']}ms"
    )
    print(
        f"hot replay  : {payload['hot_requests']} requests in "
        f"{payload['hot_wall_s']}s -> {payload['cache_hit_rps']} rps "
        f"(p50 {payload['hot_latency_p50_ms']}ms, "
        f"p99 {payload['hot_latency_p99_ms']}ms)"
    )
    print(
        f"gate        : {'PASS' if ok else 'FAIL'} "
        f"(cache-hit floor >= {CACHE_HIT_FLOOR_RPS} rps)"
    )
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
