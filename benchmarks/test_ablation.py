"""Benchmark harness: design-decision ablations (§3.2 claims).

Quantifies the paper's unmeasured assertions:

* **A** — level-one window size: too small chases jitter, too large is
  sluggish on sudden changes; 4 is the knee.
* **B** — the level-two fallback is what tracks Type-II drift.
* **C** — tDVFS's depth-escalated threshold prevents chasing the plant
  down the frequency ladder.
* **D** — splitting the shared P_p: handing the aggressiveness to the
  in-band side costs real performance for no thermal gain.
"""

from repro.experiments import ablation as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_ablation(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    by_size = {row.l1_size: row for row in result.window_rows}
    for size, row in by_size.items():
        benchmark.extra_info[f"l1_{size}_delay"] = row.sudden_delay
        benchmark.extra_info[f"l1_{size}_jitter_move"] = round(
            row.jitter_movement, 4
        )

    # -- A: window size tradeoff ---------------------------------------
    # jitter chasing decreases monotonically with window size
    sizes = sorted(by_size)
    moves = [by_size[s].jitter_movement for s in sizes]
    assert all(a >= b for a, b in zip(moves, moves[1:]))
    # sudden response is no slower at 4 than anywhere, and clearly
    # degrades for the largest window — the paper's "too large" case
    best_delay = min(row.sudden_delay for row in result.window_rows)
    assert by_size[4].sudden_delay == best_delay
    assert by_size[16].sudden_delay > by_size[4].sudden_delay

    # -- B: level-two fallback -------------------------------------------
    on = next(r for r in result.l2_rows if r.l2_enabled)
    off = next(r for r in result.l2_rows if not r.l2_enabled)
    assert on.final_temp < off.final_temp - 1.5
    assert on.final_duty > off.final_duty

    # -- C: escalated threshold -------------------------------------------
    esc = next(r for r in result.escalation_rows if r.escalate)
    fixed = next(r for r in result.escalation_rows if not r.escalate)
    # without escalation the daemon dives deeper and pays more time ...
    assert fixed.min_ghz < esc.min_ghz
    assert fixed.execution_time > esc.execution_time
    assert fixed.freq_changes >= esc.freq_changes
    # ... for only a modest extra cooling
    assert esc.end_temp - fixed.end_temp < 5.0

    # -- D: shared vs independent P_p ---------------------------------------
    by_split = {(r.fan_pp, r.dvfs_pp): r for r in result.split_rows}
    shared = by_split[(50, 50)]
    fan_aggressive = by_split[(25, 75)]
    dvfs_aggressive = by_split[(75, 25)]
    # giving the aggressiveness to the in-band side triggers DVFS
    # earlier and deeper, and pays the most execution time ...
    assert dvfs_aggressive.first_trigger < shared.first_trigger
    assert dvfs_aggressive.min_ghz <= shared.min_ghz
    assert dvfs_aggressive.execution_time > shared.execution_time
    assert dvfs_aggressive.execution_time > fan_aggressive.execution_time
    # ... without cooling meaningfully better than the fan-side split
    assert dvfs_aggressive.mean_temp > fan_aggressive.mean_temp - 0.5
