"""Benchmark harness: Figure 7 — maximum-PWM (fan capability) sweep.

Regenerates the BT.B.4 run under caps 25/50/75/100 % and asserts the
paper's findings: a stronger fan is cooler (≈8 K between 25 % and
100 %), but with proactive control the returns diminish quickly — a
mid-size fan delivers almost the full benefit.
"""

from repro.experiments import fig07_max_pwm as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_fig07_max_pwm(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    for row in result.rows:
        benchmark.extra_info[f"cap{int(row.max_duty * 100)}_final_temp"] = round(
            row.final_temp, 2
        )
    benchmark.extra_info["spread_25_vs_100"] = round(result.spread, 2)

    # -- shape claims -----------------------------------------------------
    # 1. more fan headroom -> cooler overall
    assert result.row(1.00).final_temp < result.row(0.25).final_temp
    # 2. the paper's ~8 degC spread between the extreme caps
    assert 5.0 < result.spread < 13.0
    # 3. diminishing returns: the last 25 points of cap buy much less
    #    than the first 25 did (paper: "50 vs 75 not significant")
    first_step = result.row(0.25).final_temp - result.row(0.50).final_temp
    last_step = abs(result.row(0.75).final_temp - result.row(1.00).final_temp)
    assert last_step < 0.55 * first_step
    # 4. only the weak fan is actually cap-limited
    assert result.row(0.25).cap_bound
    assert not result.row(1.00).cap_bound
