"""Benchmark harness: Table 1 — CPUSPEED vs tDVFS across fan levels.

Regenerates the paper's central table: BT.B.4 under both daemons at
maximum PWM duties of 75/50/25 %, reporting frequency changes,
execution time, average wall power and power-delay product.

Paper's reference rows (CPUSPEED | tDVFS):

====  ==============  ===============  ===============
cap   # freq changes  exec time (s)    avg power (W)
====  ==============  ===============  ===============
75%   101 | 2         219 | 219        99.78 | 97.93
50%   122 | 2         222 | 233        99.30 | 94.19
25%   139 | 3         223 | 234        100.80 | 92.78
====  ==============  ===============  ===============

with tDVFS winning the power-delay product at every cap.
"""

from repro.experiments import table1_tdvfs_cpuspeed as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_table1_tdvfs_cpuspeed(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    for cell in result.cells:
        key = f"{cell.daemon}@{int(cell.max_duty * 100)}"
        benchmark.extra_info[f"{key}_changes"] = cell.freq_changes
        benchmark.extra_info[f"{key}_time"] = round(cell.execution_time, 1)
        benchmark.extra_info[f"{key}_power"] = round(cell.avg_power, 2)
        benchmark.extra_info[f"{key}_pdp"] = round(cell.power_delay_product)

    # -- shape claims -----------------------------------------------------
    for cap in (0.75, 0.50, 0.25):
        cs = result.cell("cpuspeed", cap)
        td = result.cell("tdvfs", cap)
        # 1. two-orders-of-magnitude fewer changes (paper: up to 98.36%)
        assert cs.freq_changes > 80
        assert td.freq_changes <= 5
        # 2. tDVFS never out-draws CPUSPEED
        assert td.avg_power < cs.avg_power
        # 3. tDVFS wins the combined metric everywhere
        assert result.pdp_winner(cap) == "tdvfs"
        # 4. absolute numbers live in the paper's bands
        assert 88.0 < cs.avg_power < 105.0
        assert 88.0 < td.avg_power < 105.0
        assert 205.0 < cs.execution_time < 250.0
        assert 205.0 < td.execution_time < 250.0

    # 5. tDVFS trades time for power as the fan weakens
    assert (
        result.cell("tdvfs", 0.25).execution_time
        > result.cell("tdvfs", 0.75).execution_time
    )
    assert (
        result.cell("tdvfs", 0.25).avg_power
        < result.cell("tdvfs", 0.75).avg_power
    )
    # 6. CPUSPEED flaps more as the plant gets hotter
    assert (
        result.cell("cpuspeed", 0.25).freq_changes
        >= result.cell("cpuspeed", 0.75).freq_changes
    )
