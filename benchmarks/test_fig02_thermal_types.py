"""Benchmark harness: Figure 2 — thermal behaviour taxonomy.

Regenerates the Figure-2 style profile (sudden / gradual / jitter on
one node under a constant fan) and verifies the classifier finds all
three behaviour types in their designed phases.
"""

from repro.core.classify import ThermalBehavior
from repro.experiments import fig02_thermal_types as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_fig02_thermal_types(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    benchmark.extra_info["temp_min"] = round(result.temp_range[0], 1)
    benchmark.extra_info["temp_max"] = round(result.temp_range[1], 1)
    for behaviour, fraction in result.fractions.items():
        benchmark.extra_info[f"frac_{behaviour.value}"] = round(fraction, 3)

    # -- shape claims ---------------------------------------------------
    # all three paper types occur
    assert result.fractions[ThermalBehavior.SUDDEN] > 0.0
    assert result.fractions[ThermalBehavior.GRADUAL] > 0.0
    assert result.fractions[ThermalBehavior.JITTER] > 0.0

    # labels land in their designed phases
    duration = result.duration
    bounds = {
        name: (a * duration, b * duration)
        for name, (a, b) in result.phase_bounds.items()
    }

    def labels_in(phase):
        a, b = bounds[phase]
        return [lab for t, lab in result.labels if a <= t < b]

    # sudden labels appear around the step edges
    edge_labels = labels_in("sudden_rise") + labels_in("sudden_drop")
    assert ThermalBehavior.SUDDEN in edge_labels
    # the charge phase is dominated by gradual/steady, never sudden
    assert ThermalBehavior.SUDDEN not in labels_in("gradual_charge")
    assert ThermalBehavior.GRADUAL in labels_in("gradual_charge")
    # jitter labels concentrate in the jitter phase
    jitter_in_phase = sum(
        1 for lab in labels_in("jitter") if lab == ThermalBehavior.JITTER
    )
    jitter_elsewhere = (
        sum(1 for _, lab in result.labels if lab == ThermalBehavior.JITTER)
        - jitter_in_phase
    )
    assert jitter_in_phase > jitter_elsewhere
