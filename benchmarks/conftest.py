"""Shared helpers for the benchmark harnesses.

Each benchmark runs one paper experiment at full length exactly once
(``rounds=1`` — these are reproduction harnesses, not microbenchmarks),
prints the paper-style table, attaches headline numbers to the
benchmark record, and asserts the experiment's shape claims.

Run them with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import sys


def run_once(benchmark, fn, **kwargs):
    """Execute ``fn`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)


def emit(text: str) -> None:
    """Print a rendered table so it survives pytest's capture with -s."""
    sys.stdout.write("\n" + text + "\n")
