"""Benchmark harness: Figure 6 — dynamic vs traditional vs constant fan.

Regenerates the BT.B.4 three-policy comparison (max duty 75 %) and
asserts: the dynamic method stabilizes sooner and cooler than the
traditional static map (duty climbing past ~45 % vs ~32 %), while the
pinned-75 % fan is coolest but burns the most power.
"""

from repro.experiments import fig06_fan_comparison as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_fig06_fan_comparison(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    for row in result.rows:
        benchmark.extra_info[f"{row.policy}_final_temp"] = round(row.final_temp, 2)
        benchmark.extra_info[f"{row.policy}_late_duty_pct"] = round(
            row.late_duty * 100, 1
        )
        benchmark.extra_info[f"{row.policy}_power"] = round(row.avg_power, 2)

    dynamic = result.row("dynamic")
    traditional = result.row("traditional")
    constant = result.row("constant")

    # -- shape claims ----------------------------------------------------
    # 1. proactive beats reactive: cooler and sooner
    assert dynamic.final_temp < traditional.final_temp - 2.0
    assert dynamic.stabilization < traditional.stabilization
    # 2. the duty contrast the paper quotes (45 % vs 32 %)
    assert dynamic.late_duty > 0.40
    assert traditional.late_duty < 0.40
    # 3. constant-75%: coolest, most power
    assert constant.final_temp <= dynamic.final_temp
    assert constant.avg_power >= dynamic.avg_power
    assert constant.avg_power >= traditional.avg_power - 0.5
