"""Benchmark harness: Figure 9 — tDVFS vs CPUSPEED under a weak fan.

Regenerates BT.B.4 with the dynamic fan capped at 25 % duty — too weak
to hold the plant alone — governed by CPUSPEED vs tDVFS.  Asserts the
figure's contrast: CPUSPEED's temperature keeps climbing while tDVFS
stabilizes after two deliberate scale-downs (2.4 → 2.2 → 2.0 GHz in
the paper's annotations).
"""

from repro.experiments import fig09_tdvfs_vs_cpuspeed as exp
from repro.experiments.platform import DEFAULT_SEED

from .conftest import emit, run_once


def test_fig09_tdvfs_vs_cpuspeed(benchmark):
    result = run_once(benchmark, exp.run, seed=DEFAULT_SEED)
    emit(exp.render(result))

    for row in result.rows:
        benchmark.extra_info[f"{row.daemon}_end_temp"] = round(row.end_temp, 2)
        benchmark.extra_info[f"{row.daemon}_changes"] = row.freq_changes
        benchmark.extra_info[f"{row.daemon}_slope_K_per_100s"] = round(
            row.late_slope * 100, 2
        )

    cpuspeed = result.row("cpuspeed")
    tdvfs = result.row("tdvfs")

    # -- shape claims -----------------------------------------------------
    # 1. CPUSPEED keeps climbing; tDVFS has stabilized (residual drift
    #    below 1 K per 100 s) and ends cooler
    assert cpuspeed.late_slope > 0.0
    assert abs(tdvfs.late_slope) < 0.01  # K/s
    assert tdvfs.end_temp < cpuspeed.end_temp - 1.0
    # 2. the change-count contrast (paper: 139 vs 3 at this cap)
    assert cpuspeed.freq_changes > 50
    assert tdvfs.freq_changes <= 5
    # 3. tDVFS's path is a short descending ladder walk, like the
    #    figure's annotations
    assert 1 <= len(tdvfs.scaling_path) <= 3
    assert all(a > b for a, b in zip(tdvfs.scaling_path, tdvfs.scaling_path[1:]))
