"""Register-level model of the Analog Devices ADT7467 dBCool controller.

The paper's platform attaches an ADT7467 remote thermal monitor / fan
controller and drives it from a custom Linux driver over i2c (§4.1).
This module models the subset of the chip the paper exercises:

* a remote temperature channel fed by the CPU's thermal diode,
* a PWM output with an 8-bit duty register,
* a tachometer input reporting fan speed,
* the hardware **automatic fan control** mode, which implements exactly
  the static PWM(T) ramp of the paper's Figure 1: duty is ``PWM_min``
  up to ``T_min`` and rises linearly to ``PWM_max`` at
  ``T_min + T_range`` (the paper's ``T_max``).

The register map is an abridged, self-consistent subset of the ADT746x
family layout (device/company ID registers included so drivers can
probe).  Temperatures are stored as two's-complement °C in one-degree
steps, tach counts as ``90 kHz · 60 / RPM`` in a 16-bit pair, and duty
as 0–255 — all matching the real part's conventions.

The chip is a *device model*: the host side talks to it only through
:class:`~repro.i2c.bus.I2cBus` transactions, while the node physics
feeds measurements in through :meth:`ADT7467.update`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..i2c.device import I2cDevice
from ..units import clamp, require_in_range

__all__ = [
    "Adt7467Config",
    "ADT7467",
    "REG_REMOTE1_TEMP",
    "REG_LOCAL_TEMP",
    "REG_TACH1_LOW",
    "REG_TACH1_HIGH",
    "REG_PWM1_DUTY",
    "REG_PWM1_MAX",
    "REG_DEVICE_ID",
    "REG_COMPANY_ID",
    "REG_PWM1_CONFIG",
    "REG_PWM1_MIN",
    "REG_TMIN",
    "REG_TRANGE",
    "DEVICE_ID",
    "COMPANY_ID",
    "CONFIG_MANUAL",
    "CONFIG_AUTO_REMOTE1",
    "TACH_CLOCK_PER_MINUTE",
]

# -- register addresses (abridged ADT746x-style map) -------------------------
REG_REMOTE1_TEMP = 0x25
REG_LOCAL_TEMP = 0x26
REG_TACH1_LOW = 0x28
REG_TACH1_HIGH = 0x29
REG_PWM1_DUTY = 0x30
REG_PWM1_MAX = 0x38
REG_DEVICE_ID = 0x3D
REG_COMPANY_ID = 0x3E
REG_PWM1_CONFIG = 0x5C
REG_PWM1_MIN = 0x64
REG_TMIN = 0x67
REG_TRANGE = 0x68

#: Value of :data:`REG_DEVICE_ID` (the real part reports 0x68).
DEVICE_ID = 0x68
#: Value of :data:`REG_COMPANY_ID` (0x41 = Analog Devices).
COMPANY_ID = 0x41

#: PWM1 behaviour field values (config register).
CONFIG_MANUAL = 0xE0
CONFIG_AUTO_REMOTE1 = 0xA0

#: Tachometer clock: counts of a 90 kHz clock per revolution pair.
TACH_CLOCK_PER_MINUTE = 90_000 * 60


@dataclass(frozen=True)
class Adt7467Config:
    """Power-on configuration of the chip.

    Defaults reproduce the paper's platform constants:
    ``PWM_min = 10 %``, ``T_min = 38 °C``, ``T_max = 82 °C``
    (so ``T_range = 44 K``).

    Attributes
    ----------
    address:
        7-bit i2c address (0x2E is the part's usual strap).
    t_min:
        Start of the automatic ramp, °C.
    t_range:
        Width of the automatic ramp, K.
    pwm_min_duty:
        Duty fraction at/below ``t_min`` in auto mode.
    pwm_max_duty:
        Duty ceiling in auto mode.
    auto:
        Whether the chip powers on in automatic fan control mode.
    """

    address: int = 0x2E
    t_min: float = 38.0
    t_range: float = 44.0
    pwm_min_duty: float = 0.10
    pwm_max_duty: float = 1.0
    auto: bool = True

    def __post_init__(self) -> None:
        require_in_range(self.t_min, -40.0, 120.0, "t_min")
        require_in_range(self.t_range, 1.0, 120.0, "t_range")
        require_in_range(self.pwm_min_duty, 0.0, 1.0, "pwm_min_duty")
        require_in_range(self.pwm_max_duty, 0.0, 1.0, "pwm_max_duty")
        if self.pwm_min_duty >= self.pwm_max_duty:
            raise ConfigurationError(
                f"pwm_min_duty ({self.pwm_min_duty}) must be < pwm_max_duty "
                f"({self.pwm_max_duty})"
            )


def _temp_to_byte(celsius: float) -> int:
    """Two's-complement °C encoding clamped to the chip's range."""
    value = int(round(clamp(celsius, -128.0, 127.0)))
    return value & 0xFF


def _byte_to_temp(byte: int) -> float:
    """Inverse of :func:`_temp_to_byte`."""
    return float(byte - 256 if byte >= 128 else byte)


def _duty_to_byte(duty: float) -> int:
    """Duty fraction → 8-bit register value."""
    return int(round(clamp(duty, 0.0, 1.0) * 255.0))


def _byte_to_duty(byte: int) -> float:
    """8-bit register value → duty fraction."""
    return byte / 255.0


class ADT7467(I2cDevice):
    """The dBCool monitor/fan-controller device model.

    Parameters
    ----------
    config:
        Power-on configuration.
    """

    def __init__(self, config: Adt7467Config | None = None) -> None:
        cfg = config if config is not None else Adt7467Config()
        super().__init__(address=cfg.address, name="ADT7467")
        self.config = cfg

        self.define(REG_REMOTE1_TEMP, "remote1_temp", value=_temp_to_byte(25.0))
        self.define(REG_LOCAL_TEMP, "local_temp", value=_temp_to_byte(25.0))
        self.define(REG_TACH1_LOW, "tach1_low", value=0xFF)
        self.define(REG_TACH1_HIGH, "tach1_high", value=0xFF)
        self.define(
            REG_PWM1_DUTY,
            "pwm1_duty",
            value=_duty_to_byte(cfg.pwm_min_duty),
            writable=True,
        )
        self.define(
            REG_PWM1_MAX,
            "pwm1_max",
            value=_duty_to_byte(cfg.pwm_max_duty),
            writable=True,
        )
        self.define(REG_DEVICE_ID, "device_id", value=DEVICE_ID)
        self.define(REG_COMPANY_ID, "company_id", value=COMPANY_ID)
        self.define(
            REG_PWM1_CONFIG,
            "pwm1_config",
            value=CONFIG_AUTO_REMOTE1 if cfg.auto else CONFIG_MANUAL,
            writable=True,
        )
        self.define(
            REG_PWM1_MIN,
            "pwm1_min",
            value=_duty_to_byte(cfg.pwm_min_duty),
            writable=True,
        )
        self.define(REG_TMIN, "tmin", value=_temp_to_byte(cfg.t_min), writable=True)
        self.define(
            REG_TRANGE,
            "trange",
            value=int(round(clamp(cfg.t_range, 1.0, 120.0))),
            writable=True,
        )

    # -- device-model side -----------------------------------------------

    @property
    def auto_mode(self) -> bool:
        """True when PWM1 follows the hardware automatic curve."""
        return self.peek(REG_PWM1_CONFIG) == CONFIG_AUTO_REMOTE1

    @property
    def commanded_duty(self) -> float:
        """Duty fraction currently on the PWM1 output (what the motor sees)."""
        return _byte_to_duty(self.peek(REG_PWM1_DUTY))

    def auto_curve_duty(self, celsius: float) -> float:
        """The hardware automatic ramp — the paper's Figure 1.

        ``PWM_min`` below ``T_min``; linear to the PWM1-max register
        value at ``T_min + T_range``; clamped there above.
        """
        d_min = _byte_to_duty(self.peek(REG_PWM1_MIN))
        d_max = _byte_to_duty(self.peek(REG_PWM1_MAX))
        t_min = _byte_to_temp(self.peek(REG_TMIN))
        t_range = float(self.peek(REG_TRANGE))
        if celsius <= t_min:
            return d_min
        frac = clamp((celsius - t_min) / t_range, 0.0, 1.0)
        return d_min + (d_max - d_min) * frac

    def update(self, remote_temp: float, local_temp: float, rpm: float) -> None:
        """Feed one round of measurements into the chip.

        Called by the node wiring every chip sample period.  Updates the
        temperature and tach registers and, in auto mode, recomputes the
        PWM1 duty from the automatic curve.
        """
        self.poke(REG_REMOTE1_TEMP, _temp_to_byte(remote_temp))
        self.poke(REG_LOCAL_TEMP, _temp_to_byte(local_temp))
        if rpm <= 0.0:
            count = 0xFFFF  # stalled fan reads as all-ones
        else:
            count = min(0xFFFF, int(round(TACH_CLOCK_PER_MINUTE / rpm)))
        self.poke(REG_TACH1_LOW, count & 0xFF)
        self.poke(REG_TACH1_HIGH, (count >> 8) & 0xFF)
        if self.auto_mode:
            duty = self.auto_curve_duty(_byte_to_temp(self.peek(REG_REMOTE1_TEMP)))
            # Auto mode never exceeds the PWM1 max register.
            duty = min(duty, _byte_to_duty(self.peek(REG_PWM1_MAX)))
            self.poke(REG_PWM1_DUTY, _duty_to_byte(duty))
