"""Host-side fan driver (the paper's custom Linux driver).

:class:`FanDriver` is the only path governors use to touch the fan: it
speaks SMBus transactions to the :class:`~repro.fan.adt7467.ADT7467`
exactly as a kernel driver would — probe the ID registers, switch the
chip between manual and automatic modes, write duty setpoints, read
back temperature and tach.

The driver owns the **100-step duty discretization** of §4.1 (requests
are snapped to the ladder) and the **maximum-allowed-duty cap** used by
Figures 6–10 ("the maximum allowed fan speed ... is set to 75 %"):
requests above the cap clamp to it.
"""

from __future__ import annotations

from typing import Optional

from ..errors import BusError
from ..i2c.bus import I2cBus
from ..units import clamp, require_in_range
from .adt7467 import (
    COMPANY_ID,
    CONFIG_AUTO_REMOTE1,
    CONFIG_MANUAL,
    DEVICE_ID,
    REG_COMPANY_ID,
    REG_DEVICE_ID,
    REG_PWM1_CONFIG,
    REG_PWM1_DUTY,
    REG_PWM1_MAX,
    REG_PWM1_MIN,
    REG_REMOTE1_TEMP,
    REG_TACH1_HIGH,
    REG_TACH1_LOW,
    REG_TMIN,
    REG_TRANGE,
    TACH_CLOCK_PER_MINUTE,
    _byte_to_temp,
    _duty_to_byte,
    _temp_to_byte,
)
from .pwm import DutyCycleLadder

__all__ = ["FanDriver"]


class FanDriver:
    """Governor-facing fan control API over an i2c-attached ADT7467.

    Parameters
    ----------
    bus:
        The i2c segment the chip lives on.
    address:
        The chip's 7-bit address.
    ladder:
        Duty discretization (default: the paper's 100 steps, 1–100 %).
    max_duty:
        Hard duty ceiling (emulates a weaker fan / an admin cap).
    probe:
        When True (default), verify the device and company IDs at
        construction, as a real driver's ``detect`` routine would.
    """

    def __init__(
        self,
        bus: I2cBus,
        address: int,
        ladder: Optional[DutyCycleLadder] = None,
        max_duty: float = 1.0,
        probe: bool = True,
    ) -> None:
        self._bus = bus
        self._address = address
        self.max_duty = require_in_range(max_duty, 0.01, 1.0, "max_duty")
        self.ladder = ladder if ladder is not None else DutyCycleLadder()
        if probe:
            dev = bus.read_byte_data(address, REG_DEVICE_ID)
            comp = bus.read_byte_data(address, REG_COMPANY_ID)
            if dev != DEVICE_ID or comp != COMPANY_ID:
                raise BusError(
                    f"device at {address:#04x} is not an ADT7467 "
                    f"(id={dev:#04x}, company={comp:#04x})"
                )

    # -- mode control ------------------------------------------------------

    def set_manual_mode(self) -> None:
        """Take PWM1 under host control (dynamic governors need this)."""
        self._bus.write_byte_data(self._address, REG_PWM1_CONFIG, CONFIG_MANUAL)

    def set_auto_mode(
        self,
        t_min: Optional[float] = None,
        t_range: Optional[float] = None,
        duty_min: Optional[float] = None,
        duty_max: Optional[float] = None,
    ) -> None:
        """Hand PWM1 to the chip's automatic curve (traditional control).

        Optionally reprograms the curve's corner registers first.
        """
        if t_min is not None:
            self._bus.write_byte_data(self._address, REG_TMIN, _temp_to_byte(t_min))
        if t_range is not None:
            self._bus.write_byte_data(
                self._address, REG_TRANGE, int(round(clamp(t_range, 1.0, 120.0)))
            )
        if duty_min is not None:
            self._bus.write_byte_data(
                self._address, REG_PWM1_MIN, _duty_to_byte(duty_min)
            )
        if duty_max is not None:
            self._bus.write_byte_data(
                self._address, REG_PWM1_MAX, _duty_to_byte(min(duty_max, self.max_duty))
            )
        self._bus.write_byte_data(self._address, REG_PWM1_CONFIG, CONFIG_AUTO_REMOTE1)

    # -- duty ------------------------------------------------------------

    def set_duty(self, duty: float) -> float:
        """Command a duty fraction; returns the value actually applied.

        The request is clamped to the driver cap, snapped to the duty
        ladder and written to the chip's PWM1 register.
        """
        require_in_range(duty, 0.0, 1.0, "duty")
        applied = self.ladder.quantize(min(duty, self.max_duty))
        applied = min(applied, self.max_duty)
        self._bus.write_byte_data(
            self._address, REG_PWM1_DUTY, _duty_to_byte(applied)
        )
        return applied

    def get_duty(self) -> float:
        """Read back the duty currently on the PWM1 output."""
        return self._bus.read_byte_data(self._address, REG_PWM1_DUTY) / 255.0

    # -- sensors -----------------------------------------------------------

    def read_temperature(self) -> float:
        """Remote (CPU diode) temperature in °C as the chip reports it."""
        return _byte_to_temp(
            self._bus.read_byte_data(self._address, REG_REMOTE1_TEMP)
        )

    def read_rpm(self) -> float:
        """Fan speed in RPM decoded from the tach registers (0 if stalled)."""
        low = self._bus.read_byte_data(self._address, REG_TACH1_LOW)
        high = self._bus.read_byte_data(self._address, REG_TACH1_HIGH)
        count = (high << 8) | low
        if count in (0, 0xFFFF):
            return 0.0
        return TACH_CLOCK_PER_MINUTE / count
