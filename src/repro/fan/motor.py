"""Fan motor dynamics: PWM duty → RPM with spin-up/spin-down inertia.

A fan is not an instantaneous actuator.  The rotor accelerates under
motor torque (fast, seconds) and decelerates by drag when the duty
drops (slower — it coasts).  Both are modelled as first-order lags with
separate time constants.  The steady-state RPM map is affine in duty
above a stall threshold:

.. math::

    RPM_{ss}(d) = RPM_{max} \\cdot (k_0 + (1 - k_0) d), \\quad d > 0

with ``k_0`` the fraction of full speed the motor turns at minimal duty
(axial fans spin at 10–20 % of max even at 1 % duty once started).
The paper's platform tops out at 4300 RPM (§4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import require_in_range, require_positive

__all__ = ["MotorParams", "FanMotor"]


@dataclass(frozen=True)
class MotorParams:
    """Constants of the fan motor model.

    Attributes
    ----------
    rpm_max:
        Full-speed revolutions per minute (paper: 4300).
    k0:
        Fraction of full speed at vanishing duty (keeps the affine
        duty→RPM map realistic at the low end).
    tau_up:
        Spin-up time constant, seconds.
    tau_down:
        Coast-down time constant, seconds (> tau_up: fans coast).
    """

    rpm_max: float = 4300.0
    k0: float = 0.12
    tau_up: float = 1.2
    tau_down: float = 3.0

    def __post_init__(self) -> None:
        require_positive(self.rpm_max, "rpm_max")
        require_in_range(self.k0, 0.0, 0.9, "k0")
        require_positive(self.tau_up, "tau_up")
        require_positive(self.tau_down, "tau_down")
        if self.tau_down < self.tau_up:
            raise ConfigurationError(
                "tau_down must be >= tau_up (fans coast down more slowly "
                "than they spin up)"
            )


class FanMotor:
    """First-order rotor dynamics under a commanded PWM duty.

    Parameters
    ----------
    params:
        Motor constants.
    initial_duty:
        Commanded duty at t=0; the rotor starts at the matching
        steady-state RPM (as if it had been running).
    """

    def __init__(
        self, params: MotorParams | None = None, initial_duty: float = 0.1
    ) -> None:
        self.params = params if params is not None else MotorParams()
        self._duty = require_in_range(initial_duty, 0.0, 1.0, "initial_duty")
        self._failed = False
        self._rpm = self.steady_state_rpm(self._duty)

    def steady_state_rpm(self, duty: float) -> float:
        """Equilibrium RPM for a given duty fraction (0 when failed)."""
        require_in_range(duty, 0.0, 1.0, "duty")
        if self._failed:
            return 0.0
        p = self.params
        if duty <= 0.0:
            return 0.0
        return p.rpm_max * (p.k0 + (1.0 - p.k0) * duty)

    # -- failure injection -------------------------------------------------

    def fail(self) -> None:
        """Seize the motor: the rotor coasts to a stop regardless of PWM.

        Models the bearing/winding failures the thermal-management
        literature (Choi et al., Heath et al.) injects; the paper's
        in-band technique is the only recourse once this happens.
        """
        self._failed = True

    def repair(self) -> None:
        """Undo :meth:`fail` (hot-swap): the rotor spins back up."""
        self._failed = False

    @property
    def failed(self) -> bool:
        """True while the motor is failed."""
        return self._failed

    def set_duty(self, duty: float) -> None:
        """Command a new PWM duty fraction."""
        self._duty = require_in_range(duty, 0.0, 1.0, "duty")

    @property
    def duty(self) -> float:
        """Currently commanded duty fraction."""
        return self._duty

    @property
    def rpm(self) -> float:
        """Current rotor speed in RPM."""
        return self._rpm

    def step(self, t: float, dt: float) -> None:
        """Advance rotor speed by ``dt`` seconds toward the duty target."""
        require_positive(dt, "dt")
        target = self.steady_state_rpm(self._duty)
        tau = self.params.tau_up if target >= self._rpm else self.params.tau_down
        # Exact solution of the first-order lag over dt (unconditionally
        # stable regardless of dt/tau).
        alpha = 1.0 - math.exp(-dt / tau)
        self._rpm += alpha * (target - self._rpm)
