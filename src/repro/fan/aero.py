"""Fan aerodynamics: the fan affinity laws.

For a fixed impeller geometry the classical fan laws give

* volumetric flow ∝ RPM,
* static pressure ∝ RPM²,
* shaft power ∝ RPM³.

The cube law for power is what makes the paper's cost argument
("higher CPU fan speeds dissipate heat more quickly while consuming
more power") quantitative: doubling fan speed costs 8× fan power.
Electrical power adds a small constant for the motor controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import require_non_negative, require_positive

__all__ = ["FanAero"]


@dataclass(frozen=True)
class FanAero:
    """Flow and power curves of one fan.

    Attributes
    ----------
    rpm_max:
        Reference full speed (must match the motor's), RPM.
    cfm_max:
        Free-air flow at ``rpm_max``, CFM.  ~28 CFM suits a strong
        92 mm unit like the paper's 4300 RPM fan.
    power_max:
        Electrical power at ``rpm_max``, W.
    power_floor:
        Controller/electronics power at zero speed, W.
    """

    rpm_max: float = 4300.0
    cfm_max: float = 28.0
    power_max: float = 6.0
    power_floor: float = 0.3

    def __post_init__(self) -> None:
        require_positive(self.rpm_max, "rpm_max")
        require_positive(self.cfm_max, "cfm_max")
        require_positive(self.power_max, "power_max")
        require_non_negative(self.power_floor, "power_floor")

    def airflow(self, rpm: float) -> float:
        """Volumetric flow in CFM at ``rpm`` (affinity: linear)."""
        require_non_negative(rpm, "rpm")
        return self.cfm_max * rpm / self.rpm_max

    def power(self, rpm: float) -> float:
        """Electrical power in W at ``rpm`` (affinity: cubic + floor)."""
        require_non_negative(rpm, "rpm")
        return self.power_floor + self.power_max * (rpm / self.rpm_max) ** 3
