"""PWM duty-cycle discretization.

The paper's driver "discretize[s] the continuous fan speed into 100
distinct speeds from duty cycle of 1% to 100%" (§4.1).
:class:`DutyCycleLadder` is that discretization: an ascending ladder of
duty fractions that doubles as the *mode set* handed to the thermal
control array (higher duty = more cooling effectiveness).

A ladder may be capped (``max_duty``) to emulate a weaker fan — the
mechanism behind Figure 7's maximum-PWM sweep.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..units import require_in_range

__all__ = ["DutyCycleLadder"]


class DutyCycleLadder:
    """Ascending ladder of discrete PWM duty fractions.

    Parameters
    ----------
    steps:
        Number of distinct duties (paper: 100).
    min_duty:
        Lowest duty fraction (paper: 0.01).
    max_duty:
        Highest duty fraction; values below 1.0 emulate a less powerful
        fan (Figure 7 uses 0.25 / 0.50 / 0.75 / 1.00).
    """

    def __init__(
        self,
        steps: int = 100,
        min_duty: float = 0.01,
        max_duty: float = 1.0,
    ) -> None:
        if steps < 2:
            raise ConfigurationError(f"need at least 2 duty steps, got {steps}")
        require_in_range(min_duty, 0.0, 1.0, "min_duty")
        require_in_range(max_duty, 0.0, 1.0, "max_duty")
        if min_duty >= max_duty:
            raise ConfigurationError(
                f"min_duty ({min_duty}) must be < max_duty ({max_duty})"
            )
        self._duties: List[float] = [
            float(d) for d in np.linspace(min_duty, max_duty, steps)
        ]

    def __len__(self) -> int:
        return len(self._duties)

    def __getitem__(self, index: int) -> float:
        return self._duties[index]

    @property
    def duties(self) -> Sequence[float]:
        """All duties, ascending."""
        return tuple(self._duties)

    @property
    def min_duty(self) -> float:
        """Lowest duty in the ladder."""
        return self._duties[0]

    @property
    def max_duty(self) -> float:
        """Highest duty in the ladder."""
        return self._duties[-1]

    def quantize(self, duty: float) -> float:
        """Snap an arbitrary duty fraction to the nearest ladder step.

        Values outside the ladder clamp to its ends, which is how a
        driver with a capped fan treats requests above the cap.
        """
        require_in_range(duty, 0.0, 1.0, "duty")
        arr = np.asarray(self._duties)
        return float(arr[int(np.argmin(np.abs(arr - duty)))])

    def index_of(self, duty: float) -> int:
        """Index of the ladder step nearest to ``duty``."""
        require_in_range(duty, 0.0, 1.0, "duty")
        arr = np.asarray(self._duties)
        return int(np.argmin(np.abs(arr - duty)))

    def capped(self, max_duty: float) -> "DutyCycleLadder":
        """A new ladder with the same step count but a lower ceiling.

        Keeps the number of modes constant so the thermal control array
        geometry (Eq. 1) is unchanged by the cap — only the physical
        effectiveness of the top modes shrinks, exactly like bolting on
        a weaker fan.
        """
        return DutyCycleLadder(
            steps=len(self._duties), min_duty=self.min_duty, max_duty=max_duty
        )
