"""Fan / out-of-band actuation substrate.

The chain mirrors the paper's hardware:

.. code-block:: text

    governor ──▶ FanDriver ──i2c──▶ ADT7467 (PWM register)
                                       │
                                       ▼
                      FanMotor (PWM → RPM, spin-up inertia)
                                       │
                                       ▼
                      FanAero (RPM → airflow CFM, RPM → fan power W)
                                       │
                                       ▼
                      ConvectionModel (airflow → R_conv) → CpuPackage

* :mod:`repro.fan.pwm` — the 100-step duty-cycle discretization of §4.1.
* :mod:`repro.fan.motor` — first-order PWM→RPM dynamics.
* :mod:`repro.fan.aero` — fan affinity laws (flow ∝ RPM, power ∝ RPM³).
* :mod:`repro.fan.adt7467` — register-level ADT7467 dBCool model,
  including its hardware automatic fan-control curve (the paper's
  "traditional" static control, Figure 1).
* :mod:`repro.fan.driver` — the host-side driver governors talk to.
"""

from .adt7467 import ADT7467, Adt7467Config
from .aero import FanAero
from .driver import FanDriver
from .motor import FanMotor, MotorParams
from .pwm import DutyCycleLadder

__all__ = [
    "DutyCycleLadder",
    "MotorParams",
    "FanMotor",
    "FanAero",
    "ADT7467",
    "Adt7467Config",
    "FanDriver",
]
