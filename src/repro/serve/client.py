"""A minimal asyncio HTTP/1.1 client for the serve API.

Exists so the benchmark harness, the CI end-to-end check and the test
suite can drive a real server over a real socket without growing a
dependency: like the server, it is stdlib-only and speaks exactly the
protocol subset :mod:`repro.serve.http` implements (Content-Length
bodies, keep-alive).

:class:`ClientSession` holds one keep-alive connection — the load-test
uses a pool of sessions to model concurrent clients.  The module-level
:func:`request` is the one-shot convenience (connect, exchange, close).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ClientResponse", "ClientSession", "request"]


@dataclass
class ClientResponse:
    """One response: status, lower-cased headers, raw body bytes."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json_body(self) -> object:
        """The body parsed as JSON (callers know which routes are JSON)."""
        import json

        return json.loads(self.body.decode("utf-8"))


class ClientSession:
    """One keep-alive connection to a serve endpoint."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        """Close the underlying connection (safe to call repeatedly)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def request(
        self, method: str, path: str, body: bytes = b""
    ) -> ClientResponse:
        """One request/response exchange (reconnects once if stale)."""
        await self._connect()
        try:
            return await self._exchange(method, path, body)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            # The server may have dropped an idle keep-alive connection
            # between requests; one reconnect is always legal.
            await self.close()
            await self._connect()
            return await self._exchange(method, path, body)

    async def _exchange(
        self, method: str, path: str, body: bytes
    ) -> ClientResponse:
        assert self._reader is not None and self._writer is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            "\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = status_line.decode("latin-1").strip().split(" ", 2)
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if not raw.strip():
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return ClientResponse(status=status, headers=headers, body=payload)


async def request(
    host: str, port: int, method: str, path: str, body: bytes = b""
) -> ClientResponse:
    """One-shot exchange on a fresh connection."""
    session = ClientSession(host, port)
    try:
        return await session.request(method, path, body)
    finally:
        await session.close()
