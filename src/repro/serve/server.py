"""``repro.serve`` — the simulation-as-a-service HTTP surface.

Endpoints (all JSON unless noted):

* ``POST /v1/runs`` — body is a :class:`RunSpec` JSON document (the
  :meth:`RunSpec.to_json` canonical form; :meth:`RunSpec.from_json` is
  the validation seam).  Responses: ``200`` with the full envelope when
  the digest is already terminal or satisfied from the result cache,
  ``202`` with a status envelope when queued (or attached to an
  in-flight duplicate as a follower), ``429`` + ``Retry-After`` when
  admission control sheds the request, ``400`` on a malformed spec.
  ``?wait=1`` blocks until the run is terminal and returns ``200``.
* ``GET /v1/runs/<digest>`` — status envelope (``404`` unknown digest).
* ``GET /v1/runs/<digest>/result`` — **exactly** the canonical summary
  bytes (:func:`~repro.serve.payloads.summary_bytes`); ``409`` while
  the job is still open.  This is the byte-identity surface the
  determinism contract is pinned on.
* ``GET /metrics`` — Prometheus text format 0.0.4 over the server's
  registry: ``serve.http.*`` request counters and latency histograms,
  ``serve.runs.*`` / ``serve.queue.*`` job-ledger instruments, the
  executor's ``host.exec.*`` / ``host.cache.*`` counters, and any
  worker :class:`TelemetrySnapshot` merged from telemetry-enabled runs.
* ``GET /healthz`` — liveness for CI and load balancers.

The server owns one :class:`MetricsRegistry` shared with its
:class:`RunExecutor`, so a single scrape sees the whole request path —
HTTP front, queue, cache, batch groups, process pool.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..errors import ConfigurationError
from ..runtime.executor import RunExecutor
from ..runtime.spec import RunSpec
from ..telemetry.exporters import export_prometheus
from ..telemetry.registry import MetricsRegistry
from . import clockshim
from .http import (
    DEFAULT_MAX_BODY,
    HttpError,
    HttpRequest,
    read_request,
    render_response,
)
from .jobs import Job, JobManager, QueueFull
from .payloads import canonical_json_bytes, error_body

__all__ = ["ServeConfig", "ReproServer", "serve_forever"]

#: Latency histogram bounds, seconds: request handling spans ~100 µs
#: (memory hit) to multi-second cold simulations.
_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs to stand up a server.

    Attributes
    ----------
    host / port:
        Bind address; port ``0`` picks an ephemeral port (tests).
    jobs:
        Worker processes for the underlying :class:`RunExecutor`
        (clamped to the CPU count exactly as ``repro run --jobs`` is).
    cache_dir:
        Content-addressed result cache directory; ``None`` serves
        without a cache (every distinct digest executes).
    queue_depth:
        Admission-control bound on jobs awaiting dispatch.
    batch_window:
        Coalescing window, seconds (see :class:`JobManager`).
    batch:
        Route compatible queued fastpath specs through the lockstep
        batch stepper (``repro serve --no-batch`` disables).
    max_body:
        Largest request body accepted, bytes.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    jobs: int = 1
    cache_dir: Optional[str] = None
    queue_depth: int = 64
    batch_window: float = 0.05
    batch: bool = True
    max_body: int = DEFAULT_MAX_BODY


class ReproServer:
    """The assembled service: HTTP front, job ledger, executor, metrics."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        self.executor = RunExecutor(
            jobs=config.jobs,
            cache_dir=config.cache_dir,
            registry=self.registry,
        )
        self.jobs = JobManager(
            executor=self.executor,
            registry=self.registry,
            queue_depth=config.queue_depth,
            batch_window=config.batch_window,
            batch=config.batch,
        )
        self._server: Optional["asyncio.base_events.Server"] = None
        self._requests = self.registry.counter
        self._latency = self.registry.histogram(
            "serve.http.latency_seconds", buckets=_LATENCY_BUCKETS
        )

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher."""
        self.jobs.start()
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.config.host, port=self.config.port
        )

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the socket and tear down the dispatcher."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.jobs.stop()

    # -- connection handling ---------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: requests in sequence until close."""
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body
                    )
                except HttpError as exc:
                    writer.write(
                        render_response(
                            exc.status,
                            error_body(exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                started = clockshim.perf_counter()
                status, body, content_type, extra = await self._dispatch(
                    request
                )
                self._observe(request, status, started)
                writer.write(
                    render_response(
                        status,
                        body,
                        content_type=content_type,
                        extra_headers=extra,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _observe(
        self, request: HttpRequest, status: int, started: float
    ) -> None:
        """Fold one handled request into the serve.http.* instruments."""
        route = request.path
        if route.startswith("/v1/runs/"):
            route = "/v1/runs/{digest}"
            if request.path.endswith("/result"):
                route += "/result"
        self._requests(
            "serve.http.requests",
            route=route,
            method=request.method,
            status=str(status),
        ).inc()
        self._latency.observe(clockshim.perf_counter() - started)

    # -- routing ---------------------------------------------------------

    async def _dispatch(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, str, Tuple[Tuple[str, str], ...]]:
        """Route one request; returns (status, body, content type, headers)."""
        path, method = request.path, request.method
        try:
            if path == "/healthz":
                if method != "GET":
                    return self._method_not_allowed("GET")
                from .. import __version__

                return (
                    200,
                    canonical_json_bytes(
                        {"status": "ok", "version": __version__}
                    ),
                    "application/json",
                    (),
                )
            if path == "/metrics":
                if method != "GET":
                    return self._method_not_allowed("GET")
                text = export_prometheus(self.registry.snapshot())
                return (
                    200,
                    text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                    (),
                )
            if path == "/v1/runs":
                if method != "POST":
                    return self._method_not_allowed("POST")
                return await self._post_run(request)
            if path.startswith("/v1/runs/"):
                if method != "GET":
                    return self._method_not_allowed("GET")
                return self._get_run(path[len("/v1/runs/"):])
            return 404, error_body(f"no such route {path!r}"), "application/json", ()
        except Exception as exc:  # one request must never kill the server
            return (
                500,
                error_body(f"internal error: {type(exc).__name__}: {exc}"),
                "application/json",
                (),
            )

    @staticmethod
    def _method_not_allowed(
        allowed: str,
    ) -> Tuple[int, bytes, str, Tuple[Tuple[str, str], ...]]:
        return (
            405,
            error_body(f"method not allowed; use {allowed}"),
            "application/json",
            (("Allow", allowed),),
        )

    # -- run endpoints ---------------------------------------------------

    def _envelope(self, job: Job, extra_status: str = "") -> bytes:
        """The status envelope for one job (result inlined when done)."""
        document: dict = {
            "digest": job.digest,
            "status": job.state,
            "location": f"/v1/runs/{job.digest}",
        }
        if extra_status:
            document["disposition"] = extra_status
        if job.source:
            document["source"] = job.source
        if job.state == "done" and job.summary is not None:
            document["result"] = json.loads(job.summary)
            document["result_location"] = f"/v1/runs/{job.digest}/result"
        if job.state == "failed" and job.error is not None:
            document["error"] = job.error
        return canonical_json_bytes(document)

    async def _post_run(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, str, Tuple[Tuple[str, str], ...]]:
        try:
            spec = RunSpec.from_json(request.body.decode("utf-8", "replace"))
        except ConfigurationError as exc:
            return 400, error_body(str(exc)), "application/json", ()
        try:
            job, disposition = self.jobs.submit(spec)
        except QueueFull as exc:
            return (
                429,
                error_body(str(exc), retry_after=exc.retry_after),
                "application/json",
                (("Retry-After", str(exc.retry_after)),),
            )
        if request.query.get("wait") in ("1", "true", "yes"):
            await asyncio.shield(job.future)
            return 200, self._envelope(job, disposition), "application/json", ()
        status = 200 if job.state in ("done", "failed") else 202
        return status, self._envelope(job, disposition), "application/json", ()

    def _get_run(
        self, tail: str
    ) -> Tuple[int, bytes, str, Tuple[Tuple[str, str], ...]]:
        want_result = tail.endswith("/result")
        digest = tail[: -len("/result")] if want_result else tail
        job = self.jobs.get(digest)
        if job is None:
            return (
                404,
                error_body(f"unknown run digest {digest!r}"),
                "application/json",
                (),
            )
        if not want_result:
            return 200, self._envelope(job), "application/json", ()
        if job.state != "done" or job.summary is None:
            return (
                409,
                error_body(
                    f"run {digest!r} is {job.state}; no result bytes yet"
                ),
                "application/json",
                (),
            )
        return 200, job.summary, "application/json", ()


async def serve_forever(config: ServeConfig) -> None:
    """Stand up a server and run until cancelled (the CLI entry point)."""
    server = ReproServer(config)
    await server.start()
    sock = server.port
    print(f"repro.serve listening on http://{config.host}:{sock}")
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()
