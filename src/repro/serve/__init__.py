"""``repro.serve`` — simulation-as-a-service on the runtime layer.

A stdlib-only (``asyncio``, hand-rolled HTTP/1.1 — no ``http.server``)
async job server that turns the repo's request-path ingredients —
digest-keyed frozen :class:`~repro.runtime.spec.RunSpec`\\ s, the
content-addressed result cache, in-flight dedup and the lockstep batch
stepper — into an actual service:

.. code-block:: console

    $ repro serve --port 8080 --jobs 4 --cache-dir .repro-cache
    $ curl -X POST localhost:8080/v1/runs -d "$(spec_json)"   # 202 queued
    $ curl localhost:8080/v1/runs/<digest>                    # poll status
    $ curl localhost:8080/v1/runs/<digest>/result             # canonical bytes
    $ curl localhost:8080/metrics                             # Prometheus

The architecture is three small pieces over the existing runtime:

* :mod:`repro.serve.http` — request parsing / response framing on raw
  asyncio streams;
* :mod:`repro.serve.jobs` — the content-addressed job ledger:
  admission control (bounded queue, 429 overflow), in-flight dedup
  (followers await the leader's future) and windowed batch coalescing
  into :meth:`RunExecutor.map`;
* :mod:`repro.serve.server` — routing, metrics and lifecycle.

Determinism contract: a served result summary is **byte-identical** to
what ``repro run`` produces for the same spec (see
:mod:`repro.serve.payloads` and ``docs/serving.md``), and no module in
this package may import ``time``/``datetime`` outside the
:mod:`~repro.serve.clockshim` seam — lint rule RPR008 extends the
telemetry clock discipline over the whole package.
"""

from .client import ClientResponse, ClientSession, request
from .jobs import Job, JobManager, QueueFull
from .payloads import result_summary, summary_bytes
from .server import ReproServer, ServeConfig, serve_forever

__all__ = [
    "ClientResponse",
    "ClientSession",
    "Job",
    "JobManager",
    "QueueFull",
    "ReproServer",
    "ServeConfig",
    "request",
    "result_summary",
    "serve_forever",
    "summary_bytes",
]
