"""Canonical wire forms: the served result summary and error bodies.

The serving determinism contract (``docs/serving.md``) is pinned at the
byte level: ``GET /v1/runs/<digest>/result`` must return **exactly**
the bytes :func:`summary_bytes` produces for ``(spec, result)`` — and
because :func:`execute_spec` is a pure function of the spec, those
bytes are identical whether the run executed cold in a server worker,
came out of the content-addressed cache, ran inside a lockstep batch
group, or ran locally via ``repro run``.  The tests and the CI serve
leg compare the server's bytes against a local
:func:`~repro.runtime.execute.execute_spec` of the same spec.

Traces and events are folded in as SHA-256 digests rather than inlined
(a full trace set is megabytes of float64 samples); byte-equality of
two summaries therefore still implies bitwise equality of every trace
array and every event line, without shipping the arrays themselves.

Everything here is a pure function of its arguments — no clocks, no
registry reads, no server state — which is what makes the summary
cacheable and the contract testable.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # imported for annotations only: no runtime cycle
    from ..cluster.cluster import RunResult
    from ..runtime.spec import RunSpec

__all__ = [
    "SUMMARY_SCHEMA_VERSION",
    "canonical_json_bytes",
    "error_body",
    "result_summary",
    "summary_bytes",
]

#: Version stamped on every result summary (bump on shape changes).
SUMMARY_SCHEMA_VERSION = 1


def _finite(value: float) -> Any:
    """Floats as JSON; non-finite values as their repr string."""
    return value if math.isfinite(value) else repr(value)


def canonical_json_bytes(document: Dict[str, Any]) -> bytes:
    """The one JSON rendering the server ever emits for a document.

    Sorted keys, compact separators, a trailing newline, UTF-8 — the
    same canonicalization :meth:`RunSpec.canonical` uses, so "two
    summaries are equal" and "two summaries are byte-identical" are the
    same statement.
    """
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _trace_digest(times, values) -> str:
    """SHA-256 over a trace's raw sample arrays (times then values)."""
    h = hashlib.sha256()
    h.update(times.tobytes())
    h.update(values.tobytes())
    return h.hexdigest()


def _events_digest(events) -> str:
    """SHA-256 over the event log's rendered lines, in order."""
    h = hashlib.sha256()
    for event in events:
        h.update(str(event).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def result_summary(spec: "RunSpec", result: "RunResult") -> Dict[str, Any]:
    """The canonical JSON-safe summary of one run.

    Scalar outcomes (powers, energies, shutdowns, retired cycles) are
    carried verbatim; the trace set and event log are carried as
    per-trace sample counts plus SHA-256 digests, so equality of
    summaries implies bitwise equality of the underlying run.
    """
    traces = {
        name: {
            "samples": int(len(result.traces[name].times)),
            "sha256": _trace_digest(
                result.traces[name].times, result.traces[name].values
            ),
        }
        for name in sorted(result.traces.names())
    }
    return {
        "schema": SUMMARY_SCHEMA_VERSION,
        "digest": spec.digest(),
        "describe": spec.describe(),
        "workload": spec.workload,
        "seed": spec.seed,
        "n_nodes": spec.n_nodes,
        "quick": spec.quick,
        "job_name": result.job_name,
        "execution_time": _finite(result.execution_time),
        "average_power": [_finite(p) for p in result.average_power],
        "energy_joules": [_finite(e) for e in result.energy_joules],
        "node_shutdown": list(result.node_shutdown),
        "retired_cycles": [_finite(c) for c in result.retired_cycles],
        "cluster_average_power": _finite(result.cluster_average_power),
        "cluster_energy": _finite(result.cluster_energy),
        "traces": traces,
        "events": {
            "count": len(result.events),
            "sha256": _events_digest(result.events),
        },
        "telemetry": result.telemetry is not None,
    }


def summary_bytes(spec: "RunSpec", result: "RunResult") -> bytes:
    """:func:`result_summary` rendered in the canonical byte form."""
    return canonical_json_bytes(result_summary(spec, result))


def error_body(message: str, **extra: Any) -> bytes:
    """A canonical JSON error body (``{"error": message, ...}``)."""
    document: Dict[str, Any] = {"error": message}
    document.update(extra)
    return canonical_json_bytes(document)
