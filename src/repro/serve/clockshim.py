"""The one sanctioned wall-clock seam of the serving layer.

``repro.serve`` extends the telemetry subsystem's clock discipline
(lint rule RPR008) to the request path: no module under ``serve/`` may
import ``time`` or ``datetime`` — except this one.  Every wall-clock
read the server makes (request latency, queue wait, load-test timing)
flows through :func:`perf_counter`, so the entire surface where
nondeterminism can enter the serving layer is this file, and the
linter proves it stays that way.

Why so strict, when the server is host-side code that RPR001 would
happily let read ``perf_counter`` directly?  Because the serving
layer's determinism contract is *result-level*: a served
:class:`~repro.cluster.cluster.RunResult` summary must be byte-identical
to what ``repro run`` produces for the same spec.  Funnelling every
clock read through one module makes "could a timestamp leak into a
response body?" a grep-sized question instead of an audit.  Epoch time
(``time.time``) is deliberately not re-exported: nothing in the serving
layer has a legitimate use for absolute timestamps, and RPR001 bans the
call everywhere anyway.
"""

from __future__ import annotations

import time

__all__ = ["perf_counter"]


def perf_counter() -> float:
    """Monotonic host clock, seconds (latency and throughput timing).

    Host-side timing only: values from this clock feed ``serve.*`` and
    ``host.*`` metrics and log lines, never a response body — bodies
    are pure functions of the spec (the serving determinism contract).
    """
    return time.perf_counter()
