"""A deliberately small HTTP/1.1 layer on raw asyncio streams.

The serving layer is stdlib-only *and* ``http.server``-free: requests
are parsed and responses framed by hand on ``asyncio.StreamReader`` /
``StreamWriter`` pairs from :func:`asyncio.start_server`.  The subset
implemented is exactly what a JSON job API needs — request line,
headers, ``Content-Length`` bodies, keep-alive — and nothing else: no
chunked transfer encoding, no trailers, no upgrades, no pipelining
guarantees beyond strict request-at-a-time per connection.

Framing errors raise :class:`HttpError` with the right status code
(400 malformed, 413 oversized, 505 unsupported version) so the
connection handler can answer with a proper error response instead of
slamming the socket shut.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote

__all__ = [
    "DEFAULT_MAX_BODY",
    "HttpError",
    "HttpRequest",
    "STATUS_REASONS",
    "read_request",
    "render_response",
]

#: Largest request body accepted, bytes (a RunSpec JSON is < 4 KiB).
DEFAULT_MAX_BODY = 1 << 20

#: Largest single header line accepted, bytes.
_MAX_HEADER_LINE = 8192

#: Most header lines accepted per request.
_MAX_HEADER_COUNT = 100

#: Reason phrases for every status the server emits.
STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    505: "HTTP Version Not Supported",
}


class HttpError(Exception):
    """A framing-level protocol error, carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request.

    Attributes
    ----------
    method / path:
        Verb and the percent-decoded path (query string stripped).
    query:
        Decoded query parameters (last value wins on repeats).
    headers:
        Header mapping with lower-cased names.
    body:
        Raw body bytes (empty when no ``Content-Length``).
    keep_alive:
        Whether the connection survives this exchange (HTTP/1.1
        default, overridden by ``Connection:`` headers).
    """

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    """One CRLF- (or LF-) terminated line, bounded by the header limit."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header line exceeds limit") from None
    if len(line) > _MAX_HEADER_LINE:
        raise HttpError(400, "header line exceeds limit")
    return line


def _parse_request_line(line: bytes) -> Tuple[str, str, str]:
    parts = line.decode("latin-1").strip().split(" ")
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, version = parts
    if not method.isalpha() or not method.isupper():
        raise HttpError(400, "malformed method")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(505, f"unsupported protocol version {version!r}")
    return method, target, version


async def read_request(
    reader: asyncio.StreamReader, max_body: int = DEFAULT_MAX_BODY
) -> Optional[HttpRequest]:
    """Parse one request off the stream.

    Returns ``None`` on a clean end-of-stream before any bytes (the
    peer closed an idle keep-alive connection); raises
    :class:`HttpError` on anything malformed.
    """
    line = await _read_line(reader)
    if not line.strip():
        return None
    method, target, version = _parse_request_line(line)

    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADER_COUNT + 1):
        raw = await _read_line(reader)
        if not raw.strip():
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep or not name.strip() or name != name.strip():
            raise HttpError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many header lines")

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated body") from None
    elif "transfer-encoding" in headers:
        raise HttpError(400, "transfer encodings are not supported")

    raw_path, _, query_string = target.partition("?")
    query = dict(parse_qsl(query_string, keep_blank_values=True))
    connection = headers.get("connection", "").lower()
    keep_alive = version == "HTTP/1.1"
    if connection == "close":
        keep_alive = False
    elif connection == "keep-alive":
        keep_alive = True
    return HttpRequest(
        method=method,
        path=unquote(raw_path),
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """Frame one response as wire bytes.

    No ``Date`` header by design: response bytes are pure functions of
    their inputs (the serving determinism contract), and the serving
    layer has no epoch clock to stamp one with anyway (see
    :mod:`repro.serve.clockshim`).
    """
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
