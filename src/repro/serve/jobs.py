"""The job ledger: admission control, in-flight dedup, batch coalescing.

One :class:`JobManager` owns everything between "a spec arrived" and "a
summary exists":

* **Identity.**  Jobs are keyed by the spec's content digest — the same
  digest the runtime cache uses — so *the request path is
  content-addressed end to end*: two requests for the same spec are the
  same job, whether they arrive a microsecond or a day apart.
* **Admission control.**  At most ``queue_depth`` jobs may sit queued
  (accepted, not yet dispatched).  Overflow raises :class:`QueueFull`,
  which the server answers with ``429`` + ``Retry-After`` — the caller
  sheds load instead of the server growing an unbounded backlog.
* **In-flight dedup.**  A request for a digest that is already queued
  or running attaches to the existing job as a *follower*: it awaits
  the leader's future and is never admitted, queued or executed
  separately (so duplicates also cannot trip admission control).
* **Batch coalescing.**  Queued jobs are dispatched in windows: the
  dispatcher sleeps ``batch_window`` seconds after work arrives, then
  takes *everything* queued in one sweep and hands it to
  :meth:`RunExecutor.map`, which groups compatible fastpath specs
  (same ``_batch_key``) through the lockstep batch stepper — so
  sweep-shaped traffic (fig07's cap ladder POSTed as four requests)
  executes exactly like ``repro run fig7 --batch`` would run it.

Determinism: none of this machinery touches result *content*.  Batched,
deduplicated, cached and cold executions of one spec all produce the
same :class:`~repro.cluster.cluster.RunResult` bytes (the executor's
own equivalence gates), so the summary a job stores is independent of
the traffic pattern that produced it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.executor import RunExecutor
from ..runtime.spec import RunSpec
from ..telemetry.registry import MetricsRegistry
from .payloads import summary_bytes

__all__ = ["Job", "JobManager", "QueueFull"]

#: Job lifecycle states (monotonic: queued -> running -> done|failed).
_STATES = ("queued", "running", "done", "failed")


class QueueFull(Exception):
    """Admission control rejected a new job (queue at ``queue_depth``)."""

    def __init__(self, queue_depth: int, retry_after: int) -> None:
        super().__init__(
            f"run queue is full ({queue_depth} jobs queued); retry later"
        )
        self.queue_depth = queue_depth
        self.retry_after = retry_after


@dataclass
class Job:
    """One admitted spec and everything known about its execution."""

    spec: RunSpec
    digest: str
    state: str = "queued"
    #: Canonical result bytes once done (see :mod:`repro.serve.payloads`).
    summary: Optional[bytes] = None
    #: Error text once failed.
    error: Optional[str] = None
    #: Resolved when the job reaches a terminal state.
    future: "asyncio.Future" = field(default_factory=asyncio.Future)
    #: How the result materialized: "executed", "cache", or "" while open.
    source: str = ""

    def finish(self, summary: Optional[bytes], error: Optional[str]) -> None:
        """Move to a terminal state and wake every waiter."""
        if error is None:
            self.state = "done"
            self.summary = summary
        else:
            self.state = "failed"
            self.error = error
        if not self.future.done():
            self.future.set_result(self.state)


class JobManager:
    """Admission, dedup and windowed dispatch over one :class:`RunExecutor`.

    Parameters
    ----------
    executor:
        The runtime executor every job runs through (its cache directory
        and process fan-out are the server's worker pool).
    registry:
        Metrics registry for the ``serve.runs.*`` / ``serve.queue.*``
        instruments (normally shared with the executor, so ``/metrics``
        exports both in one scrape).
    queue_depth:
        Most jobs allowed in the queued state at once.
    batch_window:
        Seconds the dispatcher lingers after work arrives before
        sweeping the queue, so near-simultaneous compatible specs
        coalesce into one lockstep batch group.  ``0`` dispatches
        immediately (whatever is queued by then still groups).
    batch:
        Whether swept queues are mapped with ``batch=True``.  Only
        specs that already carry ``fastpath=True`` are eligible either
        way: the server never flips spec flags, because flags are part
        of the digest the client addressed — so non-fastpath specs are
        mapped separately with batching off, exactly as POSTed.
    """

    def __init__(
        self,
        executor: RunExecutor,
        registry: MetricsRegistry,
        queue_depth: int = 64,
        batch_window: float = 0.05,
        batch: bool = True,
    ) -> None:
        self.executor = executor
        self.queue_depth = max(1, int(queue_depth))
        self.batch_window = max(0.0, float(batch_window))
        self.batch = batch
        self._jobs: Dict[str, Job] = {}
        self._queued: List[Job] = []
        self._wakeup = asyncio.Event()
        self._task: Optional["asyncio.Task"] = None
        self._submitted = registry.counter("serve.runs.submitted")
        self._completed = registry.counter("serve.runs.completed")
        self._failed = registry.counter("serve.runs.failed")
        self._rejected = registry.counter("serve.runs.rejected")
        self._cache_hits = registry.counter("serve.runs.cache_hits")
        self._followers = registry.counter("serve.runs.dedup_followers")
        self._depth = registry.gauge("serve.queue.depth")

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher task (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def stop(self) -> None:
        """Cancel the dispatcher and fail any still-open jobs."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for job in self._jobs.values():
            if job.state in ("queued", "running"):
                job.finish(None, "server shut down before the run completed")
        self._queued.clear()
        self._depth.set(0.0)

    # -- submission ------------------------------------------------------

    def get(self, digest: str) -> Optional[Job]:
        """The job for a digest, or ``None`` if never admitted."""
        return self._jobs.get(digest)

    def submit(self, spec: RunSpec) -> Tuple[Job, str]:
        """Admit a spec (or attach to its existing job).

        Returns ``(job, disposition)`` where disposition is one of
        ``"queued"`` (newly admitted), ``"follower"`` (attached to an
        in-flight duplicate), ``"done"``/``"failed"`` (already
        terminal), or ``"cache"`` (satisfied from the result cache
        without executing).  Raises :class:`QueueFull` when admission
        control rejects a genuinely new job.
        """
        digest = spec.digest(version=self.executor.cache_version)
        job = self._jobs.get(digest)
        if job is not None:
            if job.state in ("queued", "running"):
                self._followers.inc()
                return job, "follower"
            return job, job.state

        cached = self.executor.cached(spec)
        if cached is not None:
            self._cache_hits.inc()
            job = Job(spec=spec, digest=digest, state="done", source="cache")
            job.finish(summary_bytes(spec, cached), None)
            self._jobs[digest] = job
            return job, "cache"

        if len(self._queued) >= self.queue_depth:
            self._rejected.inc()
            raise QueueFull(
                self.queue_depth, retry_after=max(1, round(self.batch_window) + 1)
            )
        self._submitted.inc()
        job = Job(spec=spec, digest=digest)
        self._jobs[digest] = job
        self._queued.append(job)
        self._depth.set(float(len(self._queued)))
        self._wakeup.set()
        return job, "queued"

    @property
    def queued_count(self) -> int:
        """Jobs currently awaiting dispatch."""
        return len(self._queued)

    # -- dispatch --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Sweep the queue in coalescing windows, forever."""
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            if not self._queued:
                continue
            window, self._queued = self._queued, []
            self._depth.set(0.0)
            for job in window:
                job.state = "running"
            outcomes = await asyncio.to_thread(
                self._run_window, [job.spec for job in window]
            )
            for job, (summary, error) in zip(window, outcomes):
                job.source = "executed"
                job.finish(summary, error)
                (self._completed if error is None else self._failed).inc()

    def _run_window(
        self, specs: Sequence[RunSpec]
    ) -> List[Tuple[Optional[bytes], Optional[str]]]:
        """Execute one swept window on the executor (worker thread).

        Fastpath specs go through one ``map(batch=...)`` call so
        compatible groups hit the lockstep stepper; everything else
        maps with batching off (``map(batch=True)`` would flip
        ``fastpath`` on and change the digests the clients addressed).
        A failing spec only fails itself: on a window-level error the
        window re-runs spec by spec so errors attribute precisely.
        """
        fast = [i for i, s in enumerate(specs) if s.fastpath]
        rest = [i for i, s in enumerate(specs) if not s.fastpath]
        out: List[Tuple[Optional[bytes], Optional[str]]] = [
            (None, None)
        ] * len(specs)
        for indexes, use_batch in ((fast, self.batch), (rest, False)):
            if not indexes:
                continue
            group = [specs[i] for i in indexes]
            try:
                results = self.executor.map(group, batch=use_batch)
            except Exception:
                results = None
            if results is not None:
                for i, result in zip(indexes, results):
                    out[i] = (summary_bytes(specs[i], result), None)
                continue
            for i in indexes:
                try:
                    result = self.executor.run(specs[i])
                except Exception as exc:  # surface per-spec, keep serving
                    out[i] = (None, f"{type(exc).__name__}: {exc}")
                else:
                    out[i] = (summary_bytes(specs[i], result), None)
        return out
