"""The N-core cluster node: a floorplan-bearing :class:`Node` variant.

:class:`MulticoreNode` swaps the single-core compute complex for a
:class:`~repro.thermal.multicore.MulticorePackage` plus one DVFS domain
per core class — a :class:`~repro.cpu.dvfs.GangedDvfs` lead (class 0)
that governors actuate exactly as they do the single-core ladder, with
follower domains tracking it proportionally.  Everything else — fan
chip, motor, aero, sensor, meter, PROCHOT/THERMTRIP protection — is
inherited unchanged from :class:`~repro.cluster.node.Node`, which is
what lets the whole governor and controller stack run on heterogeneous
silicon without modification:

* the per-package :class:`~repro.thermal.sensor.ThermalSensor` reads
  :attr:`~repro.thermal.multicore.MulticorePackage.die_temperature`
  (the hottest core — what a per-package diode reports),
* the hardware protection path slams the lead DVFS domain, which the
  gang propagates to every class's floor,
* the fan chip sees the same remote/local diode pair.

Per tick, each core's power is computed from its *class* model at the
class's current P-state and that core's own temperature (per-core
leakage feedback), under the node-wide utilization of the bound rank —
the job spans the node, so all cores share its duty cycle.

The fastpath treats this node as a reference-path component: the step
compiler compiles the package's RC network (generic, byte-identical by
the compiler's contract) but keeps this class's own ``step`` logic;
the batched fastpath refuses the node entirely and falls back to
serial execution (see :mod:`repro.fastpath.batch`).
"""

from __future__ import annotations

from typing import List

from ..config import NodeConfig
from ..cpu.core import CpuCore
from ..cpu.dvfs import Dvfs, GangedDvfs
from ..cpu.power import CpuPowerModel
from ..errors import ConfigurationError
from ..thermal.multicore import MulticorePackage
from .node import Node

__all__ = ["MulticoreNode"]


class MulticoreNode(Node):
    """A cluster node built around an N-core die floorplan.

    Construction requires ``config.floorplan``; the constructor
    signature is identical to :class:`~repro.cluster.node.Node`.
    """

    def _build_compute(self, cfg: NodeConfig, name: str, events) -> None:
        floorplan = cfg.floorplan
        if floorplan is None:
            raise ConfigurationError(
                f"MulticoreNode {name!r} needs a config with a floorplan"
            )
        self.package = MulticorePackage(
            n_cores=floorplan.n_cores,
            c_core=floorplan.c_core,
            c_sink=floorplan.c_sink,
            r_core_sink=floorplan.r_core_sink,
            r_core_core=floorplan.r_core_core,
            convection=cfg.convection,
            ambient=self.ambient,
            name=f"{name}.pkg",
        )
        followers = [
            Dvfs(
                table=cls.pstates,
                transition_latency=cfg.dvfs_latency,
                events=events,
                name=f"{name}.dvfs.{cls.name}",
            )
            for cls in floorplan.classes[1:]
        ]
        self.dvfs = GangedDvfs(
            table=floorplan.classes[0].pstates,
            followers=followers,
            transition_latency=cfg.dvfs_latency,
            events=events,
            name=f"{name}.dvfs",
        )
        self.core = CpuCore(self.dvfs, name=f"{name}.core")
        self.power_model = CpuPowerModel(floorplan.classes[0].power)
        #: DVFS domain per class, index-aligned with the class list.
        self.domains = (self.dvfs, *followers)
        self._class_models = tuple(
            CpuPowerModel(cls.power) for cls in floorplan.classes
        )
        #: Class index of each core, floorplan order (class 0 first).
        self._core_class = tuple(
            k
            for k, cls in enumerate(floorplan.classes)
            for _ in range(cls.count)
        )
        self._core_powers: List[float] = [0.0] * floorplan.n_cores

    # -- observables -----------------------------------------------------

    def core_powers(self) -> List[float]:
        """Per-core power over the last tick, W (floorplan order)."""
        return list(self._core_powers)

    # -- dynamics ----------------------------------------------------------

    def step(self, t: float, dt: float) -> None:
        cfg = self.config
        package = self.package
        self._protection(t)
        # 1. workload execution at the lead frequency; 2. per-core
        # power from each class's model at that core's temperature.
        if self._shutdown:
            powers = [0.0] * package.n_cores
            self._cpu_power = 0.0
        else:
            if self._prochot:
                # PROCHOT re-clamps the lead every tick; the gang drags
                # every follower class to its own floor.
                self.dvfs.set_index(len(self.dvfs.table) - 1, t)
            self.core.step(t, dt)
            utilization = self.core.utilization
            temps = package.core_temperatures()
            powers = [
                self._class_models[k].power(
                    self.domains[k].pstate, utilization, temps[i]
                )
                for i, k in enumerate(self._core_class)
            ]
            self._cpu_power = sum(powers)
        self._core_powers = powers
        # 3. fan chip ingests measurements; auto mode updates its PWM
        self.fan_chip.update(
            remote_temp=package.die_temperature,
            local_temp=package.ambient_temperature,
            rpm=self.fan_motor.rpm,
        )
        # 4. rotor tracks the chip's PWM output
        self.fan_motor.set_duty(self.fan_chip.commanded_duty)
        self.fan_motor.step(t, dt)
        airflow = self.fan_aero.airflow(self.fan_motor.rpm)
        fan_power = self.fan_aero.power(self.fan_motor.rpm)
        # 5. thermal integration across the floorplan
        package.set_powers(powers)
        package.set_airflow(airflow)
        package.step(t, dt)
        # 6. wall power (a shut-down node still draws standby power)
        if self._shutdown:
            self._wall_power = 5.0 + fan_power
        else:
            self._wall_power = cfg.baseboard_power + self._cpu_power + fan_power
        self.meter.record(self._wall_power, dt)
