"""The cluster assembly: nodes + job + governors under one engine.

:class:`Cluster` is the top-level object experiments interact with:

.. code-block:: python

    cluster = Cluster(ClusterConfig(n_nodes=4))
    job = bt_b_4(rng=cluster.rngs.stream("workload"))
    for node in cluster.nodes:
        cluster.add_governor(node, DynamicFanControl(...))
    result = cluster.run_job(job)
    result.execution_time, result.traces["node0.temp"].mean()

Responsibilities:

* build N :class:`~repro.cluster.node.Node` objects with independent
  RNG streams,
* bind a :class:`~repro.workloads.base.Job`'s ranks onto the nodes,
* deliver sensor samples (at the configured 4 Hz) and control
  intervals to the attached governors,
* record the standard trace set every experiment consumes
  (``node{i}.temp/duty/rpm/freq_ghz/power/util``), and
* run until the job finishes, returning a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import ClusterConfig
from ..errors import ConfigurationError, SimulationError
from ..governors.base import Governor
from ..sim.engine import SimulationEngine
from ..sim.events import EventLog
from ..sim.rng import RngStreams
from ..sim.trace import TraceSet
from ..telemetry.registry import NULL_REGISTRY, MetricsRegistry
from ..telemetry.snapshot import TelemetrySnapshot
from ..workloads.base import Job
from .node import Node

__all__ = ["Cluster", "RunResult"]


@dataclass
class RunResult:
    """Everything an experiment needs from one cluster run.

    Attributes
    ----------
    execution_time:
        Wall time from job start to the last rank finishing, seconds.
    traces:
        The recorded trace set (sensor cadence).
    events:
        All discrete events (DVFS changes, governor actions).
    average_power:
        Mean wall power per node over the run, W (index-aligned).
    energy_joules:
        Wall energy per node over the run, J.
    job_name:
        Name of the job that ran.
    node_shutdown:
        Whether each node THERMTRIP'd during the run (index-aligned;
        empty on legacy constructions).
    retired_cycles:
        Work retired per node over the run, cycles.
    telemetry:
        Frozen :class:`~repro.telemetry.snapshot.TelemetrySnapshot` of
        the run's metrics registry, or None when telemetry was off.

    The whole object is cheaply picklable (traces and events are
    numpy/dataclass-backed with no references back into the live
    cluster), which is what lets the runtime layer ship results across
    process boundaries and cache them on disk.
    """

    execution_time: float
    traces: TraceSet
    events: EventLog
    average_power: List[float]
    energy_joules: List[float]
    job_name: str
    node_shutdown: List[bool] = field(default_factory=list)
    retired_cycles: List[float] = field(default_factory=list)
    telemetry: Optional[TelemetrySnapshot] = None

    @property
    def cluster_average_power(self) -> float:
        """Mean of the per-node average powers, W."""
        return sum(self.average_power) / len(self.average_power)

    @property
    def cluster_energy(self) -> float:
        """Total wall energy across nodes, J."""
        return sum(self.energy_joules)

    def power_delay_product(self, node: int = 0) -> float:
        """Table 1's metric: average power × execution time (W·s)."""
        return self.average_power[node] * self.execution_time

    def dvfs_change_count(self, node: int = 0) -> int:
        """Number of P-state transitions on ``node`` during the run."""
        return self.events.count("dvfs.change", source=f"node{node}.dvfs")


class Cluster:
    """N simulated nodes under one fixed-step engine.

    Parameters
    ----------
    config:
        Cluster-wide configuration (node physics, dt, seed).
    ambient_factory:
        Optional callable ``(node_index) -> AmbientModel`` giving each
        node its own inlet model — used by the scaling experiment to
        impose a rack thermal gradient.  Default: every node sees the
        constant ambient from the node config.
    telemetry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`.
        When given (and enabled), governors wired through
        :mod:`repro.experiments.platform` record decision provenance
        into it, the cluster counts sensor rounds, and the run's
        :class:`RunResult` carries a frozen snapshot.  Default: the
        shared :data:`~repro.telemetry.registry.NULL_REGISTRY` (true
        no-op).
    fastpath:
        When True, the engine runs through the :mod:`repro.fastpath`
        step compiler and the sensor task records through pre-resolved
        trace handles and block writers.  Results (traces, events,
        telemetry) are byte-identical to the reference path.
    platform:
        Optional :class:`~repro.platform.spec.PlatformSpec` this
        cluster's node config was derived from.  Carried so rigging
        helpers can scale policies to the platform's safe band; when
        None (the default) riggings use the paper's band unchanged.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        ambient_factory=None,
        telemetry: Optional[MetricsRegistry] = None,
        fastpath: bool = False,
        platform=None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        self.fastpath = bool(fastpath)
        self.platform = platform
        self._writers: list = []
        self.rngs = RngStreams(self.config.seed)
        self.engine = SimulationEngine(dt=self.config.dt, fastpath=self.fastpath)
        self.events: EventLog = self.engine.events
        self.traces: TraceSet = self.engine.traces
        self.nodes: List[Node] = []
        if self.config.node.floorplan is None:
            node_cls = Node
        else:
            from .multicore_node import MulticoreNode

            node_cls = MulticoreNode
        for i in range(self.config.n_nodes):
            node = node_cls(
                name=f"node{i}",
                config=self.config.node,
                events=self.events,
                rng=self.rngs.stream(f"node{i}.sensor"),
                ambient=ambient_factory(i) if ambient_factory else None,
            )
            self.nodes.append(node)
            self.engine.add_component(node)
        self._governors: Dict[str, List[Governor]] = {n.name: [] for n in self.nodes}
        self._wired = False

    # -- wiring ----------------------------------------------------------

    def node(self, index: int) -> Node:
        """The ``index``-th node."""
        try:
            return self.nodes[index]
        except IndexError:
            raise ConfigurationError(
                f"node index {index} out of range (cluster has "
                f"{len(self.nodes)} nodes)"
            ) from None

    def add_governor(self, node: Node, governor: Governor) -> Governor:
        """Attach a governor daemon to ``node``."""
        if node.name not in self._governors:
            raise ConfigurationError(f"unknown node {node.name!r}")
        if self._wired:
            raise SimulationError("cannot attach governors after the run started")
        self._governors[node.name].append(governor)
        return governor

    def add_governor_per_node(self, factory) -> List[Governor]:
        """Attach ``factory(node)``'s governor to every node; returns them."""
        return [self.add_governor(n, factory(n)) for n in self.nodes]

    def bind_job(self, job: Job) -> None:
        """Assign job ranks to nodes (rank i → node i).

        The job may span fewer ranks than the cluster has nodes; the
        remainder idle.  More ranks than nodes is an error.
        """
        if job.n_ranks > len(self.nodes):
            raise ConfigurationError(
                f"job {job.name!r} has {job.n_ranks} ranks but the cluster "
                f"only has {len(self.nodes)} nodes"
            )
        for i, rank in enumerate(job.ranks):
            self.nodes[i].bind_rank(rank)

    # -- running ------------------------------------------------------------

    def _wire_tasks(self) -> None:
        """Register the sensor/trace task and per-governor interval tasks."""
        if self._wired:
            return
        self._wired = True

        # Resolved once: the per-tick cost with telemetry off is two
        # no-op method calls on the shared null instruments.
        sensor_rounds = self.telemetry.counter("sim.sensor_rounds")
        sensor_samples = self.telemetry.counter("sim.samples")
        n_nodes = float(len(self.nodes))

        if self.fastpath:
            sample_and_record = self._compile_sampler(
                sensor_rounds, sensor_samples, n_nodes
            )
        else:

            def sample_and_record(t: float) -> None:
                sensor_rounds.inc()
                sensor_samples.inc(n_nodes)
                for node in self.nodes:
                    temp = node.sensor.sample(t)
                    self.traces.record(f"{node.name}.temp", t, temp)
                    self.traces.record(f"{node.name}.duty", t, node.fan_duty)
                    self.traces.record(f"{node.name}.rpm", t, node.fan_rpm)
                    self.traces.record(
                        f"{node.name}.freq_ghz", t, node.dvfs.pstate.frequency_ghz
                    )
                    self.traces.record(f"{node.name}.power", t, node.wall_power)
                    self.traces.record(f"{node.name}.util", t, node.core.utilization)
                    for governor in self._governors[node.name]:
                        governor.on_sample(t, temp)

        self.engine.every(self.config.node.sensor_period, sample_and_record)

        for node in self.nodes:
            for governor in self._governors[node.name]:
                # Bind loop variables explicitly; each governor gets its
                # own periodic task at its own control interval.
                self.engine.every(
                    governor.period,
                    (lambda gov: lambda t: gov.on_interval(t))(governor),
                )

        for node in self.nodes:
            for governor in self._governors[node.name]:
                governor.start(self.engine.clock.now)

    def _compile_sampler(self, sensor_rounds, sensor_samples, n_nodes: float):
        """Fastpath sensor task: pre-resolved handles, block-buffered traces.

        Creates the standard per-node traces up front (same insertion
        order as the reference path's first sampling round) and binds
        one :class:`~repro.fastpath.recording.TraceBlockWriter` pair of
        appenders per trace, so the per-sample cost is list appends
        instead of f-string keys, dict lookups and numpy scalar writes.
        Sample values are read from the same state the reference
        properties expose.
        """
        from ..fastpath.recording import TraceBlockWriter

        plans = []
        for node in self.nodes:
            writers = [
                TraceBlockWriter(self.traces.trace(f"{node.name}.{suffix}"))
                for suffix in ("temp", "duty", "rpm", "freq_ghz", "power", "util")
            ]
            self._writers.extend(writers)
            plans.append(
                (
                    node,
                    node.sensor.sample,
                    node.fan_motor,
                    node.dvfs,
                    node.core,
                    tuple(w.add for w in writers),
                    tuple(self._governors[node.name]),
                )
            )
        plans = tuple(plans)

        def sample_and_record(t: float) -> None:
            sensor_rounds.inc()
            sensor_samples.inc(n_nodes)
            for node, sample, motor, dvfs, core, recs, governors in plans:
                temp = sample(t)
                recs[0](t, temp)
                recs[1](t, motor._duty)
                recs[2](t, motor._rpm)
                recs[3](t, dvfs.pstate.frequency_ghz)
                recs[4](t, node._wall_power)
                recs[5](t, core._utilization)
                for governor in governors:
                    governor.on_sample(t, temp)

        return sample_and_record

    def _flush_traces(self) -> None:
        """Flush any fastpath block writers into their traces."""
        for writer in self._writers:
            writer.flush()

    def run_job(
        self,
        job: Job,
        timeout: float = 3600.0,
        tail: float = 0.0,
    ) -> RunResult:
        """Bind ``job``, run until it finishes, and summarize.

        Parameters
        ----------
        job:
            The parallel workload.
        timeout:
            Hard ceiling on simulated seconds; exceeding it raises
            :class:`SimulationError` (a stuck barrier would otherwise
            hang forever).
        tail:
            Extra seconds to keep simulating after the job finishes
            (lets temperature decay be observed).
        """
        self.bind_job(job)
        self._wire_tasks()
        for node in self.nodes:
            node.meter.reset()
        t0 = self.engine.clock.now

        try:
            self.engine.run(
                until=lambda: job.finished,
                max_ticks=self.engine.clock.ticks_for(timeout),
            )
        finally:
            self._flush_traces()
        if not job.finished:
            raise SimulationError(
                f"job {job.name!r} did not finish within {timeout}s of "
                "simulated time"
            )
        execution_time = self.engine.clock.now - t0
        if tail > 0:
            try:
                self.engine.run(duration=tail)
            finally:
                self._flush_traces()

        if self.telemetry.enabled:
            self.telemetry.gauge("sim.execution_seconds", job=job.name).set(
                execution_time
            )
            self.telemetry.gauge("sim.final_time_seconds").set(
                self.engine.clock.now
            )

        return RunResult(
            execution_time=execution_time,
            traces=self.traces,
            events=self.events,
            average_power=[n.meter.average_power for n in self.nodes],
            energy_joules=[n.meter.energy_joules for n in self.nodes],
            job_name=job.name,
            node_shutdown=[n.is_shutdown for n in self.nodes],
            retired_cycles=[float(n.core.retired_cycles) for n in self.nodes],
            telemetry=(
                self.telemetry.snapshot() if self.telemetry.enabled else None
            ),
        )

    def run_for(self, duration: float) -> None:
        """Advance the cluster with whatever is bound for ``duration`` s."""
        self._wire_tasks()
        try:
            self.engine.run(duration=duration)
        finally:
            self._flush_traces()
