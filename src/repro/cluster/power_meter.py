"""Wall-power metering (Watts up? Pro ES emulation).

The paper measures system power with an inline Watts up? Pro meter.
:class:`PowerMeter` integrates instantaneous wall power into energy and
keeps a running average — the quantity in Table 1's "Ave Power" column
— plus windowed queries for phase-level analysis.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..units import require_non_negative, require_positive

__all__ = ["PowerMeter"]


class PowerMeter:
    """Integrating wall-power meter.

    Energy is accumulated exactly (power × dt each tick); the average
    is energy / elapsed, so it is insensitive to tick rate.
    """

    def __init__(self, name: str = "meter") -> None:
        self.name = name
        self._energy = 0.0
        self._elapsed = 0.0
        self._last_power = 0.0
        self._peak = 0.0

    def record(self, power_watts: float, dt: float) -> None:
        """Accumulate ``power_watts`` held for ``dt`` seconds."""
        require_non_negative(power_watts, "power")
        require_positive(dt, "dt")
        self._energy += power_watts * dt
        self._elapsed += dt
        self._last_power = power_watts
        self._peak = max(self._peak, power_watts)

    @property
    def last_power(self) -> float:
        """Most recent instantaneous wall power, W."""
        return self._last_power

    @property
    def peak_power(self) -> float:
        """Highest instantaneous power observed, W."""
        return self._peak

    @property
    def energy_joules(self) -> float:
        """Total energy since construction (or reset), J."""
        return self._energy

    @property
    def elapsed(self) -> float:
        """Total metered time, seconds."""
        return self._elapsed

    @property
    def average_power(self) -> float:
        """Mean wall power over the metered interval, W.

        Raises
        ------
        SimulationError
            If nothing has been recorded yet.
        """
        if self._elapsed <= 0.0:
            raise SimulationError(f"meter {self.name!r}: no samples recorded")
        return self._energy / self._elapsed

    def reset(self) -> None:
        """Zero the accumulators (start of a measured run)."""
        self._energy = 0.0
        self._elapsed = 0.0
        self._peak = 0.0
