"""One cluster node: the full hardware wiring.

Per simulation tick a :class:`Node` advances its parts in physical
dependency order:

1. **CPU core** — runs the bound workload rank at the current DVFS
   frequency; yields utilization.
2. **CPU power** — from P-state, utilization and die temperature.
3. **Fan chip** — the ADT7467 ingests the thermal-diode temperature and
   tach; in auto mode it recomputes its PWM output (hardware static
   control).
4. **Fan motor** — rotor tracks the chip's PWM with inertia; aero maps
   RPM to airflow and fan power.
5. **Thermal package** — die/heatsink RC network integrates under the
   CPU power and airflow.
6. **Power meter** — wall power = baseboard + CPU + fan.

Governors never touch these parts directly: the in-band path goes
through :class:`~repro.cpu.dvfs.Dvfs`, the out-of-band path through
:class:`~repro.fan.driver.FanDriver` over the node's i2c bus — the same
interfaces the paper's daemons used.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import NodeConfig
from ..cpu.core import CpuCore, RankInterface
from ..cpu.dvfs import Dvfs
from ..cpu.power import CpuPowerModel
from ..fan.adt7467 import ADT7467
from ..fan.aero import FanAero
from ..fan.driver import FanDriver
from ..fan.motor import FanMotor
from ..i2c.bus import I2cBus
from ..sim.engine import Component
from ..sim.events import EventLog
from ..thermal.ambient import AmbientModel, ConstantAmbient
from ..thermal.package import CpuPackage
from ..thermal.sensor import ThermalSensor

__all__ = ["Node"]


class Node(Component):
    """A simulated cluster node.

    Parameters
    ----------
    name:
        Node identifier (``"node0"``, ...).
    config:
        Physical description; defaults to the paper's testbed node.
    events:
        Shared event log (DVFS changes etc. are emitted here).
    rng:
        Noise generator for the thermal sensor; ``None`` = noiseless.
    ambient:
        Inlet air model; defaults to a constant at
        ``config.ambient_celsius``.
    """

    def __init__(
        self,
        name: str,
        config: Optional[NodeConfig] = None,
        events: Optional[EventLog] = None,
        rng: Optional[np.random.Generator] = None,
        ambient: Optional[AmbientModel] = None,
    ) -> None:
        super().__init__(name)
        self.config = config if config is not None else NodeConfig()
        cfg = self.config

        self.ambient = (
            ambient if ambient is not None else ConstantAmbient(cfg.ambient_celsius)
        )
        self._build_compute(cfg, name, events)
        self.sensor = ThermalSensor(self.package, params=cfg.sensor, rng=rng)

        # Out-of-band path: i2c bus -> ADT7467 -> motor -> aero.
        self.bus = I2cBus(name=f"{name}.i2c")
        self.fan_chip = ADT7467(cfg.fan_chip)
        self.bus.attach(self.fan_chip)
        self.fan_motor = FanMotor(
            cfg.motor, initial_duty=self.fan_chip.commanded_duty
        )
        self.fan_aero = cfg.aero

        from ..cluster.power_meter import PowerMeter

        self.meter = PowerMeter(name=f"{name}.meter")
        self._cpu_power = 0.0
        self._wall_power = 0.0
        self._events = events
        self._prochot = False
        self._shutdown = False

    # -- wiring -----------------------------------------------------------

    def _build_compute(self, cfg: NodeConfig, name: str, events) -> None:
        """Construct the package/DVFS/core/power-model quartet.

        The single-core reference wiring; subclasses (the multicore
        node) override this to build their own compute complex while
        inheriting the fan, sensor and protection wiring unchanged.
        """
        self.package = CpuPackage(
            params=cfg.package,
            convection=cfg.convection,
            ambient=self.ambient,
            name=f"{name}.pkg",
        )
        self.dvfs = Dvfs(
            table=cfg.pstates,
            transition_latency=cfg.dvfs_latency,
            events=events,
            name=f"{name}.dvfs",
        )
        self.core = CpuCore(self.dvfs, name=f"{name}.core")
        self.power_model = CpuPowerModel(cfg.power)

    def bind_rank(self, rank: RankInterface) -> None:
        """Attach this node's share of a parallel job."""
        self.core.bind_rank(rank)

    def make_fan_driver(self, max_duty: float = 1.0, **kwargs) -> FanDriver:
        """Construct the host-side fan driver governors use."""
        return FanDriver(
            self.bus, self.fan_chip.address, max_duty=max_duty, **kwargs
        )

    # -- observables -----------------------------------------------------

    @property
    def die_temperature(self) -> float:
        """True die temperature, °C (controllers should use the sensor)."""
        return self.package.die_temperature

    @property
    def cpu_power(self) -> float:
        """CPU power over the last tick, W."""
        return self._cpu_power

    @property
    def wall_power(self) -> float:
        """Wall power over the last tick, W."""
        return self._wall_power

    @property
    def fan_duty(self) -> float:
        """PWM duty currently commanded to the fan motor."""
        return self.fan_motor.duty

    @property
    def fan_rpm(self) -> float:
        """Current fan speed, RPM."""
        return self.fan_motor.rpm

    @property
    def prochot_active(self) -> bool:
        """True while the hardware thermal throttle is asserted."""
        return self._prochot

    @property
    def is_shutdown(self) -> bool:
        """True once THERMTRIP has powered the node off."""
        return self._shutdown

    def fail_fan(self, t: float = 0.0) -> None:
        """Inject a fan failure (rotor seizes, coasts to a stop)."""
        self.fan_motor.fail()
        if self._events is not None:
            self._events.emit(t, "hw.fan_failure", self.name)

    def repair_fan(self, t: float = 0.0) -> None:
        """Hot-swap the failed fan."""
        self.fan_motor.repair()
        if self._events is not None:
            self._events.emit(t, "hw.fan_repair", self.name)

    # -- hardware thermal protection ----------------------------------------

    def _protection(self, t: float) -> None:
        """PROCHOT / THERMTRIP state machine (runs before execution)."""
        cfg = self.config
        if not cfg.hw_protection or self._shutdown:
            return
        die = self.package.die_temperature
        if die >= cfg.shutdown_temp:
            self._shutdown = True
            if self._events is not None:
                self._events.emit(
                    t, "hw.thermtrip", self.name, temperature=round(die, 2)
                )
            return
        if not self._prochot and die >= cfg.prochot_temp:
            self._prochot = True
            self.dvfs.set_index(len(self.dvfs.table) - 1, t)
            if self._events is not None:
                self._events.emit(
                    t, "hw.prochot.assert", self.name, temperature=round(die, 2)
                )
        elif self._prochot and die <= cfg.prochot_temp - cfg.prochot_hysteresis:
            # De-assert: the hardware releases its clamp; whatever
            # governor is running decides the frequency from here.
            self._prochot = False
            if self._events is not None:
                self._events.emit(
                    t, "hw.prochot.deassert", self.name, temperature=round(die, 2)
                )

    # -- dynamics ----------------------------------------------------------

    def step(self, t: float, dt: float) -> None:
        cfg = self.config
        self._protection(t)
        # 1. workload execution at the current frequency
        if self._shutdown:
            # powered off: no execution, no CPU heat; the (possibly
            # failed) fan and the package keep evolving passively.
            self._cpu_power = 0.0
        elif self._prochot:
            # PROCHOT re-clamps every tick (governors cannot out-vote
            # the hardware while it is asserted).
            self.dvfs.set_index(len(self.dvfs.table) - 1, t)
            self.core.step(t, dt)
            self._cpu_power = self.power_model.power(
                self.dvfs.pstate,
                self.core.utilization,
                self.package.die_temperature,
            )
        else:
            self.core.step(t, dt)
            self._cpu_power = self.power_model.power(
                self.dvfs.pstate,
                self.core.utilization,
                self.package.die_temperature,
            )
        # 3. fan chip ingests measurements; auto mode updates its PWM
        self.fan_chip.update(
            remote_temp=self.package.die_temperature,
            local_temp=self.package.ambient_temperature,
            rpm=self.fan_motor.rpm,
        )
        # 4. rotor tracks the chip's PWM output
        self.fan_motor.set_duty(self.fan_chip.commanded_duty)
        self.fan_motor.step(t, dt)
        airflow = self.fan_aero.airflow(self.fan_motor.rpm)
        fan_power = self.fan_aero.power(self.fan_motor.rpm)
        # 5. thermal integration
        self.package.set_power(self._cpu_power)
        self.package.set_airflow(airflow)
        self.package.step(t, dt)
        # 6. wall power (a shut-down node still draws standby power)
        if self._shutdown:
            self._wall_power = 5.0 + fan_power
        else:
            self._wall_power = cfg.baseboard_power + self._cpu_power + fan_power
        self.meter.record(self._wall_power, dt)
