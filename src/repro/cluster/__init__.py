"""Cluster substrate: nodes, the cluster assembly, and power metering.

* :mod:`repro.cluster.power_meter` — the Watts up? Pro emulation: wall
  power integration per node and cluster-wide.
* :mod:`repro.cluster.node` — one node's full wiring: core → power →
  fan chip → motor → package → meter.
* :mod:`repro.cluster.cluster` — N nodes + a parallel job + governors
  under one simulation engine, with the run/trace/report plumbing every
  experiment uses.
"""

from .cluster import Cluster, RunResult
from .node import Node
from .power_meter import PowerMeter

__all__ = ["PowerMeter", "Node", "Cluster", "RunResult"]
