"""The canonical simulated testbed and governor rigging helpers.

All experiment modules build their clusters through these functions so
that the platform (§4.1 of the paper: 4 nodes, Athlon64 4000+, 4300 RPM
fans behind ADT7467s, 4 Hz lm-sensors) is defined in exactly one place.
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster.cluster import Cluster
from ..config import ClusterConfig
from ..core.policy import Policy
from ..governors.base import Governor
from ..governors.cpuspeed import CpuSpeed, CpuSpeedParams
from ..governors.fan_constant import ConstantFanControl
from ..governors.fan_dynamic import DynamicFanControl
from ..governors.fan_traditional import TraditionalFanControl
from ..governors.hybrid import HybridControl, hybrid_governors
from ..governors.tdvfs import TDvfs, TDvfsParams

__all__ = [
    "DEFAULT_SEED",
    "standard_cluster",
    "attach_dynamic_fan",
    "attach_traditional_fan",
    "attach_constant_fan",
    "attach_tdvfs",
    "attach_cpuspeed",
    "attach_hybrid",
]

#: Seed all paper-reproduction runs use unless overridden.
DEFAULT_SEED = 20100913


def standard_cluster(n_nodes: int = 4, seed: int = DEFAULT_SEED) -> Cluster:
    """The paper's testbed: ``n_nodes`` §4.1 nodes under one engine."""
    return Cluster(ClusterConfig(n_nodes=n_nodes, seed=seed))


def attach_dynamic_fan(
    cluster: Cluster,
    pp: int = 50,
    max_duty: float = 1.0,
    l1_size: int = 4,
    l2_size: int = 5,
    l2_when_l1_silent: bool = True,
) -> List[DynamicFanControl]:
    """Rig every node with the paper's dynamic fan control."""
    policy = Policy(pp=pp)
    governors = []
    for node in cluster.nodes:
        gov = DynamicFanControl(
            driver=node.make_fan_driver(max_duty=max_duty),
            policy=policy,
            l1_size=l1_size,
            l2_size=l2_size,
            l2_when_l1_silent=l2_when_l1_silent,
            events=cluster.events,
            name=f"{node.name}.fan-dynamic",
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_traditional_fan(
    cluster: Cluster, max_duty: float = 1.0
) -> List[TraditionalFanControl]:
    """Rig every node with the Figure-1 static hardware curve."""
    governors = []
    for node in cluster.nodes:
        gov = TraditionalFanControl(
            driver=node.make_fan_driver(max_duty=max_duty),
            duty_max=max_duty,
            name=f"{node.name}.fan-traditional",
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_constant_fan(
    cluster: Cluster, duty: float = 0.75
) -> List[ConstantFanControl]:
    """Rig every node with a pinned fan duty."""
    governors = []
    for node in cluster.nodes:
        gov = ConstantFanControl(
            driver=node.make_fan_driver(),
            duty=duty,
            name=f"{node.name}.fan-constant",
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_tdvfs(
    cluster: Cluster,
    pp: int = 50,
    params: Optional[TDvfsParams] = None,
) -> List[TDvfs]:
    """Rig every node with the tDVFS daemon."""
    policy = Policy(pp=pp)
    governors = []
    for node in cluster.nodes:
        gov = TDvfs(
            dvfs=node.dvfs,
            policy=policy,
            params=params,
            events=cluster.events,
            name=f"{node.name}.tdvfs",
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_cpuspeed(
    cluster: Cluster, params: Optional[CpuSpeedParams] = None
) -> List[CpuSpeed]:
    """Rig every node with the CPUSPEED baseline daemon."""
    governors = []
    for node in cluster.nodes:
        gov = CpuSpeed(
            core=node.core,
            params=params,
            events=cluster.events,
            name=f"{node.name}.cpuspeed",
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_hybrid(
    cluster: Cluster,
    pp: int = 50,
    max_duty: float = 0.50,
    tdvfs_params: Optional[TDvfsParams] = None,
) -> List[HybridControl]:
    """Rig every node with the §4.4 hybrid fan + tDVFS configuration."""
    policy = Policy(pp=pp)
    governors = []
    for node in cluster.nodes:
        gov = hybrid_governors(
            node,
            policy,
            max_duty=max_duty,
            tdvfs_params=tdvfs_params,
            events=cluster.events,
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors
