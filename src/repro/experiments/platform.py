"""The canonical simulated testbed, rigging helpers, and registries.

All experiment modules build their clusters through these functions so
that the platform (§4.1 of the paper: 4 nodes, Athlon64 4000+, 4300 RPM
fans behind ADT7467s, 4 Hz lm-sensors) is defined in exactly one place.

This module is also the **name registry** of the runtime layer: the
``RIG_REGISTRY`` / ``WORKLOAD_REGISTRY`` / ``AMBIENT_REGISTRY`` tables
map the string names a :class:`~repro.runtime.spec.RunSpec` carries to
the factories below, so specs stay picklable across process boundaries
(a spec ships *names*; every worker process resolves them here against
its own fresh interpreter).  Workload factories take the cluster so
they can draw their historical named RNG streams (``"wl"``,
``"cpu-burn"``, ``"jitter"``) — stream identity is part of the
determinism contract.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Callable, List, Mapping, Optional

from ..cluster.cluster import Cluster
from ..config import ClusterConfig
from ..core.policy import Policy
from ..governors.base import Governor
from ..governors.cpuspeed import CpuSpeed, CpuSpeedParams
from ..governors.fan_constant import ConstantFanControl
from ..governors.fan_dynamic import DynamicFanControl
from ..governors.fan_traditional import TraditionalFanControl
from ..governors.hybrid import HybridControl, hybrid_governors
from ..governors.ondemand import Ondemand
from ..governors.tdvfs import TDvfs, TDvfsParams
from ..runtime.spec import DEFAULT_SEED
from ..thermal.ambient import ConstantAmbient
from ..workloads.cpuburn import cpu_burn_session
from ..workloads.npb import (
    NpbJob,
    NpbParams,
    bt_b_4,
    cg_b_4,
    ep_b_4,
    lu_a_4,
    mg_b_4,
)
from ..workloads.synthetic import (
    gradual_profile,
    jitter_profile,
    mixed_thermal_profile,
    sudden_profile,
)

__all__ = [
    "DEFAULT_SEED",
    "standard_cluster",
    "platform_policy",
    "attach_dynamic_fan",
    "attach_traditional_fan",
    "attach_constant_fan",
    "attach_tdvfs",
    "attach_cpuspeed",
    "attach_ondemand",
    "attach_hybrid",
    "RIG_REGISTRY",
    "WORKLOAD_REGISTRY",
    "AMBIENT_REGISTRY",
]


def standard_cluster(
    n_nodes: int = 4,
    seed: int = DEFAULT_SEED,
    platform: Optional[str] = None,
) -> Cluster:
    """The paper's testbed: ``n_nodes`` §4.1 nodes under one engine.

    With ``platform`` set to a :data:`repro.platform.PLATFORM_REGISTRY`
    key, the same chassis carries that silicon instead of the default
    Athlon64 — the rigging helpers below then scale their policies to
    the platform's safe band.
    """
    if platform is None:
        return Cluster(ClusterConfig(n_nodes=n_nodes, seed=seed))
    from ..platform import resolve_platform

    spec = resolve_platform(platform)
    return Cluster(
        ClusterConfig(n_nodes=n_nodes, seed=seed, node=spec.node_config()),
        platform=spec,
    )


def platform_policy(cluster: Cluster, pp: int = 50) -> Policy:
    """The control policy for ``cluster``'s silicon.

    A platform-less cluster (every pre-platform construction) gets
    exactly the historical ``Policy(pp=pp)`` with the paper's 38–82 °C
    band; a platform-bearing one gets the same ``P_p`` over that
    platform's own safe band.
    """
    if cluster.platform is None:
        return Policy(pp=pp)
    return cluster.platform.policy(pp)


def attach_dynamic_fan(
    cluster: Cluster,
    pp: int = 50,
    max_duty: float = 1.0,
    l1_size: int = 4,
    l2_size: int = 5,
    l2_when_l1_silent: bool = True,
) -> List[DynamicFanControl]:
    """Rig every node with the paper's dynamic fan control."""
    policy = platform_policy(cluster, pp)
    governors = []
    for node in cluster.nodes:
        gov = DynamicFanControl(
            driver=node.make_fan_driver(max_duty=max_duty),
            policy=policy,
            l1_size=l1_size,
            l2_size=l2_size,
            l2_when_l1_silent=l2_when_l1_silent,
            events=cluster.events,
            name=f"{node.name}.fan-dynamic",
            telemetry=cluster.telemetry,
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_traditional_fan(
    cluster: Cluster, max_duty: float = 1.0
) -> List[TraditionalFanControl]:
    """Rig every node with the Figure-1 static hardware curve."""
    governors = []
    for node in cluster.nodes:
        gov = TraditionalFanControl(
            driver=node.make_fan_driver(max_duty=max_duty),
            duty_max=max_duty,
            name=f"{node.name}.fan-traditional",
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_constant_fan(
    cluster: Cluster, duty: float = 0.75
) -> List[ConstantFanControl]:
    """Rig every node with a pinned fan duty."""
    governors = []
    for node in cluster.nodes:
        gov = ConstantFanControl(
            driver=node.make_fan_driver(),
            duty=duty,
            name=f"{node.name}.fan-constant",
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_tdvfs(
    cluster: Cluster,
    pp: int = 50,
    params: Optional[TDvfsParams] = None,
) -> List[TDvfs]:
    """Rig every node with the tDVFS daemon."""
    policy = platform_policy(cluster, pp)
    governors = []
    for node in cluster.nodes:
        gov = TDvfs(
            dvfs=node.dvfs,
            policy=policy,
            params=params,
            events=cluster.events,
            name=f"{node.name}.tdvfs",
            telemetry=cluster.telemetry,
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_cpuspeed(
    cluster: Cluster, params: Optional[CpuSpeedParams] = None
) -> List[CpuSpeed]:
    """Rig every node with the CPUSPEED baseline daemon."""
    governors = []
    for node in cluster.nodes:
        gov = CpuSpeed(
            core=node.core,
            params=params,
            events=cluster.events,
            name=f"{node.name}.cpuspeed",
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_ondemand(cluster: Cluster) -> List[Ondemand]:
    """Rig every node with the kernel-style ondemand governor."""
    governors = []
    for node in cluster.nodes:
        gov = Ondemand(node.core, events=cluster.events)
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


def attach_hybrid(
    cluster: Cluster,
    pp: int = 50,
    max_duty: float = 0.50,
    tdvfs_params: Optional[TDvfsParams] = None,
) -> List[HybridControl]:
    """Rig every node with the §4.4 hybrid fan + tDVFS configuration."""
    policy = platform_policy(cluster, pp)
    governors = []
    for node in cluster.nodes:
        gov = hybrid_governors(
            node,
            policy,
            max_duty=max_duty,
            tdvfs_params=tdvfs_params,
            events=cluster.events,
            telemetry=cluster.telemetry,
        )
        cluster.add_governor(node, gov)
        governors.append(gov)
    return governors


# -- runtime registries ------------------------------------------------------
#
# Thin adapters where a spec's primitive parameters need shaping into the
# dataclasses the attach helpers take (TDvfsParams etc.).  Everything a
# RunSpec can name is resolved through the three tables at the bottom.


def _rig_tdvfs(cluster: Cluster, pp: int = 50, **params: object) -> List[TDvfs]:
    return attach_tdvfs(
        cluster, pp=pp, params=TDvfsParams(**params) if params else None
    )


def _rig_cpuspeed(cluster: Cluster, **params: object) -> List[CpuSpeed]:
    return attach_cpuspeed(
        cluster, params=CpuSpeedParams(**params) if params else None
    )


def _rig_hybrid(
    cluster: Cluster,
    pp: int = 50,
    max_duty: float = 0.50,
    **params: object,
) -> List[HybridControl]:
    return attach_hybrid(
        cluster,
        pp=pp,
        max_duty=max_duty,
        tdvfs_params=TDvfsParams(**params) if params else None,
    )


#: Rig name → ``f(cluster, **params)`` governor rigging.
RIG_REGISTRY: Mapping[str, Callable[..., object]] = MappingProxyType({
    "dynamic_fan": attach_dynamic_fan,
    "traditional_fan": attach_traditional_fan,
    "constant_fan": attach_constant_fan,
    "tdvfs": _rig_tdvfs,
    "cpuspeed": _rig_cpuspeed,
    "ondemand": attach_ondemand,
    "hybrid": _rig_hybrid,
})


def _wl_npb(builder: Callable[..., object]) -> Callable[..., object]:
    """NPB factory adapter: draws the historical ``"wl"`` stream."""

    def make(cluster: Cluster, iterations: Optional[int] = None) -> object:
        return builder(rng=cluster.rngs.stream("wl"), iterations=iterations)

    return make


def _wl_cpu_burn_session(
    cluster: Cluster,
    instances: int = 3,
    burn_duration: float = 300.0,
    gap_duration: float = 40.0,
) -> object:
    return cpu_burn_session(
        instances=instances,
        burn_duration=burn_duration,
        gap_duration=gap_duration,
        rng=cluster.rngs.stream("cpu-burn"),
    )


def _wl_mixed_thermal_profile(cluster: Cluster, duration: float) -> object:
    return mixed_thermal_profile(duration=duration).build()


def _wl_sudden_profile(
    cluster: Cluster, step_time: float, duration: float
) -> object:
    return sudden_profile(step_time=step_time, duration=duration).build()


def _wl_gradual_profile(cluster: Cluster, duration: float) -> object:
    return gradual_profile(duration=duration).build()


def _wl_jitter_profile(cluster: Cluster, duration: float) -> object:
    return jitter_profile(
        duration=duration, rng=cluster.rngs.stream("jitter")
    ).build()


def _wl_bt_weak(cluster: Cluster, n_ranks: int, iterations: int) -> object:
    """A BT-like job weak-scaled to ``n_ranks`` (same per-node work)."""
    params = NpbParams(
        name=f"BT-weak.{n_ranks}",
        n_ranks=n_ranks,
        iterations=iterations,
        compute_seconds=0.83,
        comm_seconds=0.22,
        comm_utilization=0.15,
    )
    return NpbJob(params, rng=cluster.rngs.stream("wl")).build()


def _wl_bt_long(cluster: Cluster, horizon: float) -> object:
    """A BT-class job guaranteed to outlast a fault horizon."""
    iterations = int(horizon / 1.0) + 100
    params = NpbParams(
        name="BT-long",
        n_ranks=4,
        iterations=iterations,
        compute_seconds=0.83,
        comm_seconds=0.22,
    )
    return NpbJob(params, rng=cluster.rngs.stream("wl")).build()


#: Workload name → ``f(cluster, **params) -> Job``.
WORKLOAD_REGISTRY: Mapping[str, Callable[..., object]] = MappingProxyType({
    "bt_b_4": _wl_npb(bt_b_4),
    "lu_a_4": _wl_npb(lu_a_4),
    "cg_b_4": _wl_npb(cg_b_4),
    "ep_b_4": _wl_npb(ep_b_4),
    "mg_b_4": _wl_npb(mg_b_4),
    "cpu_burn_session": _wl_cpu_burn_session,
    "mixed_thermal_profile": _wl_mixed_thermal_profile,
    "sudden_profile": _wl_sudden_profile,
    "gradual_profile": _wl_gradual_profile,
    "jitter_profile": _wl_jitter_profile,
    "bt_weak": _wl_bt_weak,
    "bt_long": _wl_bt_long,
})


def _ambient_rack_gradient(
    n_nodes: int, base: float = 28.0, gradient: float = 5.0
) -> Callable[[int], ConstantAmbient]:
    """Linear cold-aisle → top-of-rack inlet gradient over ``n_nodes``."""

    def factory(i: int) -> ConstantAmbient:
        frac = i / max(1, n_nodes - 1)
        return ConstantAmbient(base + gradient * frac)

    return factory


#: Ambient name → ``f(n_nodes, **params) -> (node_index -> AmbientModel)``.
AMBIENT_REGISTRY: Mapping[str, Callable[..., Callable[[int], object]]] = MappingProxyType({
    "rack_gradient": _ambient_rack_gradient,
})
