"""Figure 7 — emulating weaker fans by capping the maximum PWM duty.

Protocol (paper §4.2): NPB BT.B.4, dynamic fan control, P_p = 50,
maximum PWM duty ∈ {25, 50, 75, 100} %.

Findings reproduced:

1. A more powerful fan (higher cap) yields lower temperature; the
   paper measures ≈8 °C between the 25 % and 100 % caps.
2. Diminishing returns: beyond a middling cap, raising the ceiling
   barely changes temperature (the paper calls 50 vs 75 % "not
   significant"), because the proactive controller settles below the
   ceiling anyway — i.e. a cheaper fan run well matches a stronger fan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.tables import Table
from ..workloads.npb import bt_b_4
from .platform import DEFAULT_SEED, attach_dynamic_fan, standard_cluster

__all__ = [
    "Fig7Row",
    "Fig7Result",
    "run",
    "render",
    "CAPS",
]

CAPS = (0.25, 0.50, 0.75, 1.00)


@dataclass
class Fig7Row:
    """Outcome at one maximum-PWM cap.

    Attributes
    ----------
    max_duty:
        The cap (fraction).
    final_temp:
        Mean of the last 30 s, °C.
    mean_temp / max_temp:
        Over the whole run, °C.
    late_duty:
        Settled duty (second-half mean fraction).
    cap_bound:
        True when the settled duty sits at/near the cap (within 2 %),
        i.e. the fan ran out of headroom.
    """

    max_duty: float
    final_temp: float
    mean_temp: float
    max_temp: float
    late_duty: float
    cap_bound: bool


@dataclass
class Fig7Result:
    """All four caps, ascending."""

    rows: List[Fig7Row]

    def row(self, max_duty: float) -> Fig7Row:
        """The row for a given cap."""
        for r in self.rows:
            if abs(r.max_duty - max_duty) < 1e-9:
                return r
        raise KeyError(f"no row for cap {max_duty}")

    @property
    def spread(self) -> float:
        """Final-temperature gap between the 25 % and 100 % caps, K."""
        return self.row(0.25).final_temp - self.row(1.00).final_temp


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> Fig7Result:
    """Run the Figure-7 sweep."""
    iterations = 60 if quick else 200
    rows: List[Fig7Row] = []
    for cap in CAPS:
        cluster = standard_cluster(n_nodes=4, seed=seed)
        attach_dynamic_fan(cluster, pp=50, max_duty=cap)
        job = bt_b_4(rng=cluster.rngs.stream("wl"), iterations=iterations)
        result = cluster.run_job(job, timeout=3600)
        temp = result.traces["node0.temp"]
        duty = result.traces["node0.duty"]
        t_end = result.execution_time
        late_duty = duty.window(t_end / 2, t_end).mean()
        rows.append(
            Fig7Row(
                max_duty=cap,
                final_temp=temp.window(t_end - 30.0, t_end).mean(),
                mean_temp=temp.mean(),
                max_temp=temp.max(),
                late_duty=late_duty,
                cap_bound=late_duty >= cap - 0.02,
            )
        )
    return Fig7Result(rows=rows)


def render(result: Fig7Result) -> str:
    """Paper-style text output for Figure 7."""
    table = Table(
        headers=[
            "max PWM duty (%)",
            "final T (degC)",
            "mean T (degC)",
            "max T (degC)",
            "settled duty (%)",
            "at cap?",
        ],
        formats=[".0f", ".1f", ".1f", ".1f", ".1f", None],
        title=(
            "Figure 7 reproduction: dynamic fan under maximum-PWM caps "
            f"(25% vs 100% spread: {result.spread:.1f} K)"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.max_duty * 100,
            row.final_temp,
            row.mean_temp,
            row.max_temp,
            row.late_duty * 100,
            "yes" if row.cap_bound else "no",
        )
    return table.render()
