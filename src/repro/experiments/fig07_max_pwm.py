"""Figure 7 — emulating weaker fans by capping the maximum PWM duty.

Protocol (paper §4.2): NPB BT.B.4, dynamic fan control, P_p = 50,
maximum PWM duty ∈ {25, 50, 75, 100} %.

Findings reproduced:

1. A more powerful fan (higher cap) yields lower temperature; the
   paper measures ≈8 °C between the 25 % and 100 % caps.
2. Diminishing returns: beyond a middling cap, raising the ceiling
   barely changes temperature (the paper calls 50 vs 75 % "not
   significant"), because the proactive controller settles below the
   ceiling anyway — i.e. a cheaper fan run well matches a stronger fan.

The four specs differ only in rig parameters (the PWM cap), so the
sweep is a batchable group: ``RunExecutor(batch=True)`` (or ``repro run
fig7 --batch``) advances all four runs in lockstep through
:mod:`repro.fastpath.batch` with byte-identical results — this sweep is
the exemplar ``benchmarks/bench_batch.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.rows import lookup_row
from ..analysis.tables import Table
from ..runtime import DEFAULT_SEED, Measure, RunExecutor, RunSpec

__all__ = [
    "Fig7Row",
    "Fig7Result",
    "specs",
    "run",
    "render",
    "CAPS",
]

CAPS = (0.25, 0.50, 0.75, 1.00)


@dataclass
class Fig7Row:
    """Outcome at one maximum-PWM cap.

    Attributes
    ----------
    max_duty:
        The cap (fraction).
    final_temp:
        Mean of the last 30 s, °C.
    mean_temp / max_temp:
        Over the whole run, °C.
    late_duty:
        Settled duty (second-half mean fraction).
    cap_bound:
        True when the settled duty sits at/near the cap (within 2 %),
        i.e. the fan ran out of headroom.
    """

    max_duty: float
    final_temp: float
    mean_temp: float
    max_temp: float
    late_duty: float
    cap_bound: bool


@dataclass
class Fig7Result:
    """All four caps, ascending."""

    rows: List[Fig7Row]

    def row(self, max_duty: float) -> Fig7Row:
        """The row for a given cap."""
        return lookup_row(self.rows, max_duty=max_duty)

    @property
    def spread(self) -> float:
        """Final-temperature gap between the 25 % and 100 % caps, K."""
        return self.row(0.25).final_temp - self.row(1.00).final_temp


def specs(seed: int = DEFAULT_SEED, quick: bool = False) -> List[RunSpec]:
    """One BT.B.4 spec per maximum-PWM cap."""
    iterations = 60 if quick else 200
    return [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[("dynamic_fan", {"pp": 50, "max_duty": cap})],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for cap in CAPS
    ]


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Fig7Result:
    """Run the Figure-7 sweep."""
    executor = executor if executor is not None else RunExecutor()
    results = executor.map(specs(seed=seed, quick=quick))
    rows: List[Fig7Row] = []
    for cap, result in zip(CAPS, results):
        m = Measure(result)
        late_duty = m.late_mean("duty")
        rows.append(
            Fig7Row(
                max_duty=cap,
                final_temp=m.final_mean("temp"),
                mean_temp=m.mean("temp"),
                max_temp=m.peak("temp"),
                late_duty=late_duty,
                cap_bound=late_duty >= cap - 0.02,
            )
        )
    return Fig7Result(rows=rows)


def render(result: Fig7Result) -> str:
    """Paper-style text output for Figure 7."""
    table = Table(
        headers=[
            "max PWM duty (%)",
            "final T (degC)",
            "mean T (degC)",
            "max T (degC)",
            "settled duty (%)",
            "at cap?",
        ],
        formats=[".0f", ".1f", ".1f", ".1f", ".1f", None],
        title=(
            "Figure 7 reproduction: dynamic fan under maximum-PWM caps "
            f"(25% vs 100% spread: {result.spread:.1f} K)"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.max_duty * 100,
            row.final_temp,
            row.mean_temp,
            row.max_temp,
            row.late_duty * 100,
            "yes" if row.cap_bound else "no",
        )
    return table.render()
