"""Plot-ready data series for the paper's figures.

The tabular experiments summarize; this module regenerates the actual
*curves* each figure plots — temperature and PWM traces against the
paper's "sample points" x-axis — so a user can recreate the figures
with any plotting tool:

.. code-block:: python

    from repro.experiments import series
    curves = series.fig09_series()          # {label: (times, values)}

or from the command line::

    python -m repro series fig9 --export out/
    # writes out/fig9.<label>.csv, one two-column CSV per curve

Each ``figNN_series`` function reruns the corresponding §4
configuration through the runtime layer and returns ``{label:
(times_array, values_array)}`` resampled to the paper's 4 Hz
sample-point cadence.  All functions accept an ``executor`` so the CLI
can share one parallel/cached :class:`~repro.runtime.RunExecutor`
across figures.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..runtime import DEFAULT_SEED, RunExecutor, RunSpec

__all__ = [
    "fig02_series",
    "fig05_series",
    "fig06_series",
    "fig08_series",
    "fig09_series",
    "fig10_series",
    "SERIES_REGISTRY",
    "Curve",
]

#: A curve: (sample times in seconds, values).
Curve = Tuple[np.ndarray, np.ndarray]


def _curve(trace) -> Curve:
    return np.asarray(trace.times), np.asarray(trace.values)


def _executor(executor: Optional[RunExecutor]) -> RunExecutor:
    return executor if executor is not None else RunExecutor()


def fig02_series(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Dict[str, Curve]:
    """Figure 2: the mixed sudden/gradual/jitter thermal profile."""
    duration = 120.0 if quick else 300.0
    spec = RunSpec.of(
        "mixed_thermal_profile",
        {"duration": duration},
        rigs=[("constant_fan", {"duty": 0.45})],
        n_nodes=1,
        seed=seed,
        timeout=duration * 4,
        quick=quick,
    )
    result = _executor(executor).run(spec)
    return {"temperature": _curve(result.traces["node0.temp"])}


def fig05_series(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Dict[str, Curve]:
    """Figure 5: temperature (top) and PWM duty (bottom) per P_p."""
    burn = 60.0 if quick else 300.0
    pps = (75, 50, 25)
    specs = [
        RunSpec.of(
            "cpu_burn_session",
            {"instances": 3, "burn_duration": burn, "gap_duration": 40.0},
            rigs=[("dynamic_fan", {"pp": pp, "max_duty": 1.0})],
            n_nodes=1,
            seed=seed,
            timeout=20 * burn + 600,
            quick=quick,
        )
        for pp in pps
    ]
    curves: Dict[str, Curve] = {}
    for pp, result in zip(pps, _executor(executor).map(specs)):
        curves[f"temperature.pp{pp}"] = _curve(result.traces["node0.temp"])
        curves[f"pwm_duty.pp{pp}"] = _curve(result.traces["node0.duty"])
    return curves


def fig06_series(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Dict[str, Curve]:
    """Figure 6: temperature (a) and fan speed (b) per fan policy."""
    iterations = 60 if quick else 200
    policies = ("traditional", "dynamic", "constant")
    rig_for = {
        "traditional": ("traditional_fan", {"max_duty": 0.75}),
        "dynamic": ("dynamic_fan", {"pp": 50, "max_duty": 0.75}),
        "constant": ("constant_fan", {"duty": 0.75}),
    }
    specs = [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[rig_for[policy]],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for policy in policies
    ]
    curves: Dict[str, Curve] = {}
    for policy, result in zip(policies, _executor(executor).map(specs)):
        curves[f"temperature.{policy}"] = _curve(result.traces["node0.temp"])
        curves[f"pwm_duty.{policy}"] = _curve(result.traces["node0.duty"])
    return curves


def fig08_series(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Dict[str, Curve]:
    """Figure 8: LU temperature + frequency under tDVFS/traditional fan."""
    iterations = 90 if quick else 250
    spec = RunSpec.of(
        "lu_a_4",
        {"iterations": iterations},
        rigs=[
            ("traditional_fan", {"max_duty": 0.25}),
            ("tdvfs", {"pp": 50, "threshold": 51.0}),
        ],
        n_nodes=4,
        seed=seed,
        quick=quick,
    )
    result = _executor(executor).run(spec)
    return {
        "temperature": _curve(result.traces["node0.temp"]),
        "frequency_ghz": _curve(result.traces["node0.freq_ghz"]),
    }


def fig09_series(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Dict[str, Curve]:
    """Figure 9: temperature under tDVFS vs CPUSPEED (25 %-capped fan)."""
    iterations = 70 if quick else 200
    daemons = ("cpuspeed", "tdvfs")
    specs = [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[
                ("dynamic_fan", {"pp": 50, "max_duty": 0.25}),
                (daemon, {} if daemon == "cpuspeed" else {"pp": 50}),
            ],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for daemon in daemons
    ]
    curves: Dict[str, Curve] = {}
    for daemon, result in zip(daemons, _executor(executor).map(specs)):
        curves[f"temperature.{daemon}"] = _curve(result.traces["node0.temp"])
        curves[f"frequency_ghz.{daemon}"] = _curve(
            result.traces["node0.freq_ghz"]
        )
    return curves


def fig10_series(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Dict[str, Curve]:
    """Figure 10: hybrid-control temperature per shared P_p."""
    iterations = 70 if quick else 200
    pps = (25, 50, 75)
    specs = [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[("hybrid", {"pp": pp, "max_duty": 0.50})],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for pp in pps
    ]
    curves: Dict[str, Curve] = {}
    for pp, result in zip(pps, _executor(executor).map(specs)):
        curves[f"temperature.pp{pp}"] = _curve(result.traces["node0.temp"])
        curves[f"frequency_ghz.pp{pp}"] = _curve(
            result.traces["node0.freq_ghz"]
        )
    return curves


#: CLI registry: figure id → series function.
SERIES_REGISTRY = {
    "fig2": fig02_series,
    "fig5": fig05_series,
    "fig6": fig06_series,
    "fig8": fig08_series,
    "fig9": fig09_series,
    "fig10": fig10_series,
}
