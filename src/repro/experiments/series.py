"""Plot-ready data series for the paper's figures.

The tabular experiments summarize; this module regenerates the actual
*curves* each figure plots — temperature and PWM traces against the
paper's "sample points" x-axis — so a user can recreate the figures
with any plotting tool:

.. code-block:: python

    from repro.experiments import series
    curves = series.fig09_series()          # {label: (times, values)}

or from the command line::

    python -m repro series fig9 --export out/
    # writes out/fig9.<label>.csv, one two-column CSV per curve

Each ``figNN_series`` function reruns the corresponding §4
configuration and returns ``{label: (times_array, values_array)}``
resampled to the paper's 4 Hz sample-point cadence.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.policy import Policy
from ..governors.tdvfs import TDvfsParams
from ..workloads.cpuburn import cpu_burn_session
from ..workloads.npb import bt_b_4, lu_a_4
from ..workloads.synthetic import mixed_thermal_profile
from .platform import (
    DEFAULT_SEED,
    attach_constant_fan,
    attach_cpuspeed,
    attach_dynamic_fan,
    attach_hybrid,
    attach_tdvfs,
    attach_traditional_fan,
    standard_cluster,
)

__all__ = [
    "fig02_series",
    "fig05_series",
    "fig06_series",
    "fig08_series",
    "fig09_series",
    "fig10_series",
    "SERIES_REGISTRY",
    "Curve",
]

#: A curve: (sample times in seconds, values).
Curve = Tuple[np.ndarray, np.ndarray]


def _curve(trace) -> Curve:
    return np.asarray(trace.times), np.asarray(trace.values)


def fig02_series(seed: int = DEFAULT_SEED, quick: bool = False) -> Dict[str, Curve]:
    """Figure 2: the mixed sudden/gradual/jitter thermal profile."""
    duration = 120.0 if quick else 300.0
    cluster = standard_cluster(n_nodes=1, seed=seed)
    attach_constant_fan(cluster, duty=0.45)
    result = cluster.run_job(
        mixed_thermal_profile(duration=duration).build(), timeout=duration * 4
    )
    return {"temperature": _curve(result.traces["node0.temp"])}


def fig05_series(seed: int = DEFAULT_SEED, quick: bool = False) -> Dict[str, Curve]:
    """Figure 5: temperature (top) and PWM duty (bottom) per P_p."""
    burn = 60.0 if quick else 300.0
    curves: Dict[str, Curve] = {}
    for pp in (75, 50, 25):
        cluster = standard_cluster(n_nodes=1, seed=seed)
        attach_dynamic_fan(cluster, pp=pp, max_duty=1.0)
        job = cpu_burn_session(
            instances=3,
            burn_duration=burn,
            gap_duration=40.0,
            rng=cluster.rngs.stream("cpu-burn"),
        )
        result = cluster.run_job(job, timeout=20 * burn + 600)
        curves[f"temperature.pp{pp}"] = _curve(result.traces["node0.temp"])
        curves[f"pwm_duty.pp{pp}"] = _curve(result.traces["node0.duty"])
    return curves


def fig06_series(seed: int = DEFAULT_SEED, quick: bool = False) -> Dict[str, Curve]:
    """Figure 6: temperature (a) and fan speed (b) per fan policy."""
    iterations = 60 if quick else 200
    curves: Dict[str, Curve] = {}
    for policy in ("traditional", "dynamic", "constant"):
        cluster = standard_cluster(n_nodes=4, seed=seed)
        if policy == "traditional":
            attach_traditional_fan(cluster, max_duty=0.75)
        elif policy == "dynamic":
            attach_dynamic_fan(cluster, pp=50, max_duty=0.75)
        else:
            attach_constant_fan(cluster, duty=0.75)
        result = cluster.run_job(
            bt_b_4(rng=cluster.rngs.stream("wl"), iterations=iterations),
            timeout=3600,
        )
        curves[f"temperature.{policy}"] = _curve(result.traces["node0.temp"])
        curves[f"pwm_duty.{policy}"] = _curve(result.traces["node0.duty"])
    return curves


def fig08_series(seed: int = DEFAULT_SEED, quick: bool = False) -> Dict[str, Curve]:
    """Figure 8: LU temperature + frequency under tDVFS/traditional fan."""
    iterations = 90 if quick else 250
    cluster = standard_cluster(n_nodes=4, seed=seed)
    attach_traditional_fan(cluster, max_duty=0.25)
    attach_tdvfs(cluster, pp=50, params=TDvfsParams(threshold=51.0))
    result = cluster.run_job(
        lu_a_4(rng=cluster.rngs.stream("wl"), iterations=iterations),
        timeout=3600,
    )
    return {
        "temperature": _curve(result.traces["node0.temp"]),
        "frequency_ghz": _curve(result.traces["node0.freq_ghz"]),
    }


def fig09_series(seed: int = DEFAULT_SEED, quick: bool = False) -> Dict[str, Curve]:
    """Figure 9: temperature under tDVFS vs CPUSPEED (25 %-capped fan)."""
    iterations = 70 if quick else 200
    curves: Dict[str, Curve] = {}
    for daemon in ("cpuspeed", "tdvfs"):
        cluster = standard_cluster(n_nodes=4, seed=seed)
        attach_dynamic_fan(cluster, pp=50, max_duty=0.25)
        if daemon == "cpuspeed":
            attach_cpuspeed(cluster)
        else:
            attach_tdvfs(cluster, pp=50)
        result = cluster.run_job(
            bt_b_4(rng=cluster.rngs.stream("wl"), iterations=iterations),
            timeout=3600,
        )
        curves[f"temperature.{daemon}"] = _curve(result.traces["node0.temp"])
        curves[f"frequency_ghz.{daemon}"] = _curve(
            result.traces["node0.freq_ghz"]
        )
    return curves


def fig10_series(seed: int = DEFAULT_SEED, quick: bool = False) -> Dict[str, Curve]:
    """Figure 10: hybrid-control temperature per shared P_p."""
    iterations = 70 if quick else 200
    curves: Dict[str, Curve] = {}
    for pp in (25, 50, 75):
        cluster = standard_cluster(n_nodes=4, seed=seed)
        attach_hybrid(cluster, pp=pp, max_duty=0.50)
        result = cluster.run_job(
            bt_b_4(rng=cluster.rngs.stream("wl"), iterations=iterations),
            timeout=3600,
        )
        curves[f"temperature.pp{pp}"] = _curve(result.traces["node0.temp"])
        curves[f"frequency_ghz.pp{pp}"] = _curve(
            result.traces["node0.freq_ghz"]
        )
    return curves


#: CLI registry: figure id → series function.
SERIES_REGISTRY = {
    "fig2": fig02_series,
    "fig5": fig05_series,
    "fig6": fig06_series,
    "fig8": fig08_series,
    "fig9": fig09_series,
    "fig10": fig10_series,
}
