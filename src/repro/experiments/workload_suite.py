"""Thermal signatures across the workload suite (paper contribution 4).

The paper's fourth stated contribution: *"We demonstrate that the
behavior of parallel applications provides significant opportunities
for power and thermal reductions."*  This experiment makes that claim
measurable across an NPB-like suite spanning the communication
spectrum:

* **EP** — embarrassingly parallel: pinned utilization, the hottest
  plant, zero dips for interval governors, and nothing for a thermal
  controller to save except via the fan.
* **BT** — the paper's mid-point: ~20 % exchange time.
* **MG** — short V-cycles, mid communication.
* **CG** — communication-bound: the coolest plant and the biggest gap
  between what utilization governors *think* is happening and what the
  thermometer says.

Each workload runs under the hybrid controller (P_p = 50, fan capped at
50 %) and under CPUSPEED, reporting mean temperature, power, the energy
saved by the unified controller, and both governors' change counts —
the "opportunity" is exactly how much these numbers move with workload
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import List, Optional

from ..analysis.rows import lookup_row
from ..analysis.tables import Table
from ..runtime import DEFAULT_SEED, Measure, RunExecutor, RunSpec

__all__ = [
    "SuiteRow",
    "SuiteResult",
    "specs",
    "run",
    "render",
    "MAX_DUTY",
    "WORKLOADS",
]

MAX_DUTY = 0.50

#: Workload registry keys and full/quick iteration counts (frozen
#: per RPR013: worker-visible module state must be immutable).
WORKLOADS = MappingProxyType({
    "EP.B.4": ("ep_b_4", 28, 6),
    "BT.B.4": ("bt_b_4", 200, 50),
    "MG.B.4": ("mg_b_4", 420, 110),
    "CG.B.4": ("cg_b_4", 260, 70),
})


@dataclass
class SuiteRow:
    """One workload's signature under both control stacks.

    Attributes
    ----------
    workload:
        Benchmark tag.
    mean_util:
        Node-0 mean utilization (workload character).
    hybrid_mean_temp / cpuspeed_mean_temp:
        Mean temperature under each stack, °C.
    hybrid_energy_kj / cpuspeed_energy_kj:
        Node-0 energy under each stack, kJ.
    hybrid_changes / cpuspeed_changes:
        DVFS transition counts.
    energy_saving:
        Relative node-0 energy saved by the hybrid stack.
    """

    workload: str
    mean_util: float
    hybrid_mean_temp: float
    cpuspeed_mean_temp: float
    hybrid_energy_kj: float
    cpuspeed_energy_kj: float
    hybrid_changes: int
    cpuspeed_changes: int

    @property
    def energy_saving(self) -> float:
        return 1.0 - self.hybrid_energy_kj / self.cpuspeed_energy_kj


@dataclass
class SuiteResult:
    """The whole suite, in communication order (EP → CG)."""

    rows: List[SuiteRow]

    def row(self, workload: str) -> SuiteRow:
        """The row for a workload tag."""
        return lookup_row(self.rows, workload=workload)


def _stack_rigs(stack: str):
    if stack == "hybrid":
        return [("hybrid", {"pp": 50, "max_duty": MAX_DUTY})]
    return [
        ("dynamic_fan", {"pp": 50, "max_duty": MAX_DUTY}),
        ("cpuspeed", {}),
    ]


def specs(seed: int = DEFAULT_SEED, quick: bool = False) -> List[RunSpec]:
    """Hybrid and CPUSPEED specs per workload, interleaved per suite row."""
    out: List[RunSpec] = []
    for workload, full_iters, quick_iters in WORKLOADS.values():
        iterations = quick_iters if quick else full_iters
        for stack in ("hybrid", "cpuspeed"):
            out.append(
                RunSpec.of(
                    workload,
                    {"iterations": iterations},
                    rigs=_stack_rigs(stack),
                    n_nodes=4,
                    seed=seed,
                    quick=quick,
                )
            )
    return out


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> SuiteResult:
    """Run the whole suite under both control stacks."""
    executor = executor if executor is not None else RunExecutor()
    results = executor.map(specs(seed=seed, quick=quick))
    rows: List[SuiteRow] = []
    for i, name in enumerate(WORKLOADS):
        hybrid, cpuspeed = results[2 * i], results[2 * i + 1]
        m_hybrid = Measure(hybrid)
        rows.append(
            SuiteRow(
                workload=name,
                mean_util=m_hybrid.mean("util"),
                hybrid_mean_temp=m_hybrid.mean("temp"),
                cpuspeed_mean_temp=Measure(cpuspeed).mean("temp"),
                hybrid_energy_kj=hybrid.energy_joules[0] / 1000.0,
                cpuspeed_energy_kj=cpuspeed.energy_joules[0] / 1000.0,
                hybrid_changes=hybrid.dvfs_change_count(0),
                cpuspeed_changes=cpuspeed.dvfs_change_count(0),
            )
        )
    return SuiteResult(rows=rows)


def render(result: SuiteResult) -> str:
    """Text output for the workload-suite study."""
    table = Table(
        headers=[
            "workload",
            "mean util",
            "T hybrid (degC)",
            "T cpuspeed (degC)",
            "E hybrid (kJ)",
            "E cpuspeed (kJ)",
            "saving (%)",
            "chg hybrid",
            "chg cpuspeed",
        ],
        formats=[None, ".2f", ".1f", ".1f", ".1f", ".1f", "+.1f", "d", "d"],
        title=(
            "Workload-suite signatures (paper contribution 4): hybrid "
            f"(P_p=50, fan cap {MAX_DUTY:.0%}) vs CPUSPEED"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.workload,
            row.mean_util,
            row.hybrid_mean_temp,
            row.cpuspeed_mean_temp,
            row.hybrid_energy_kj,
            row.cpuspeed_energy_kj,
            row.energy_saving * 100,
            row.hybrid_changes,
            row.cpuspeed_changes,
        )
    return table.render()
