"""Thermal signatures across the workload suite (paper contribution 4).

The paper's fourth stated contribution: *"We demonstrate that the
behavior of parallel applications provides significant opportunities
for power and thermal reductions."*  This experiment makes that claim
measurable across an NPB-like suite spanning the communication
spectrum:

* **EP** — embarrassingly parallel: pinned utilization, the hottest
  plant, zero dips for interval governors, and nothing for a thermal
  controller to save except via the fan.
* **BT** — the paper's mid-point: ~20 % exchange time.
* **MG** — short V-cycles, mid communication.
* **CG** — communication-bound: the coolest plant and the biggest gap
  between what utilization governors *think* is happening and what the
  thermometer says.

Each workload runs under the hybrid controller (P_p = 50, fan capped at
50 %) and under CPUSPEED, reporting mean temperature, power, the energy
saved by the unified controller, and both governors' change counts —
the "opportunity" is exactly how much these numbers move with workload
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.tables import Table
from ..workloads.npb import bt_b_4, cg_b_4, ep_b_4, mg_b_4
from .platform import (
    DEFAULT_SEED,
    attach_cpuspeed,
    attach_dynamic_fan,
    attach_hybrid,
    standard_cluster,
)

__all__ = [
    "SuiteRow",
    "SuiteResult",
    "run",
    "render",
    "MAX_DUTY",
    "WORKLOADS",
]

MAX_DUTY = 0.50

#: Workload builders and full/quick iteration counts.
WORKLOADS = {
    "EP.B.4": (ep_b_4, 28, 6),
    "BT.B.4": (bt_b_4, 200, 50),
    "MG.B.4": (mg_b_4, 420, 110),
    "CG.B.4": (cg_b_4, 260, 70),
}


@dataclass
class SuiteRow:
    """One workload's signature under both control stacks.

    Attributes
    ----------
    workload:
        Benchmark tag.
    mean_util:
        Node-0 mean utilization (workload character).
    hybrid_mean_temp / cpuspeed_mean_temp:
        Mean temperature under each stack, °C.
    hybrid_energy_kj / cpuspeed_energy_kj:
        Node-0 energy under each stack, kJ.
    hybrid_changes / cpuspeed_changes:
        DVFS transition counts.
    energy_saving:
        Relative node-0 energy saved by the hybrid stack.
    """

    workload: str
    mean_util: float
    hybrid_mean_temp: float
    cpuspeed_mean_temp: float
    hybrid_energy_kj: float
    cpuspeed_energy_kj: float
    hybrid_changes: int
    cpuspeed_changes: int

    @property
    def energy_saving(self) -> float:
        return 1.0 - self.hybrid_energy_kj / self.cpuspeed_energy_kj


@dataclass
class SuiteResult:
    """The whole suite, in communication order (EP → CG)."""

    rows: List[SuiteRow]

    def row(self, workload: str) -> SuiteRow:
        """The row for a workload tag."""
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(f"no row for {workload!r}")


def _run_stack(builder, iterations, seed, stack: str):
    cluster = standard_cluster(n_nodes=4, seed=seed)
    if stack == "hybrid":
        attach_hybrid(cluster, pp=50, max_duty=MAX_DUTY)
    else:
        attach_dynamic_fan(cluster, pp=50, max_duty=MAX_DUTY)
        attach_cpuspeed(cluster)
    job = builder(rng=cluster.rngs.stream("wl"), iterations=iterations)
    return cluster.run_job(job, timeout=3600)


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> SuiteResult:
    """Run the whole suite under both control stacks."""
    rows: List[SuiteRow] = []
    for name, (builder, full_iters, quick_iters) in WORKLOADS.items():
        iterations = quick_iters if quick else full_iters
        hybrid = _run_stack(builder, iterations, seed, "hybrid")
        cpuspeed = _run_stack(builder, iterations, seed, "cpuspeed")
        rows.append(
            SuiteRow(
                workload=name,
                mean_util=hybrid.traces["node0.util"].mean(),
                hybrid_mean_temp=hybrid.traces["node0.temp"].mean(),
                cpuspeed_mean_temp=cpuspeed.traces["node0.temp"].mean(),
                hybrid_energy_kj=hybrid.energy_joules[0] / 1000.0,
                cpuspeed_energy_kj=cpuspeed.energy_joules[0] / 1000.0,
                hybrid_changes=hybrid.dvfs_change_count(0),
                cpuspeed_changes=cpuspeed.dvfs_change_count(0),
            )
        )
    return SuiteResult(rows=rows)


def render(result: SuiteResult) -> str:
    """Text output for the workload-suite study."""
    table = Table(
        headers=[
            "workload",
            "mean util",
            "T hybrid (degC)",
            "T cpuspeed (degC)",
            "E hybrid (kJ)",
            "E cpuspeed (kJ)",
            "saving (%)",
            "chg hybrid",
            "chg cpuspeed",
        ],
        formats=[None, ".2f", ".1f", ".1f", ".1f", ".1f", "+.1f", "d", "d"],
        title=(
            "Workload-suite signatures (paper contribution 4): hybrid "
            f"(P_p=50, fan cap {MAX_DUTY:.0%}) vs CPUSPEED"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.workload,
            row.mean_util,
            row.hybrid_mean_temp,
            row.cpuspeed_mean_temp,
            row.hybrid_energy_kj,
            row.cpuspeed_energy_kj,
            row.energy_saving * 100,
            row.hybrid_changes,
            row.cpuspeed_changes,
        )
    return table.render()
