"""Figure 5 — dynamic fan control under three user policies.

Protocol (paper §4.2): three instances of cpu-burn, each ≈5 minutes,
on one node; dynamic fan control with P_p ∈ {75, 50, 25}; uncapped fan.

The paper's findings, which this harness reports and the benchmark
asserts:

1. Smaller P_p yields lower operating temperature — the policy knob
   works in the right direction.
2. Mean PWM duty is ordered opposite: P_p=25 spends the most fan
   (paper's means: 70 / 53 / 36 % for P_p = 25 / 50 / 75).
3. The fan responds to the sudden burn starts/stops within a couple of
   window rounds, but does *not* chase the jitter inside each burn —
   quantified here as the fan's duty movement during jitter-classified
   rounds vs during sudden-classified rounds.

The three specs differ only in rig parameters (P_p), so the sweep is a
batchable group: ``RunExecutor(batch=True)`` advances all three runs in
lockstep through :mod:`repro.fastpath.batch` with byte-identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.rows import lookup_row
from ..analysis.tables import Table
from ..core.classify import ThermalBehavior, classify_trace
from ..runtime import DEFAULT_SEED, RunExecutor, RunSpec

__all__ = ["Fig5Row", "Fig5Result", "PPS", "specs", "run", "render"]


@dataclass
class Fig5Row:
    """One P_p configuration's outcome.

    Attributes
    ----------
    pp:
        The policy value.
    mean_temp / max_temp:
        °C over the session.
    mean_duty:
        Mean PWM duty fraction.
    duty_move_sudden:
        Mean |duty slope| (fraction/s) across sudden-labelled rounds —
        the controller visibly reacts to Type-I events.
    duty_move_jitter:
        Mean |duty slope| across jitter-labelled rounds (per-round
        wobble from sensor noise riding on the jitter).
    duty_net_jitter:
        Mean *signed* slope across jitter rounds.  The paper's "does
        not respond to jitter" claim: jitter must produce no
        *systematic* fan motion, i.e. ``|duty_net_jitter| <<
        duty_move_sudden`` even when per-round wobble exists.
    """

    pp: int
    mean_temp: float
    max_temp: float
    mean_duty: float
    duty_move_sudden: float
    duty_move_jitter: float
    duty_net_jitter: float


@dataclass
class Fig5Result:
    """All three policies."""

    rows: List[Fig5Row]

    def row(self, pp: int) -> Fig5Row:
        """The row for a given P_p."""
        return lookup_row(self.rows, pp=pp)


def _duty_movement_by_label(
    temp_times: np.ndarray,
    temp_values: np.ndarray,
    duty_times: np.ndarray,
    duty_values: np.ndarray,
) -> Dict[ThermalBehavior, Dict[str, float]]:
    """Per-label mean |slope| and mean signed slope of the duty response."""
    labels = classify_trace(temp_times, temp_values)
    slopes: Dict[ThermalBehavior, List[float]] = {b: [] for b in ThermalBehavior}
    for t_round, label in labels:
        # The controller acts when the round completes (at t_round, after
        # the trace snapshot), so its response is the difference between
        # the duty AT t_round and the duty through the following second.
        mask = (duty_times >= t_round - 1e-9) & (
            duty_times <= t_round + 1.0 + 1e-9
        )
        if np.count_nonzero(mask) >= 2:
            d = duty_values[mask]
            t = duty_times[mask]
            slopes[label].append((d[-1] - d[0]) / max(1e-9, t[-1] - t[0]))
    out: Dict[ThermalBehavior, Dict[str, float]] = {}
    for behaviour, values in slopes.items():
        arr = np.asarray(values) if values else np.zeros(1)
        out[behaviour] = {
            "abs": float(np.mean(np.abs(arr))),
            "net": float(np.mean(arr)),
        }
    return out


PPS = (75, 50, 25)


def specs(seed: int = DEFAULT_SEED, quick: bool = False) -> List[RunSpec]:
    """One cpu-burn session spec per policy value."""
    burn = 60.0 if quick else 300.0
    gap = 20.0 if quick else 40.0
    return [
        RunSpec.of(
            "cpu_burn_session",
            {"instances": 3, "burn_duration": burn, "gap_duration": gap},
            rigs=[("dynamic_fan", {"pp": pp, "max_duty": 1.0})],
            n_nodes=1,
            seed=seed,
            timeout=8 * (3 * burn + 3 * gap) + 300,
            quick=quick,
        )
        for pp in PPS
    ]


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Fig5Result:
    """Run the Figure-5 reproduction for P_p ∈ {75, 50, 25}."""
    executor = executor if executor is not None else RunExecutor()
    results = executor.map(specs(seed=seed, quick=quick))
    rows: List[Fig5Row] = []
    for pp, result in zip(PPS, results):
        temp = result.traces["node0.temp"]
        duty = result.traces["node0.duty"]
        movement = _duty_movement_by_label(
            temp.times, temp.values, duty.times, duty.values
        )
        rows.append(
            Fig5Row(
                pp=pp,
                mean_temp=temp.mean(),
                max_temp=temp.max(),
                mean_duty=duty.mean(),
                duty_move_sudden=movement[ThermalBehavior.SUDDEN]["abs"],
                duty_move_jitter=movement[ThermalBehavior.JITTER]["abs"],
                duty_net_jitter=movement[ThermalBehavior.JITTER]["net"],
            )
        )
    return Fig5Result(rows=rows)


def render(result: Fig5Result) -> str:
    """Paper-style text output for Figure 5."""
    table = Table(
        headers=[
            "P_p",
            "mean T (degC)",
            "max T (degC)",
            "mean PWM duty (%)",
            "|slope|@sudden (%/s)",
            "net slope@jitter (%/s)",
        ],
        formats=["d", ".1f", ".1f", ".1f", ".2f", "+.2f"],
        title="Figure 5 reproduction: dynamic fan control under P_p = 75/50/25 (cpu-burn x3)",
    )
    for row in result.rows:
        table.add_row(
            row.pp,
            row.mean_temp,
            row.max_temp,
            row.mean_duty * 100,
            row.duty_move_sudden * 100,
            row.duty_net_jitter * 100,
        )
    return table.render()
