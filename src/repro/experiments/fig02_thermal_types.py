"""Figure 2 — the thermal behaviour taxonomy of parallel applications.

The paper's Figure 2 shows a CPU thermal profile, sampled at 4 Hz with
a *constant* fan speed, exhibiting the three behaviour types: sudden,
gradual and jitter.  We reproduce it by running the
:func:`~repro.workloads.synthetic.mixed_thermal_profile` workload (idle
→ sudden jump → gradual heatsink charge → jitter burst → sudden drop)
under a pinned fan, then classifying the recorded sensor trace with
the controller's own two-level machinery
(:func:`~repro.core.classify.classify_trace`).

The reproduction claim: the classifier finds all three types, and finds
them in the right places — sudden labels cluster around the step edges,
gradual labels inside the charge phase, jitter labels inside the bursty
phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.tables import Table
from ..core.classify import ThermalBehavior, classify_profile, classify_trace
from ..runtime import DEFAULT_SEED, RunExecutor, RunSpec

__all__ = ["Fig2Result", "specs", "run", "render"]


@dataclass
class Fig2Result:
    """Classification of the Figure-2 style profile.

    Attributes
    ----------
    labels:
        (time, behaviour) per window round.
    fractions:
        Behaviour → fraction of rounds.
    temp_range:
        (min, max) of the recorded temperatures, °C.
    duration:
        Profile length, seconds.
    phase_bounds:
        Named phase boundaries (fractions of duration) used to build
        the workload — lets callers check labels landed in the right
        phases.
    """

    labels: List[Tuple[float, ThermalBehavior]]
    fractions: Dict[ThermalBehavior, float]
    temp_range: Tuple[float, float]
    duration: float
    phase_bounds: Dict[str, Tuple[float, float]]


def _duration(quick: bool) -> float:
    return 120.0 if quick else 300.0


def specs(seed: int = DEFAULT_SEED, quick: bool = False) -> List[RunSpec]:
    """The single run this figure needs, as a declarative spec."""
    duration = _duration(quick)
    return [
        RunSpec.of(
            "mixed_thermal_profile",
            {"duration": duration},
            rigs=[("constant_fan", {"duty": 0.45})],
            n_nodes=1,
            seed=seed,
            timeout=duration * 4,
            quick=quick,
        )
    ]


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Fig2Result:
    """Run the Figure-2 reproduction.

    Parameters
    ----------
    seed:
        Platform seed.
    quick:
        Shorten the profile (tests); full mode is 300 s like a
        cpu-burn-scale run.
    executor:
        Runtime executor (parallelism / caching); default serial.
    """
    duration = _duration(quick)
    executor = executor if executor is not None else RunExecutor()
    (result,) = executor.map(specs(seed=seed, quick=quick))

    temp = result.traces["node0.temp"]
    labels = classify_trace(temp.times, temp.values)
    fractions = classify_profile(temp.times, temp.values)
    return Fig2Result(
        labels=labels,
        fractions=fractions,
        temp_range=(temp.min(), temp.max()),
        duration=duration,
        phase_bounds={
            "idle_head": (0.00, 0.10),
            "sudden_rise": (0.10, 0.14),
            "gradual_charge": (0.14, 0.45),
            "sudden_drop": (0.45, 0.49),
            "gradual_decay": (0.49, 0.62),
            "jitter": (0.62, 0.80),
            "idle_tail": (0.80, 1.00),
        },
    )


def render(result: Fig2Result) -> str:
    """Paper-style text output for Figure 2."""
    table = Table(
        headers=["behaviour", "fraction of rounds"],
        formats=[None, ".1%"],
        title=(
            "Figure 2 reproduction: thermal behaviour classification "
            f"(T in [{result.temp_range[0]:.1f}, {result.temp_range[1]:.1f}] degC "
            f"over {result.duration:.0f}s)"
        ),
    )
    for behaviour in ThermalBehavior:
        table.add_row(behaviour.value, result.fractions[behaviour])
    return table.render()
