"""Ablations of the paper's §3.2 design decisions.

The paper asserts (without showing data) that:

* a level-one window that is **too small reacts to jitter** as if it
  were sudden, while one **too large responds sluggishly** to genuine
  sudden changes — 4 entries was found sufficient (§3.2.1);
* the level-two FIFO is what tracks **gradual** drift, consulted only
  when level one is silent (§3.2.2).

This module measures those claims on the simulated platform:

* :func:`window_size_sweep` — for L1 sizes {2, 4, 8, 16}: the fan's
  response delay to a Type-I step and its spurious movement under a
  Type-III jitter load.
* :func:`l2_fallback_ablation` — dynamic fan with and without the
  level-two fallback under a Type-II slow ramp: without it the fan
  never tracks the drift and the plant runs hotter.
* :func:`escalation_ablation` — tDVFS's depth-escalated trigger
  threshold (the mechanism behind Figure 9's plateau) on vs off: with
  a fixed threshold the daemon chases the plant down the frequency
  ladder, trading much more performance for little extra cooling.
* :func:`split_policy_ablation` — the paper insists on ONE ``P_p``
  shared by both techniques ("we fill out the arrays in a unified
  way").  What if the fan and DVFS each got their own?  Splitting the
  knob fan-lazy/DVFS-aggressive hands the work to the expensive
  in-band technique (earlier, deeper triggers, longer runtime) for no
  thermal benefit — the measured argument for the single-knob design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.tables import Table
from ..cluster.cluster import RunResult
from ..runtime import (
    DEFAULT_SEED,
    Measure,
    RunExecutor,
    RunSpec,
    first_rise_delay,
)

__all__ = [
    "WindowSizeRow",
    "L2FallbackRow",
    "AblationResult",
    "window_size_sweep",
    "l2_fallback_ablation",
    "run",
    "render",
    "EscalationRow",
    "SplitPolicyRow",
    "escalation_ablation",
    "split_policy_ablation",
]


@dataclass
class WindowSizeRow:
    """One L1 window size's outcome.

    Attributes
    ----------
    l1_size:
        Window entries.
    sudden_delay:
        Seconds from the Type-I step until the fan moved 5+ duty steps
        above its pre-step level (inf if it never did).
    jitter_movement:
        Mean |duty| movement per second under the Type-III load —
        spurious actuation chasing noise.
    """

    l1_size: int
    sudden_delay: float
    jitter_movement: float


@dataclass
class L2FallbackRow:
    """Gradual-drift tracking with/without the level-two fallback."""

    l2_enabled: bool
    final_temp: float
    final_duty: float


@dataclass
class EscalationRow:
    """tDVFS behaviour with/without threshold escalation.

    Attributes
    ----------
    escalate:
        Whether the depth-escalated threshold was active.
    freq_changes:
        DVFS transitions on node 0.
    min_ghz:
        Deepest frequency reached.
    execution_time:
        Job wall time, s.
    end_temp:
        Final-15 s mean temperature, °C.
    """

    escalate: bool
    freq_changes: int
    min_ghz: float
    execution_time: float
    end_temp: float


@dataclass
class SplitPolicyRow:
    """One (fan P_p, DVFS P_p) assignment on the hybrid scenario.

    Attributes
    ----------
    fan_pp / dvfs_pp:
        The two knobs (equal = the paper's shared-policy design).
    execution_time:
        Job wall time, s.
    mean_temp:
        Node-0 mean temperature, °C.
    first_trigger:
        Earliest tDVFS trigger across nodes, s (None = never).
    min_ghz:
        Deepest frequency any node reached.
    """

    fan_pp: int
    dvfs_pp: int
    execution_time: float
    mean_temp: float
    first_trigger: Optional[float]
    min_ghz: float


@dataclass
class AblationResult:
    """All four studies."""

    window_rows: List[WindowSizeRow]
    l2_rows: List[L2FallbackRow]
    escalation_rows: List[EscalationRow]
    split_rows: List[SplitPolicyRow]


_WINDOW_SIZES = (2, 4, 8, 16)
_L2_MODES = (True, False)
_ESCALATION_MODES = (True, False)
_SPLITS = ((50, 50), (25, 75), (75, 25))


def _window_specs(seed: int, sizes: List[int], quick: bool) -> List[RunSpec]:
    """Per L1 size: a Type-I step run and a Type-III jitter run."""
    duration = 90.0 if quick else 180.0
    step_time = duration / 3
    out: List[RunSpec] = []
    for l1 in sizes:
        out.append(
            RunSpec.of(
                "sudden_profile",
                {"step_time": step_time, "duration": duration},
                rigs=[("dynamic_fan", {"pp": 50, "l1_size": l1})],
                n_nodes=1,
                seed=seed,
                timeout=duration * 6,
                quick=quick,
            )
        )
        out.append(
            RunSpec.of(
                "jitter_profile",
                {"duration": duration},
                rigs=[("dynamic_fan", {"pp": 50, "l1_size": l1})],
                n_nodes=1,
                seed=seed,
                timeout=duration * 6,
                quick=quick,
            )
        )
    return out


def _window_rows(
    sizes: List[int], quick: bool, results: List[RunResult]
) -> List[WindowSizeRow]:
    duration = 90.0 if quick else 180.0
    step_time = duration / 3
    rows: List[WindowSizeRow] = []
    for idx, l1 in enumerate(sizes):
        sudden, jitter = results[2 * idx], results[2 * idx + 1]
        duty = Measure(sudden).trace("duty")
        delay = first_rise_delay(
            np.asarray(duty.times), np.asarray(duty.values), step_time
        )

        duty = Measure(jitter).trace("duty")
        v = np.asarray(duty.values)
        t = np.asarray(duty.times)
        # discard the warm-up third, where responding is correct
        settle = t >= duration / 3
        movement = float(np.sum(np.abs(np.diff(v[settle])))) / max(
            1e-9, float(t[-1] - duration / 3)
        )
        rows.append(
            WindowSizeRow(l1_size=l1, sudden_delay=delay, jitter_movement=movement)
        )
    return rows


def window_size_sweep(
    seed: int = DEFAULT_SEED,
    sizes: Optional[List[int]] = None,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> List[WindowSizeRow]:
    """Measure sudden-response delay and jitter chasing per L1 size."""
    if sizes is None:
        sizes = _WINDOW_SIZES
    executor = executor if executor is not None else RunExecutor()
    results = executor.map(_window_specs(seed, sizes, quick))
    return _window_rows(sizes, quick, results)


def _l2_specs(seed: int, quick: bool) -> List[RunSpec]:
    duration = 150.0 if quick else 300.0
    return [
        RunSpec.of(
            "gradual_profile",
            {"duration": duration},
            rigs=[("dynamic_fan", {"pp": 50, "l2_when_l1_silent": enabled})],
            n_nodes=1,
            seed=seed,
            timeout=duration * 6,
            quick=quick,
        )
        for enabled in _L2_MODES
    ]


def _l2_rows(results: List[RunResult]) -> List[L2FallbackRow]:
    rows: List[L2FallbackRow] = []
    for enabled, result in zip(_L2_MODES, results):
        m = Measure(result)
        rows.append(
            L2FallbackRow(
                l2_enabled=enabled,
                final_temp=m.final_mean("temp", seconds=20.0),
                final_duty=m.final_mean("duty", seconds=20.0),
            )
        )
    return rows


def l2_fallback_ablation(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> List[L2FallbackRow]:
    """Gradual-drift tracking with and without the level-two fallback."""
    executor = executor if executor is not None else RunExecutor()
    return _l2_rows(executor.map(_l2_specs(seed, quick)))


def _escalation_specs(seed: int, quick: bool) -> List[RunSpec]:
    iterations = 70 if quick else 200
    return [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[
                ("dynamic_fan", {"pp": 50, "max_duty": 0.25}),
                ("tdvfs", {"pp": 50, "escalate_threshold": escalate}),
            ],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for escalate in _ESCALATION_MODES
    ]


def _escalation_rows(results: List[RunResult]) -> List[EscalationRow]:
    rows: List[EscalationRow] = []
    for escalate, result in zip(_ESCALATION_MODES, results):
        m = Measure(result)
        rows.append(
            EscalationRow(
                escalate=escalate,
                freq_changes=result.dvfs_change_count(0),
                min_ghz=m.trace("freq_ghz").min(),
                execution_time=result.execution_time,
                end_temp=m.final_mean("temp", seconds=15.0),
            )
        )
    return rows


def escalation_ablation(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> List[EscalationRow]:
    """tDVFS with/without the depth-escalated threshold (BT, 25 % fan)."""
    executor = executor if executor is not None else RunExecutor()
    return _escalation_rows(executor.map(_escalation_specs(seed, quick)))


def _split_specs(seed: int, quick: bool) -> List[RunSpec]:
    iterations = 70 if quick else 200
    return [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[
                ("dynamic_fan", {"pp": fan_pp, "max_duty": 0.50}),
                ("tdvfs", {"pp": dvfs_pp}),
            ],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for fan_pp, dvfs_pp in _SPLITS
    ]


def _split_rows(results: List[RunResult]) -> List[SplitPolicyRow]:
    rows: List[SplitPolicyRow] = []
    for (fan_pp, dvfs_pp), result in zip(_SPLITS, results):
        triggers = result.events.filter(category="tdvfs.trigger")
        rows.append(
            SplitPolicyRow(
                fan_pp=fan_pp,
                dvfs_pp=dvfs_pp,
                execution_time=result.execution_time,
                mean_temp=Measure(result).mean("temp"),
                first_trigger=triggers[0].time if triggers else None,
                min_ghz=min(
                    (e.data["new_ghz"] for e in triggers), default=2.4
                ),
            )
        )
    return rows


def split_policy_ablation(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> List[SplitPolicyRow]:
    """Shared vs independent P_p for the fan and DVFS halves.

    The paper's hybrid (§4.4) applies one P_p to both techniques; this
    study deliberately splits the knob (which our
    :class:`~repro.governors.hybrid.HybridControl` refuses — the halves
    are rigged as separate governors here).
    """
    executor = executor if executor is not None else RunExecutor()
    return _split_rows(executor.map(_split_specs(seed, quick)))


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> AblationResult:
    """Run all four ablation studies.

    All sub-study specs are flattened into one executor map so a
    parallel executor overlaps the studies, not just runs within one.
    """
    executor = executor if executor is not None else RunExecutor()
    w = _window_specs(seed, _WINDOW_SIZES, quick)
    l2 = _l2_specs(seed, quick)
    esc = _escalation_specs(seed, quick)
    split = _split_specs(seed, quick)
    results = executor.map(w + l2 + esc + split)
    i0 = len(w)
    i1 = i0 + len(l2)
    i2 = i1 + len(esc)
    return AblationResult(
        window_rows=_window_rows(_WINDOW_SIZES, quick, results[:i0]),
        l2_rows=_l2_rows(results[i0:i1]),
        escalation_rows=_escalation_rows(results[i1:i2]),
        split_rows=_split_rows(results[i2:]),
    )


def render(result: AblationResult) -> str:
    """Text output for all ablations."""
    w = Table(
        headers=["L1 size", "sudden delay (s)", "jitter movement (duty/s)"],
        formats=["d", ".2f", ".4f"],
        title="Ablation A: level-one window size (paper picks 4)",
    )
    for row in result.window_rows:
        w.add_row(row.l1_size, row.sudden_delay, row.jitter_movement)

    l2 = Table(
        headers=["L2 fallback", "final T (degC)", "final duty (%)"],
        formats=[None, ".1f", ".1f"],
        title="Ablation B: level-two fallback under a Type-II slow ramp",
    )
    for row in result.l2_rows:
        l2.add_row("on" if row.l2_enabled else "off", row.final_temp, row.final_duty * 100)

    c = Table(
        headers=[
            "escalated threshold",
            "# freq changes",
            "deepest (GHz)",
            "exec time (s)",
            "end T (degC)",
        ],
        formats=[None, "d", ".1f", ".1f", ".1f"],
        title="Ablation C: tDVFS depth-escalated trigger threshold",
    )
    for row in result.escalation_rows:
        c.add_row(
            "on" if row.escalate else "off",
            row.freq_changes,
            row.min_ghz,
            row.execution_time,
            row.end_temp,
        )

    d = Table(
        headers=[
            "fan P_p",
            "DVFS P_p",
            "exec time (s)",
            "mean T (degC)",
            "first trigger (s)",
            "deepest (GHz)",
        ],
        formats=["d", "d", ".1f", ".1f", None, ".1f"],
        title="Ablation D: shared vs independent P_p (paper: one knob)",
    )
    for row in result.split_rows:
        d.add_row(
            row.fan_pp,
            row.dvfs_pp,
            row.execution_time,
            row.mean_temp,
            "never" if row.first_trigger is None else f"{row.first_trigger:.0f}",
            row.min_ghz,
        )

    return "\n\n".join([w.render(), l2.render(), c.render(), d.render()])
