"""Ablations of the paper's §3.2 design decisions.

The paper asserts (without showing data) that:

* a level-one window that is **too small reacts to jitter** as if it
  were sudden, while one **too large responds sluggishly** to genuine
  sudden changes — 4 entries was found sufficient (§3.2.1);
* the level-two FIFO is what tracks **gradual** drift, consulted only
  when level one is silent (§3.2.2).

This module measures those claims on the simulated platform:

* :func:`window_size_sweep` — for L1 sizes {2, 4, 8, 16}: the fan's
  response delay to a Type-I step and its spurious movement under a
  Type-III jitter load.
* :func:`l2_fallback_ablation` — dynamic fan with and without the
  level-two fallback under a Type-II slow ramp: without it the fan
  never tracks the drift and the plant runs hotter.
* :func:`escalation_ablation` — tDVFS's depth-escalated trigger
  threshold (the mechanism behind Figure 9's plateau) on vs off: with
  a fixed threshold the daemon chases the plant down the frequency
  ladder, trading much more performance for little extra cooling.
* :func:`split_policy_ablation` — the paper insists on ONE ``P_p``
  shared by both techniques ("we fill out the arrays in a unified
  way").  What if the fan and DVFS each got their own?  Splitting the
  knob fan-lazy/DVFS-aggressive hands the work to the expensive
  in-band technique (earlier, deeper triggers, longer runtime) for no
  thermal benefit — the measured argument for the single-knob design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.tables import Table
from ..governors.tdvfs import TDvfsParams
from ..workloads.npb import bt_b_4
from ..workloads.synthetic import gradual_profile, jitter_profile, sudden_profile
from .platform import (
    DEFAULT_SEED,
    attach_dynamic_fan,
    attach_tdvfs,
    standard_cluster,
)

__all__ = [
    "WindowSizeRow",
    "L2FallbackRow",
    "AblationResult",
    "window_size_sweep",
    "l2_fallback_ablation",
    "run",
    "render",
    "EscalationRow",
    "SplitPolicyRow",
    "escalation_ablation",
    "split_policy_ablation",
]


@dataclass
class WindowSizeRow:
    """One L1 window size's outcome.

    Attributes
    ----------
    l1_size:
        Window entries.
    sudden_delay:
        Seconds from the Type-I step until the fan moved 5+ duty steps
        above its pre-step level (inf if it never did).
    jitter_movement:
        Mean |duty| movement per second under the Type-III load —
        spurious actuation chasing noise.
    """

    l1_size: int
    sudden_delay: float
    jitter_movement: float


@dataclass
class L2FallbackRow:
    """Gradual-drift tracking with/without the level-two fallback."""

    l2_enabled: bool
    final_temp: float
    final_duty: float


@dataclass
class EscalationRow:
    """tDVFS behaviour with/without threshold escalation.

    Attributes
    ----------
    escalate:
        Whether the depth-escalated threshold was active.
    freq_changes:
        DVFS transitions on node 0.
    min_ghz:
        Deepest frequency reached.
    execution_time:
        Job wall time, s.
    end_temp:
        Final-15 s mean temperature, °C.
    """

    escalate: bool
    freq_changes: int
    min_ghz: float
    execution_time: float
    end_temp: float


@dataclass
class SplitPolicyRow:
    """One (fan P_p, DVFS P_p) assignment on the hybrid scenario.

    Attributes
    ----------
    fan_pp / dvfs_pp:
        The two knobs (equal = the paper's shared-policy design).
    execution_time:
        Job wall time, s.
    mean_temp:
        Node-0 mean temperature, °C.
    first_trigger:
        Earliest tDVFS trigger across nodes, s (None = never).
    min_ghz:
        Deepest frequency any node reached.
    """

    fan_pp: int
    dvfs_pp: int
    execution_time: float
    mean_temp: float
    first_trigger: Optional[float]
    min_ghz: float


@dataclass
class AblationResult:
    """All four studies."""

    window_rows: List[WindowSizeRow]
    l2_rows: List[L2FallbackRow]
    escalation_rows: List[EscalationRow]
    split_rows: List[SplitPolicyRow]


def _first_rise_delay(
    duty_times: np.ndarray,
    duty_values: np.ndarray,
    step_time: float,
    rise: float = 0.05,
) -> float:
    """Seconds after ``step_time`` until duty exceeds its pre-step level
    by ``rise``; inf if never."""
    before = duty_values[duty_times < step_time]
    base = float(before[-1]) if before.size else float(duty_values[0])
    after_mask = duty_times >= step_time
    t_after = duty_times[after_mask]
    v_after = duty_values[after_mask]
    risen = np.where(v_after >= base + rise)[0]
    if risen.size == 0:
        return float("inf")
    return float(t_after[int(risen[0])] - step_time)


def window_size_sweep(
    seed: int = DEFAULT_SEED,
    sizes: Optional[List[int]] = None,
    quick: bool = False,
) -> List[WindowSizeRow]:
    """Measure sudden-response delay and jitter chasing per L1 size."""
    if sizes is None:
        sizes = [2, 4, 8, 16]
    duration = 90.0 if quick else 180.0
    step_time = duration / 3
    rows: List[WindowSizeRow] = []
    for l1 in sizes:
        # Type I: response delay to a sustained step.
        cluster = standard_cluster(n_nodes=1, seed=seed)
        attach_dynamic_fan(cluster, pp=50, l1_size=l1)
        job = sudden_profile(step_time=step_time, duration=duration).build()
        result = cluster.run_job(job, timeout=duration * 6)
        duty = result.traces["node0.duty"]
        delay = _first_rise_delay(
            np.asarray(duty.times), np.asarray(duty.values), step_time
        )

        # Type III: spurious movement under pure jitter.
        cluster = standard_cluster(n_nodes=1, seed=seed)
        attach_dynamic_fan(cluster, pp=50, l1_size=l1)
        job = jitter_profile(
            duration=duration, rng=cluster.rngs.stream("jitter")
        ).build()
        result = cluster.run_job(job, timeout=duration * 6)
        duty = result.traces["node0.duty"]
        v = np.asarray(duty.values)
        t = np.asarray(duty.times)
        # discard the warm-up third, where responding is correct
        settle = t >= duration / 3
        movement = float(np.sum(np.abs(np.diff(v[settle])))) / max(
            1e-9, float(t[-1] - duration / 3)
        )
        rows.append(
            WindowSizeRow(l1_size=l1, sudden_delay=delay, jitter_movement=movement)
        )
    return rows


def l2_fallback_ablation(
    seed: int = DEFAULT_SEED, quick: bool = False
) -> List[L2FallbackRow]:
    """Gradual-drift tracking with and without the level-two fallback."""
    duration = 150.0 if quick else 300.0
    rows: List[L2FallbackRow] = []
    for enabled in (True, False):
        cluster = standard_cluster(n_nodes=1, seed=seed)
        attach_dynamic_fan(cluster, pp=50, l2_when_l1_silent=enabled)
        job = gradual_profile(duration=duration).build()
        result = cluster.run_job(job, timeout=duration * 6)
        temp = result.traces["node0.temp"]
        duty = result.traces["node0.duty"]
        t_end = result.execution_time
        rows.append(
            L2FallbackRow(
                l2_enabled=enabled,
                final_temp=temp.window(t_end - 20.0, t_end).mean(),
                final_duty=duty.window(t_end - 20.0, t_end).mean(),
            )
        )
    return rows


def escalation_ablation(
    seed: int = DEFAULT_SEED, quick: bool = False
) -> List[EscalationRow]:
    """tDVFS with/without the depth-escalated threshold (BT, 25 % fan)."""
    iterations = 70 if quick else 200
    rows: List[EscalationRow] = []
    for escalate in (True, False):
        cluster = standard_cluster(n_nodes=4, seed=seed)
        attach_dynamic_fan(cluster, pp=50, max_duty=0.25)
        attach_tdvfs(
            cluster, pp=50, params=TDvfsParams(escalate_threshold=escalate)
        )
        job = bt_b_4(rng=cluster.rngs.stream("wl"), iterations=iterations)
        result = cluster.run_job(job, timeout=3600)
        temp = result.traces["node0.temp"]
        t_end = result.execution_time
        freq = result.traces["node0.freq_ghz"]
        rows.append(
            EscalationRow(
                escalate=escalate,
                freq_changes=result.dvfs_change_count(0),
                min_ghz=freq.min(),
                execution_time=result.execution_time,
                end_temp=temp.window(t_end - 15.0, t_end).mean(),
            )
        )
    return rows


def split_policy_ablation(
    seed: int = DEFAULT_SEED, quick: bool = False
) -> List[SplitPolicyRow]:
    """Shared vs independent P_p for the fan and DVFS halves.

    The paper's hybrid (§4.4) applies one P_p to both techniques; this
    study deliberately splits the knob (which our
    :class:`~repro.governors.hybrid.HybridControl` refuses — the halves
    are attached as separate governors here).
    """
    from ..core.policy import Policy
    from ..governors.fan_dynamic import DynamicFanControl
    from ..governors.tdvfs import TDvfs

    iterations = 70 if quick else 200
    rows: List[SplitPolicyRow] = []
    for fan_pp, dvfs_pp in ((50, 50), (25, 75), (75, 25)):
        cluster = standard_cluster(n_nodes=4, seed=seed)
        for node in cluster.nodes:
            cluster.add_governor(
                node,
                DynamicFanControl(
                    node.make_fan_driver(max_duty=0.50),
                    Policy(pp=fan_pp),
                    events=cluster.events,
                    name=f"{node.name}.fan-dynamic",
                ),
            )
            cluster.add_governor(
                node,
                TDvfs(
                    node.dvfs,
                    Policy(pp=dvfs_pp),
                    events=cluster.events,
                    name=f"{node.name}.tdvfs",
                ),
            )
        job = bt_b_4(rng=cluster.rngs.stream("wl"), iterations=iterations)
        result = cluster.run_job(job, timeout=3600)
        triggers = result.events.filter(category="tdvfs.trigger")
        rows.append(
            SplitPolicyRow(
                fan_pp=fan_pp,
                dvfs_pp=dvfs_pp,
                execution_time=result.execution_time,
                mean_temp=result.traces["node0.temp"].mean(),
                first_trigger=triggers[0].time if triggers else None,
                min_ghz=min(
                    (e.data["new_ghz"] for e in triggers), default=2.4
                ),
            )
        )
    return rows


def run(seed: int = DEFAULT_SEED, quick: bool = False) -> AblationResult:
    """Run all four ablation studies."""
    return AblationResult(
        window_rows=window_size_sweep(seed=seed, quick=quick),
        l2_rows=l2_fallback_ablation(seed=seed, quick=quick),
        escalation_rows=escalation_ablation(seed=seed, quick=quick),
        split_rows=split_policy_ablation(seed=seed, quick=quick),
    )


def render(result: AblationResult) -> str:
    """Text output for all ablations."""
    w = Table(
        headers=["L1 size", "sudden delay (s)", "jitter movement (duty/s)"],
        formats=["d", ".2f", ".4f"],
        title="Ablation A: level-one window size (paper picks 4)",
    )
    for row in result.window_rows:
        w.add_row(row.l1_size, row.sudden_delay, row.jitter_movement)

    l2 = Table(
        headers=["L2 fallback", "final T (degC)", "final duty (%)"],
        formats=[None, ".1f", ".1f"],
        title="Ablation B: level-two fallback under a Type-II slow ramp",
    )
    for row in result.l2_rows:
        l2.add_row("on" if row.l2_enabled else "off", row.final_temp, row.final_duty * 100)

    c = Table(
        headers=[
            "escalated threshold",
            "# freq changes",
            "deepest (GHz)",
            "exec time (s)",
            "end T (degC)",
        ],
        formats=[None, "d", ".1f", ".1f", ".1f"],
        title="Ablation C: tDVFS depth-escalated trigger threshold",
    )
    for row in result.escalation_rows:
        c.add_row(
            "on" if row.escalate else "off",
            row.freq_changes,
            row.min_ghz,
            row.execution_time,
            row.end_temp,
        )

    d = Table(
        headers=[
            "fan P_p",
            "DVFS P_p",
            "exec time (s)",
            "mean T (degC)",
            "first trigger (s)",
            "deepest (GHz)",
        ],
        formats=["d", "d", ".1f", ".1f", None, ".1f"],
        title="Ablation D: shared vs independent P_p (paper: one knob)",
    )
    for row in result.split_rows:
        d.add_row(
            row.fan_pp,
            row.dvfs_pp,
            row.execution_time,
            row.mean_temp,
            "never" if row.first_trigger is None else f"{row.first_trigger:.0f}",
            row.min_ghz,
        )

    return "\n\n".join([w.render(), l2.render(), c.render(), d.render()])
