"""Experiment harnesses — one module per paper table/figure.

Every module exposes a ``run(seed=..., quick=...)`` returning a typed
result object and a ``render(result)`` producing the paper-style text
output.  The ``quick`` flag shortens workloads for test suites; the
benchmark harnesses run the full-length configurations.

=====================================  =========================================
module                                 reproduces
=====================================  =========================================
:mod:`~repro.experiments.fig02_thermal_types`    Figure 2 — thermal behaviour taxonomy
:mod:`~repro.experiments.fig05_fan_pp`           Figure 5 — dynamic fan, P_p sweep
:mod:`~repro.experiments.fig06_fan_comparison`   Figure 6 — dynamic vs traditional vs constant
:mod:`~repro.experiments.fig07_max_pwm`          Figure 7 — maximum-PWM sweep
:mod:`~repro.experiments.fig08_tdvfs_static_fan` Figure 8 — tDVFS + traditional fan (LU)
:mod:`~repro.experiments.fig09_tdvfs_vs_cpuspeed` Figure 9 — tDVFS vs CPUSPEED
:mod:`~repro.experiments.table1_tdvfs_cpuspeed`  Table 1 — the full 6-run comparison
:mod:`~repro.experiments.fig10_hybrid`           Figure 10 — hybrid control, P_p sweep
:mod:`~repro.experiments.scaling`                §5 future work — cluster scaling
:mod:`~repro.experiments.ablation`               §3.2 design-decision ablations
:mod:`~repro.experiments.emergency`              fan failure vs hardware protection
:mod:`~repro.experiments.workload_suite`         contribution 4 — workload signatures
:mod:`~repro.experiments.robustness`             Table-1 claims across seeds
:mod:`~repro.experiments.fleet_capping`          fleet-scale capping (sharded engine)
=====================================  =========================================
"""

from types import MappingProxyType

from . import (
    ablation,
    emergency,
    fig02_thermal_types,
    fig05_fan_pp,
    fig06_fan_comparison,
    fig07_max_pwm,
    fig08_tdvfs_static_fan,
    fig09_tdvfs_vs_cpuspeed,
    fig10_hybrid,
    fleet_capping,
    platform,
    scaling,
    robustness,
    table1_tdvfs_cpuspeed,
    workload_suite,
)

__all__ = [
    "platform",
    "fig02_thermal_types",
    "fig05_fan_pp",
    "fig06_fan_comparison",
    "fig07_max_pwm",
    "fig08_tdvfs_static_fan",
    "fig09_tdvfs_vs_cpuspeed",
    "table1_tdvfs_cpuspeed",
    "fig10_hybrid",
    "scaling",
    "ablation",
    "emergency",
    "workload_suite",
    "robustness",
    "fleet_capping",
    "REGISTRY",
]

#: Registry used by the CLI: name → (module, description).  Frozen
#: (RPR013): worker processes re-import this module, so any mutation
#: in the parent would silently diverge from what workers see.
REGISTRY = MappingProxyType({
    "fig2": (fig02_thermal_types, "thermal behaviour taxonomy (Figure 2)"),
    "fig5": (fig05_fan_pp, "dynamic fan control, P_p sweep (Figure 5)"),
    "fig6": (fig06_fan_comparison, "fan policy comparison (Figure 6)"),
    "fig7": (fig07_max_pwm, "maximum-PWM sweep (Figure 7)"),
    "fig8": (fig08_tdvfs_static_fan, "tDVFS with traditional fan (Figure 8)"),
    "fig9": (fig09_tdvfs_vs_cpuspeed, "tDVFS vs CPUSPEED (Figure 9)"),
    "table1": (table1_tdvfs_cpuspeed, "CPUSPEED vs tDVFS sweep (Table 1)"),
    "fig10": (fig10_hybrid, "hybrid fan+DVFS control (Figure 10)"),
    "scaling": (scaling, "cluster-size scaling (future work)"),
    "ablation": (ablation, "window/design ablations"),
    "emergency": (emergency, "fan-failure / thermal-emergency avoidance"),
    "suite": (workload_suite, "thermal signatures across the NPB suite"),
    "robustness": (robustness, "Table 1 claims across independent seeds"),
    "fleet": (fleet_capping, "fleet-scale capping on the sharded engine"),
})
