"""Table 1 — CPUSPEED vs tDVFS across fan capability levels.

Protocol (paper §4.3): NPB BT.B.4; dynamic fan control with P_p = 50;
maximum PWM duty ∈ {75, 50, 25} %; the processor governed by CPUSPEED
or by tDVFS.  Reported per configuration, exactly as the paper's
Table 1: number of frequency changes, execution time, average wall
power, and the power-delay product.

Findings reproduced (see EXPERIMENTS.md for paper-vs-measured):

1. tDVFS cuts the number of frequency changes by ~two orders of
   magnitude (paper: 101–139 → 2–3).
2. At a strong fan (75 %) both daemons deliver the same performance;
   as the fan weakens, tDVFS trades a few percent of execution time
   for substantially lower power.
3. On the combined power-delay metric tDVFS beats CPUSPEED at *every*
   fan capability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.rows import lookup_row
from ..analysis.tables import Table
from ..cluster.cluster import RunResult
from ..runtime import DEFAULT_SEED, Measure, RunExecutor, RunSpec

__all__ = [
    "Table1Cell",
    "Table1Result",
    "configs",
    "specs",
    "build_result",
    "run",
    "render",
    "CAPS",
    "DAEMONS",
]

CAPS = (0.75, 0.50, 0.25)
DAEMONS = ("cpuspeed", "tdvfs")


@dataclass
class Table1Cell:
    """One (daemon, cap) configuration's Table-1 row.

    Attributes mirror the paper's columns.
    """

    daemon: str
    max_duty: float
    freq_changes: int
    execution_time: float
    avg_power: float
    power_delay_product: float
    mean_temp: float


@dataclass
class Table1Result:
    """All six configurations."""

    cells: List[Table1Cell]

    def cell(self, daemon: str, max_duty: float) -> Table1Cell:
        """Look up one configuration."""
        return lookup_row(self.cells, daemon=daemon, max_duty=max_duty)

    def pdp_winner(self, max_duty: float) -> str:
        """Which daemon has the lower power-delay product at this cap."""
        cells = {
            d: self.cell(d, max_duty).power_delay_product for d in DAEMONS
        }
        return min(cells, key=cells.get)


def configs() -> List[Tuple[float, str]]:
    """The six (cap, daemon) configurations in run order."""
    return [(cap, daemon) for cap in CAPS for daemon in DAEMONS]


def specs(seed: int = DEFAULT_SEED, quick: bool = False) -> List[RunSpec]:
    """One spec per Table-1 configuration, in :func:`configs` order.

    Public so cross-experiment harnesses (the robustness sweep) can
    flatten several seeds' worth of specs into a single executor map.
    """
    iterations = 70 if quick else 200
    return [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[
                ("dynamic_fan", {"pp": 50, "max_duty": cap}),
                (daemon, {} if daemon == "cpuspeed" else {"pp": 50}),
            ],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for cap, daemon in configs()
    ]


def build_result(results: Sequence[RunResult]) -> Table1Result:
    """Assemble a :class:`Table1Result` from results in spec order."""
    cells: List[Table1Cell] = []
    for (cap, daemon), result in zip(configs(), results):
        cells.append(
            Table1Cell(
                daemon=daemon,
                max_duty=cap,
                freq_changes=result.dvfs_change_count(0),
                execution_time=result.execution_time,
                avg_power=result.average_power[0],
                power_delay_product=result.power_delay_product(0),
                mean_temp=Measure(result).mean("temp"),
            )
        )
    return Table1Result(cells=cells)


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Table1Result:
    """Run all six Table-1 configurations."""
    executor = executor if executor is not None else RunExecutor()
    return build_result(executor.map(specs(seed=seed, quick=quick)))


def render(result: Table1Result) -> str:
    """The paper-style Table 1."""
    table = Table(
        headers=[
            "daemon",
            "max PWM (%)",
            "# freq changes",
            "exec time (s)",
            "avg power (W)",
            "PDP (W*s)",
            "mean T (degC)",
        ],
        formats=[None, ".0f", "d", ".1f", ".2f", ".0f", ".1f"],
        title="Table 1 reproduction: BT.B.4 under CPUSPEED vs tDVFS",
    )
    for cap in CAPS:
        for daemon in DAEMONS:
            c = result.cell(daemon, cap)
            table.add_row(
                c.daemon,
                c.max_duty * 100,
                c.freq_changes,
                c.execution_time,
                c.avg_power,
                c.power_delay_product,
                c.mean_temp,
            )
    winners = ", ".join(
        f"{int(cap * 100)}%: {result.pdp_winner(cap)}" for cap in CAPS
    )
    return table.render() + f"\nPDP winner by cap -> {winners}"
