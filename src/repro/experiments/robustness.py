"""Seed-robustness of the headline result (Table 1).

A reproduction whose claims hold for exactly one random seed proves
little.  This study reruns the Table-1 comparison across several
independent platform seeds (fresh sensor noise, workload noise, rank
imbalance draws) and reports mean ± range per metric — plus, more
importantly, how often each of the paper's qualitative claims held.

What the study finds (and the benchmark asserts):

1. the change-count reduction is rock-solid: two orders of magnitude
   in **every** seed at every fan level;
2. in the fan-limited regime (25 % cap) — the regime that motivates
   in-band help — tDVFS's power *and* power-delay wins hold in every
   seed;
3. at 50 % the power win is universal but the PDP margin is a
   statistical tie (±1 %, exactly the size of the paper's own
   single-run margin there);
4. at 75 % the behaviour bifurcates with noise: tDVFS either trims
   briefly (and wins) or correctly stays silent (and ties with stock
   operation) — the fan alone genuinely suffices there, which is the
   paper's own point about that operating regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.tables import Table
from ..runtime import DEFAULT_SEED, RunExecutor
from .table1_tdvfs_cpuspeed import CAPS, DAEMONS, Table1Result, build_result
from .table1_tdvfs_cpuspeed import specs as table1_specs

__all__ = [
    "MetricSummary",
    "RobustnessResult",
    "run",
    "render",
    "FULL_SEEDS",
    "QUICK_SEEDS",
]

#: Seeds used in full mode (the canonical one plus independent draws).
FULL_SEEDS = (DEFAULT_SEED, 101, 202, 303, 404)
QUICK_SEEDS = (DEFAULT_SEED, 101)


@dataclass
class MetricSummary:
    """Mean and range of one metric across seeds."""

    mean: float
    low: float
    high: float

    @classmethod
    def of(cls, values: List[float]) -> "MetricSummary":
        arr = np.asarray(values, dtype=float)
        return cls(mean=float(arr.mean()), low=float(arr.min()), high=float(arr.max()))


@dataclass
class RobustnessResult:
    """Aggregates over all seeds.

    Attributes
    ----------
    seeds:
        The seeds that ran.
    summaries:
        (daemon, cap, metric) → :class:`MetricSummary`, with metric in
        ``{"changes", "time", "power", "pdp"}``.
    claim_holds:
        Claim name → number of seeds in which it held.
    per_seed:
        The raw :class:`Table1Result` per seed (for drill-down).
    """

    seeds: Tuple[int, ...]
    summaries: Dict[Tuple[str, float, str], MetricSummary]
    claim_holds: Dict[str, int]
    per_seed: Dict[int, Table1Result]

    def summary(self, daemon: str, cap: float, metric: str) -> MetricSummary:
        """Look up one aggregated metric."""
        return self.summaries[(daemon, cap, metric)]

    @property
    def n_seeds(self) -> int:
        return len(self.seeds)


def _claims_for(result: Table1Result) -> Dict[str, bool]:
    """Evaluate the Table-1 claims on one run, split by regime."""
    changes_ok = all(
        result.cell("tdvfs", cap).freq_changes
        < 0.06 * result.cell("cpuspeed", cap).freq_changes
        for cap in CAPS
    )
    power_weak_fans = all(
        result.cell("tdvfs", cap).avg_power
        < result.cell("cpuspeed", cap).avg_power
        for cap in (0.50, 0.25)
    )
    pdp_at_25 = result.pdp_winner(0.25) == "tdvfs"
    pdp_tied_elsewhere = all(
        abs(
            result.cell("tdvfs", cap).power_delay_product
            - result.cell("cpuspeed", cap).power_delay_product
        )
        / result.cell("cpuspeed", cap).power_delay_product
        < 0.015
        for cap in (0.75, 0.50)
    )
    return {
        "changes_reduced_99pct": changes_ok,
        "power_win_at_weak_fans": power_weak_fans,
        "pdp_win_at_25pct": pdp_at_25,
        "pdp_within_1.5pct_at_50_75": pdp_tied_elsewhere,
    }


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> RobustnessResult:
    """Rerun Table 1 across seeds and aggregate.

    ``seed`` replaces the first entry of the seed set, so a caller can
    still steer the canonical run.  Every seed's Table-1 specs are
    flattened into one executor map, so a parallel executor overlaps
    runs across seeds, not just within one table.
    """
    base = QUICK_SEEDS if quick else FULL_SEEDS
    seeds = tuple(dict.fromkeys((seed,) + base[1:]))  # dedupe, keep order
    executor = executor if executor is not None else RunExecutor()
    flat = [spec for s in seeds for spec in table1_specs(seed=s, quick=quick)]
    results = executor.map(flat)
    width = len(flat) // len(seeds)
    per_seed: Dict[int, Table1Result] = {
        s: build_result(results[i * width : (i + 1) * width])
        for i, s in enumerate(seeds)
    }

    summaries: Dict[Tuple[str, float, str], MetricSummary] = {}
    for daemon in DAEMONS:
        for cap in CAPS:
            cells = [per_seed[s].cell(daemon, cap) for s in seeds]
            summaries[(daemon, cap, "changes")] = MetricSummary.of(
                [float(c.freq_changes) for c in cells]
            )
            summaries[(daemon, cap, "time")] = MetricSummary.of(
                [c.execution_time for c in cells]
            )
            summaries[(daemon, cap, "power")] = MetricSummary.of(
                [c.avg_power for c in cells]
            )
            summaries[(daemon, cap, "pdp")] = MetricSummary.of(
                [c.power_delay_product for c in cells]
            )

    claim_holds: Dict[str, int] = {}
    for result in per_seed.values():
        for claim, held in _claims_for(result).items():
            claim_holds[claim] = claim_holds.get(claim, 0) + int(held)

    return RobustnessResult(
        seeds=seeds,
        summaries=summaries,
        claim_holds=claim_holds,
        per_seed=per_seed,
    )


def render(result: RobustnessResult) -> str:
    """Text output for the robustness study."""
    table = Table(
        headers=[
            "daemon",
            "max PWM (%)",
            "changes (mean [min..max])",
            "time (s, mean)",
            "power (W, mean)",
            "PDP (W*s, mean)",
        ],
        title=(
            f"Table 1 across {result.n_seeds} independent seeds "
            f"{list(result.seeds)}"
        ),
    )
    for cap in CAPS:
        for daemon in DAEMONS:
            changes = result.summary(daemon, cap, "changes")
            table.add_row(
                daemon,
                f"{cap * 100:.0f}",
                f"{changes.mean:.0f} [{changes.low:.0f}..{changes.high:.0f}]",
                f"{result.summary(daemon, cap, 'time').mean:.1f}",
                f"{result.summary(daemon, cap, 'power').mean:.2f}",
                f"{result.summary(daemon, cap, 'pdp').mean:.0f}",
            )
    claims = "\n".join(
        f"  {name}: held in {count}/{result.n_seeds} seeds"
        for name, count in sorted(result.claim_holds.items())
    )
    return table.render() + "\nclaim robustness:\n" + claims
