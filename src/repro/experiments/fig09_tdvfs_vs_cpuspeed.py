"""Figure 9 — tDVFS vs CPUSPEED under a weak (25 %-capped) fan.

Protocol (paper §4.3): NPB BT.B.4; both daemons run on top of the
dynamic fan control with P_p = 50 and the maximum PWM duty capped at
25 % — deliberately too weak for the fan alone, so the in-band
technique *must* act.

Findings reproduced:

1. Under CPUSPEED the temperature **keeps climbing** through the run
   (the daemon chases utilization, not temperature).
2. Under tDVFS the temperature **stabilizes** after a small number of
   deliberate scale-downs (the paper's figure annotates
   2.4 → 2.2 → 2.0 GHz).

The "still climbing vs stabilized" contrast is quantified as the slope
of the temperature over the final quarter of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.rows import lookup_row
from ..analysis.tables import Table
from ..runtime import DEFAULT_SEED, Measure, RunExecutor, RunSpec

__all__ = [
    "Fig9Row",
    "Fig9Result",
    "DAEMONS",
    "specs",
    "run",
    "render",
    "MAX_DUTY",
]

MAX_DUTY = 0.25
DAEMONS = ("cpuspeed", "tdvfs")


@dataclass
class Fig9Row:
    """One daemon's outcome.

    Attributes
    ----------
    daemon:
        ``"cpuspeed"`` or ``"tdvfs"``.
    end_temp:
        Final-15 s mean, °C.
    max_temp:
        Peak, °C.
    late_slope:
        Final-quarter temperature slope, K/s (positive = still
        climbing).
    freq_changes:
        DVFS transition count (node 0).
    scaling_path:
        Frequencies adopted by deliberate tDVFS triggers (empty for
        CPUSPEED, whose changes are flapping, not a path).
    """

    daemon: str
    end_temp: float
    max_temp: float
    late_slope: float
    freq_changes: int
    scaling_path: List[float]


@dataclass
class Fig9Result:
    """Both daemons."""

    rows: List[Fig9Row]

    def row(self, daemon: str) -> Fig9Row:
        """The row for a given daemon name."""
        return lookup_row(self.rows, daemon=daemon)


def specs(seed: int = DEFAULT_SEED, quick: bool = False) -> List[RunSpec]:
    """One capped-fan BT.B.4 spec per in-band daemon."""
    iterations = 70 if quick else 200
    return [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[
                ("dynamic_fan", {"pp": 50, "max_duty": MAX_DUTY}),
                (daemon, {} if daemon == "cpuspeed" else {"pp": 50}),
            ],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for daemon in DAEMONS
    ]


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Fig9Result:
    """Run the Figure-9 comparison."""
    executor = executor if executor is not None else RunExecutor()
    results = executor.map(specs(seed=seed, quick=quick))
    rows: List[Fig9Row] = []
    for daemon, result in zip(DAEMONS, results):
        m = Measure(result)
        triggers = result.events.filter(
            category="tdvfs.trigger", source="node0"
        )
        rows.append(
            Fig9Row(
                daemon=daemon,
                end_temp=m.final_mean("temp", seconds=15.0),
                max_temp=m.peak("temp"),
                late_slope=m.late_slope("temp"),
                freq_changes=result.dvfs_change_count(0),
                scaling_path=[e.data["new_ghz"] for e in triggers],
            )
        )
    return Fig9Result(rows=rows)


def render(result: Fig9Result) -> str:
    """Paper-style text output for Figure 9."""
    table = Table(
        headers=[
            "daemon",
            "end T (degC)",
            "max T (degC)",
            "late slope (K/100s)",
            "# freq changes",
            "tDVFS path (GHz)",
        ],
        formats=[None, ".1f", ".1f", "+.2f", "d", None],
        title=(
            "Figure 9 reproduction: BT.B.4, dynamic fan capped at "
            f"{MAX_DUTY:.0%} duty"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.daemon,
            row.end_temp,
            row.max_temp,
            row.late_slope * 100,
            row.freq_changes,
            " -> ".join(f"{g:.1f}" for g in row.scaling_path) or "-",
        )
    return table.render()
