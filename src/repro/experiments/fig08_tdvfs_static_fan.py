"""Figure 8 — tDVFS coupled with the traditional (static) fan control.

Protocol (paper §4.3): NPB LU on 4 nodes (one MPI rank per node);
traditional fan control capped at 25 % PWM duty; tDVFS with the 51 °C
trigger threshold and P_p = 50.

Findings reproduced:

1. tDVFS scales down (2.4 → 2.2 GHz) only once the *average*
   temperature is consistently above the threshold — not on the first
   sample to cross it.
2. When the workload lightens and the average falls consistently below
   the threshold, tDVFS restores the original 2.4 GHz.
3. Short-term spikes (the paper's red-circled area) draw no response:
   the total change count stays at two (one down, one up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.tables import Table
from ..runtime import DEFAULT_SEED, Measure, RunExecutor, RunSpec

__all__ = [
    "Fig8Result",
    "specs",
    "run",
    "render",
    "MAX_DUTY",
    "THRESHOLD",
]

MAX_DUTY = 0.25
THRESHOLD = 51.0


@dataclass
class Fig8Result:
    """Outcome of the LU + traditional-fan + tDVFS run (node 0).

    Attributes
    ----------
    execution_time:
        Job wall time, s.
    freq_changes:
        Total DVFS transitions on node 0.
    trigger_time / restore_time:
        When the down-scale / restore happened (None if absent).
    trigger_ghz:
        Frequency adopted at the trigger.
    temp_at_trigger:
        Sensor reading at the trigger time, °C.
    max_temp / mean_temp:
        Over the run, °C.
    frequency_path:
        Ordered (time, GHz) DVFS trajectory of node 0.
    """

    execution_time: float
    freq_changes: int
    trigger_time: Optional[float]
    restore_time: Optional[float]
    trigger_ghz: Optional[float]
    temp_at_trigger: Optional[float]
    max_temp: float
    mean_temp: float
    frequency_path: List[Tuple[float, float]]


def specs(seed: int = DEFAULT_SEED, quick: bool = False) -> List[RunSpec]:
    """The single LU.A.4 + static-fan + tDVFS spec."""
    iterations = 90 if quick else 250
    return [
        RunSpec.of(
            "lu_a_4",
            {"iterations": iterations},
            rigs=[
                ("traditional_fan", {"max_duty": MAX_DUTY}),
                ("tdvfs", {"pp": 50, "threshold": THRESHOLD}),
            ],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
    ]


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Fig8Result:
    """Run the Figure-8 reproduction."""
    executor = executor if executor is not None else RunExecutor()
    (result,) = executor.map(specs(seed=seed, quick=quick))

    temp = Measure(result).trace("temp")
    triggers = result.events.filter(category="tdvfs.trigger", source="node0")
    restores = result.events.filter(category="tdvfs.restore", source="node0")
    changes = result.events.filter(category="dvfs.change", source="node0")

    trigger_time = triggers[0].time if triggers else None
    temp_at_trigger = None
    if trigger_time is not None:
        around = temp.window(trigger_time - 2.0, trigger_time + 2.0)
        temp_at_trigger = around.mean() if len(around) else None

    return Fig8Result(
        execution_time=result.execution_time,
        freq_changes=result.dvfs_change_count(0),
        trigger_time=trigger_time,
        restore_time=restores[0].time if restores else None,
        trigger_ghz=triggers[0].data["new_ghz"] if triggers else None,
        temp_at_trigger=temp_at_trigger,
        max_temp=temp.max(),
        mean_temp=temp.mean(),
        frequency_path=[(e.time, e.data["new_ghz"]) for e in changes],
    )


def render(result: Fig8Result) -> str:
    """Paper-style text output for Figure 8."""
    table = Table(
        headers=["quantity", "value"],
        title=(
            "Figure 8 reproduction: tDVFS + traditional fan (max duty "
            f"{MAX_DUTY:.0%}, threshold {THRESHOLD:.0f} degC, LU.A.4)"
        ),
    )
    table.add_row("execution time (s)", f"{result.execution_time:.1f}")
    table.add_row("freq changes", str(result.freq_changes))
    table.add_row(
        "scale-down",
        "none"
        if result.trigger_time is None
        else f"t={result.trigger_time:.0f}s -> {result.trigger_ghz:.1f} GHz "
        f"(T~{result.temp_at_trigger:.1f} degC)",
    )
    table.add_row(
        "restore",
        "none"
        if result.restore_time is None
        else f"t={result.restore_time:.0f}s -> 2.4 GHz",
    )
    table.add_row("mean / max T (degC)", f"{result.mean_temp:.1f} / {result.max_temp:.1f}")
    return table.render()
