"""Cluster-size scaling study — the paper's stated future work (§5).

*"In future work, we will study how our thermal controllers scale in a
large-scale clusters."*  This experiment does that on the simulated
testbed: a BT-like weak-scaled workload on 4 → 32 nodes, every node
under the §4.4 hybrid configuration, with a **rack thermal gradient**
(nodes higher in the rack ingest warmer air — the hot-spot formation
the paper's introduction motivates).

Questions answered:

1. Does per-node control stay effective as the cluster grows?  Metric:
   the hottest node's end temperature vs cluster size.
2. Does the thermal gradient translate into *coordinated* behaviour —
   hotter (top-of-rack) nodes triggering tDVFS earlier/deeper than
   cold-aisle nodes?
3. What is the cost — execution-time dilation from the hottest node
   gating the barriers?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.tables import Table
from ..thermal.ambient import ConstantAmbient
from ..workloads.npb import NpbJob, NpbParams
from .platform import DEFAULT_SEED, attach_hybrid, standard_cluster
from ..cluster.cluster import Cluster
from ..config import ClusterConfig

__all__ = [
    "ScalingRow",
    "ScalingResult",
    "run",
    "render",
    "RACK_GRADIENT",
]

#: Inlet temperature rise from rack bottom to top, K.
RACK_GRADIENT = 5.0


@dataclass
class ScalingRow:
    """Outcome at one cluster size.

    Attributes
    ----------
    n_nodes:
        Cluster size.
    execution_time:
        Job wall time, s.
    hottest_end_temp / coldest_end_temp:
        End temperature of the hottest and coldest node, °C.
    triggers:
        tDVFS triggers across the cluster.
    triggers_top_half / triggers_bottom_half:
        Trigger counts split by rack position — coordination shows as
        the warm top half triggering more.
    mean_power_per_node:
        Average wall power per node, W.
    """

    n_nodes: int
    execution_time: float
    hottest_end_temp: float
    coldest_end_temp: float
    triggers: int
    triggers_top_half: int
    triggers_bottom_half: int
    mean_power_per_node: float


@dataclass
class ScalingResult:
    """All cluster sizes, ascending."""

    rows: List[ScalingRow]

    def row(self, n_nodes: int) -> ScalingRow:
        """The row for a given cluster size."""
        for r in self.rows:
            if r.n_nodes == n_nodes:
                return r
        raise KeyError(f"no row for {n_nodes} nodes")


def _weak_scaled_bt(n_ranks: int, iterations: int, rng) -> NpbJob:
    """A BT-like job weak-scaled to ``n_ranks`` (same per-node work)."""
    params = NpbParams(
        name=f"BT-weak.{n_ranks}",
        n_ranks=n_ranks,
        iterations=iterations,
        compute_seconds=0.83,
        comm_seconds=0.22,
        comm_utilization=0.15,
    )
    return NpbJob(params, rng=rng)


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    sizes: Optional[List[int]] = None,
) -> ScalingResult:
    """Run the weak-scaling sweep."""
    if sizes is None:
        sizes = [4, 8] if quick else [4, 8, 16, 32]
    iterations = 50 if quick else 120
    rows: List[ScalingRow] = []
    for n in sizes:
        def rack_ambient(i: int, n=n):
            # Linear cold-aisle -> top-of-rack inlet gradient.
            frac = i / max(1, n - 1)
            return ConstantAmbient(28.0 + RACK_GRADIENT * frac)

        cluster = Cluster(
            ClusterConfig(n_nodes=n, seed=seed), ambient_factory=rack_ambient
        )
        attach_hybrid(cluster, pp=50, max_duty=0.50)
        job = _weak_scaled_bt(
            n, iterations, rng=cluster.rngs.stream("wl")
        ).build()
        result = cluster.run_job(job, timeout=3600)

        end = result.execution_time
        end_temps: Dict[int, float] = {}
        for i in range(n):
            temp = result.traces[f"node{i}.temp"]
            end_temps[i] = temp.window(end - 15.0, end).mean()
        triggers = result.events.filter(category="tdvfs.trigger")
        top = sum(
            1
            for e in triggers
            if int(e.source.split(".")[0].removeprefix("node")) >= n // 2
        )
        rows.append(
            ScalingRow(
                n_nodes=n,
                execution_time=result.execution_time,
                hottest_end_temp=max(end_temps.values()),
                coldest_end_temp=min(end_temps.values()),
                triggers=len(triggers),
                triggers_top_half=top,
                triggers_bottom_half=len(triggers) - top,
                mean_power_per_node=result.cluster_average_power,
            )
        )
    return ScalingResult(rows=rows)


def render(result: ScalingResult) -> str:
    """Text output for the scaling study."""
    table = Table(
        headers=[
            "nodes",
            "exec time (s)",
            "hottest end T (degC)",
            "coldest end T (degC)",
            "tDVFS triggers",
            "top half",
            "bottom half",
            "W/node",
        ],
        formats=["d", ".1f", ".1f", ".1f", "d", "d", "d", ".1f"],
        title=(
            "Scaling study (paper §5 future work): weak-scaled BT, hybrid "
            f"control, {RACK_GRADIENT:.0f} K rack inlet gradient"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.n_nodes,
            row.execution_time,
            row.hottest_end_temp,
            row.coldest_end_temp,
            row.triggers,
            row.triggers_top_half,
            row.triggers_bottom_half,
            row.mean_power_per_node,
        )
    return table.render()
