"""Cluster-size scaling study — the paper's stated future work (§5).

*"In future work, we will study how our thermal controllers scale in a
large-scale clusters."*  This experiment does that on the simulated
testbed: a BT-like weak-scaled workload on 4 → 32 nodes, every node
under the §4.4 hybrid configuration, with a **rack thermal gradient**
(nodes higher in the rack ingest warmer air — the hot-spot formation
the paper's introduction motivates).

Questions answered:

1. Does per-node control stay effective as the cluster grows?  Metric:
   the hottest node's end temperature vs cluster size.
2. Does the thermal gradient translate into *coordinated* behaviour —
   hotter (top-of-rack) nodes triggering tDVFS earlier/deeper than
   cold-aisle nodes?
3. What is the cost — execution-time dilation from the hottest node
   gating the barriers?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.rows import lookup_row
from ..analysis.tables import Table
from ..runtime import DEFAULT_SEED, Measure, RunExecutor, RunSpec

__all__ = [
    "ScalingRow",
    "ScalingResult",
    "specs",
    "run",
    "render",
    "RACK_GRADIENT",
]

#: Inlet temperature rise from rack bottom to top, K.
RACK_GRADIENT = 5.0


@dataclass
class ScalingRow:
    """Outcome at one cluster size.

    Attributes
    ----------
    n_nodes:
        Cluster size.
    execution_time:
        Job wall time, s.
    hottest_end_temp / coldest_end_temp:
        End temperature of the hottest and coldest node, °C.
    triggers:
        tDVFS triggers across the cluster.
    triggers_top_half / triggers_bottom_half:
        Trigger counts split by rack position — coordination shows as
        the warm top half triggering more.
    mean_power_per_node:
        Average wall power per node, W.
    """

    n_nodes: int
    execution_time: float
    hottest_end_temp: float
    coldest_end_temp: float
    triggers: int
    triggers_top_half: int
    triggers_bottom_half: int
    mean_power_per_node: float


@dataclass
class ScalingResult:
    """All cluster sizes, ascending."""

    rows: List[ScalingRow]

    def row(self, n_nodes: int) -> ScalingRow:
        """The row for a given cluster size."""
        return lookup_row(self.rows, n_nodes=n_nodes)


def _sizes(quick: bool, sizes: Optional[List[int]]) -> List[int]:
    if sizes is not None:
        return sizes
    return [4, 8] if quick else [4, 8, 16, 32]


def specs(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    sizes: Optional[List[int]] = None,
) -> List[RunSpec]:
    """One weak-scaled BT spec per cluster size, rack gradient applied."""
    iterations = 50 if quick else 120
    return [
        RunSpec.of(
            "bt_weak",
            {"n_ranks": n, "iterations": iterations},
            rigs=[("hybrid", {"pp": 50, "max_duty": 0.50})],
            n_nodes=n,
            seed=seed,
            ambient=("rack_gradient", {"base": 28.0, "gradient": RACK_GRADIENT}),
            quick=quick,
        )
        for n in _sizes(quick, sizes)
    ]


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    sizes: Optional[List[int]] = None,
    executor: Optional[RunExecutor] = None,
) -> ScalingResult:
    """Run the weak-scaling sweep."""
    sizes = _sizes(quick, sizes)
    executor = executor if executor is not None else RunExecutor()
    results = executor.map(specs(seed=seed, quick=quick, sizes=sizes))
    rows: List[ScalingRow] = []
    for n, result in zip(sizes, results):
        m = Measure(result)
        end_temps: Dict[int, float] = {
            i: m.final_mean("temp", seconds=15.0, node=i) for i in range(n)
        }
        triggers = result.events.filter(category="tdvfs.trigger")
        top = sum(
            1
            for e in triggers
            if int(e.source.split(".")[0].removeprefix("node")) >= n // 2
        )
        rows.append(
            ScalingRow(
                n_nodes=n,
                execution_time=result.execution_time,
                hottest_end_temp=max(end_temps.values()),
                coldest_end_temp=min(end_temps.values()),
                triggers=len(triggers),
                triggers_top_half=top,
                triggers_bottom_half=len(triggers) - top,
                mean_power_per_node=result.cluster_average_power,
            )
        )
    return ScalingResult(rows=rows)


def render(result: ScalingResult) -> str:
    """Text output for the scaling study."""
    table = Table(
        headers=[
            "nodes",
            "exec time (s)",
            "hottest end T (degC)",
            "coldest end T (degC)",
            "tDVFS triggers",
            "top half",
            "bottom half",
            "W/node",
        ],
        formats=["d", ".1f", ".1f", ".1f", "d", "d", "d", ".1f"],
        title=(
            "Scaling study (paper §5 future work): weak-scaled BT, hybrid "
            f"control, {RACK_GRADIENT:.0f} K rack inlet gradient"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.n_nodes,
            row.execution_time,
            row.hottest_end_temp,
            row.coldest_end_temp,
            row.triggers,
            row.triggers_top_half,
            row.triggers_bottom_half,
            row.mean_power_per_node,
        )
    return table.render()
