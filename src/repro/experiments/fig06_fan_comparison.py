"""Figure 6 — dynamic vs traditional vs constant fan control.

Protocol (paper §4.2): NPB BT.B on 4 nodes; maximum allowed fan speed
75 % for both the traditional and the dynamic method; the constant
policy pins 75 %.  P_p = 50 for the dynamic method.

Findings reproduced:

1. The dynamic method *proactively* raises the fan (its duty climbs
   past 45 % while the static map sits near 32 %), stabilizing the
   temperature sooner and lower than the traditional method.
2. Constant-75 % holds the lowest temperature of the three but draws
   the most power (cube-law fan cost + no idle exploitation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.metrics import stabilization_time
from ..analysis.rows import lookup_row
from ..analysis.tables import Table
from ..runtime import DEFAULT_SEED, Measure, RunExecutor, RunSpec

__all__ = [
    "Fig6Row",
    "Fig6Result",
    "POLICIES",
    "specs",
    "run",
    "render",
    "MAX_DUTY",
]

MAX_DUTY = 0.75
POLICIES = ("traditional", "dynamic", "constant")


@dataclass
class Fig6Row:
    """One fan policy's outcome on BT.B.4.

    Attributes
    ----------
    policy:
        ``"traditional"`` / ``"dynamic"`` / ``"constant"``.
    final_temp:
        Mean of the last 30 s, °C — the stabilized level.
    max_temp:
        Peak sensor reading, °C.
    stabilization:
        Time to settle within the band (s).
    mean_duty / late_duty:
        Mean duty over the run / over the second half (the "over 45 %
        vs 32 %" comparison uses the settled late duty).
    avg_power:
        Node wall power, W.
    """

    policy: str
    final_temp: float
    max_temp: float
    stabilization: float
    mean_duty: float
    late_duty: float
    avg_power: float


@dataclass
class Fig6Result:
    """All three fan policies."""

    rows: List[Fig6Row]

    def row(self, policy: str) -> Fig6Row:
        """The row for a given policy name."""
        return lookup_row(self.rows, policy=policy)


def _rig_for(policy: str):
    if policy == "traditional":
        return ("traditional_fan", {"max_duty": MAX_DUTY})
    if policy == "dynamic":
        return ("dynamic_fan", {"pp": 50, "max_duty": MAX_DUTY})
    return ("constant_fan", {"duty": MAX_DUTY})


def specs(seed: int = DEFAULT_SEED, quick: bool = False) -> List[RunSpec]:
    """One BT.B.4 spec per fan policy."""
    iterations = 60 if quick else 200
    return [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[_rig_for(policy)],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for policy in POLICIES
    ]


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Fig6Result:
    """Run the Figure-6 reproduction for all three fan policies."""
    executor = executor if executor is not None else RunExecutor()
    results = executor.map(specs(seed=seed, quick=quick))
    rows: List[Fig6Row] = []
    for policy, result in zip(POLICIES, results):
        m = Measure(result)
        rows.append(
            Fig6Row(
                policy=policy,
                final_temp=m.final_mean("temp"),
                max_temp=m.peak("temp"),
                stabilization=stabilization_time(m.trace("temp")),
                mean_duty=m.mean("duty"),
                late_duty=m.late_mean("duty"),
                avg_power=result.average_power[0],
            )
        )
    return Fig6Result(rows=rows)


def render(result: Fig6Result) -> str:
    """Paper-style text output for Figure 6."""
    table = Table(
        headers=[
            "fan policy",
            "final T (degC)",
            "max T (degC)",
            "stabilized at (s)",
            "mean duty (%)",
            "late duty (%)",
            "avg power (W)",
        ],
        formats=[None, ".1f", ".1f", ".1f", ".1f", ".1f", ".2f"],
        title=(
            "Figure 6 reproduction: BT.B.4 under three fan policies "
            f"(max duty {MAX_DUTY:.0%})"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.policy,
            row.final_temp,
            row.max_temp,
            row.stabilization,
            row.mean_duty * 100,
            row.late_duty * 100,
            row.avg_power,
        )
    return table.render()
