"""Fleet experiment: thermal capping under load imbalance + aisle fault.

The paper's coordinator distributes per-node performance preferences
``P_p`` so the cluster honours a power envelope; this experiment runs
that policy at *fleet* scale on the sharded engine
(:mod:`repro.fleet`).  Three scenarios over the same imbalanced
fleet — half the racks hot, half near-idle:

* **baseline** — no budget, hot-aisle containment intact;
* **capped** — a fleet-wide CPU power budget the coordinator tracks by
  retuning ``P_p`` each epoch (hot racks get leaned on harder);
* **capped+fault** — the same budget while rack 0's hot-aisle
  containment breaches mid-run, recirculating its exhaust into its
  neighbours' inlets.

The rendered table shows the tradeoff the coordinator navigates: the
cap trims fleet power at the cost of throttle events, and the fault
raises inlets (and therefore throttling) without breaking the cap.
Every scenario also re-runs sharded and asserts the
``shards=1 == shards=K`` bitwise gate — the experiment doubles as an
end-to-end determinism check on a realistic configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import SimulationError
from ..fleet import FleetFaultSpec, FleetSpec, run_fleet
from ..runtime.spec import DEFAULT_SEED

__all__ = ["FleetScenarioRow", "FleetCappingResult", "specs", "run", "render"]


@dataclass(frozen=True)
class FleetScenarioRow:
    """One scenario of the capping comparison."""

    label: str
    power_budget_w: Optional[float]
    faulted: bool
    mean_power_w: float
    peak_die_c: float
    max_inlet_c: float
    throttles: int
    cpu_energy_kj: float
    fan_energy_kj: float
    sharding_bitwise_equal: bool


@dataclass(frozen=True)
class FleetCappingResult:
    """All scenarios plus the shared fleet shape."""

    racks: int
    nodes_per_rack: int
    horizon_s: float
    rows: Tuple[FleetScenarioRow, ...]


def specs(
    seed: int = DEFAULT_SEED, quick: bool = False
) -> Tuple[Tuple[str, FleetSpec], ...]:
    """The three scenario specs, labelled."""
    racks = 4
    nodes = 4 if quick else 8
    horizon = 40.0 if quick else 120.0
    budget_per_node = 40.0
    budget = budget_per_node * racks * nodes
    base = dict(
        racks=racks,
        nodes_per_rack=nodes,
        horizon=horizon,
        seed=seed,
        workload="imbalance",
        quick=quick,
    )
    fault = FleetFaultSpec(rack=0, at=horizon / 3.0)
    return (
        ("baseline", FleetSpec(**base)),
        ("capped", FleetSpec(power_budget=budget, **base)),
        (
            "capped+fault",
            FleetSpec(power_budget=budget, fault=fault, **base),
        ),
    )


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: object = None,
) -> FleetCappingResult:
    """Run the three scenarios; verify the sharding gate on each.

    ``executor`` is accepted for CLI harness symmetry but unused — the
    fleet engine owns its own sharded process pool.
    """
    del executor
    rows: List[FleetScenarioRow] = []
    shape = None
    for label, spec in specs(seed=seed, quick=quick):
        reference = run_fleet(spec, shards=1)
        sharded = run_fleet(spec, shards=2)
        equal = reference.canonical_bytes() == sharded.canonical_bytes()
        if not equal:
            raise SimulationError(
                f"fleet scenario {label!r} broke the shards=1 == shards=2 "
                "bitwise gate"
            )
        mean_power = 0.0
        for _t, power, _max_die, _pp in reference.series:
            mean_power += power
        mean_power /= len(reference.series)
        max_inlet = max(rack.inlet_c for rack in reference.racks)
        rows.append(
            FleetScenarioRow(
                label=label,
                power_budget_w=spec.power_budget,
                faulted=spec.fault is not None,
                mean_power_w=mean_power,
                peak_die_c=reference.peak_die_c(),
                max_inlet_c=max_inlet,
                throttles=reference.total_throttles(),
                cpu_energy_kj=reference.total_cpu_energy_j() / 1e3,
                fan_energy_kj=reference.total_fan_energy_j() / 1e3,
                sharding_bitwise_equal=equal,
            )
        )
        shape = spec
    assert shape is not None
    return FleetCappingResult(
        racks=shape.racks,
        nodes_per_rack=shape.nodes_per_rack,
        horizon_s=shape.horizon,
        rows=tuple(rows),
    )


def render(result: FleetCappingResult) -> str:
    """Paper-style comparison table."""
    lines = [
        f"fleet {result.racks}x{result.nodes_per_rack} nodes, "
        f"{result.horizon_s:g} s horizon, imbalanced load "
        "(sharding gate verified per scenario)",
        "",
        f"{'scenario':<14} {'budget_W':>9} {'mean_W':>8} {'peak_C':>7} "
        f"{'inlet_C':>8} {'throttles':>9} {'cpu_kJ':>8} {'fan_kJ':>7}",
    ]
    for row in result.rows:
        budget = (
            f"{row.power_budget_w:.0f}"
            if row.power_budget_w is not None
            else "-"
        )
        lines.append(
            f"{row.label:<14} {budget:>9} {row.mean_power_w:>8.1f} "
            f"{row.peak_die_c:>7.2f} {row.max_inlet_c:>8.2f} "
            f"{row.throttles:>9} {row.cpu_energy_kj:>8.1f} "
            f"{row.fan_energy_kj:>7.2f}"
        )
    return "\n".join(lines)
