"""Thermal-emergency avoidance under fan failure (extension).

The paper's introduction motivates unified control with reliability:
*"high temperatures can trigger thermal emergencies in a server that
will slow or shut down the system"*, and its related work repeatedly
cites fan failure as the triggering event (Choi et al., Heath et al.).
The evaluation never injects one — this experiment does.

Protocol: a 4-node cluster runs a long BT-class job; at ``fail_time``
node 0's fan seizes (the rotor coasts to a stop; PWM commands are
ignored).  Hardware protection is realistic: PROCHOT forces the slowest
P-state at 85 °C and THERMTRIP powers the node off at 97 °C.  Three
control strategies face the event:

* **stock** — the hardware's static fan curve only (no OS thermal
  daemon).  The only thing between the node and THERMTRIP is PROCHOT.
* **ondemand** — the kernel's utilization governor: smarter frequency
  selection than CPUSPEED but *no temperature input at all*, so it
  keeps the dead-fan node at full speed and rides into the hardware
  clamp just like stock.
* **cpuspeed** — the utilization daemon with its crude temperature
  limit, on top of the stock curve.
* **unified** — the paper's hybrid: dynamic fan + tDVFS under one
  policy.  tDVFS walks deliberately down the frequency ladder as the
  dead-fan plant heats, staying ahead of the hardware clamp.

Metrics: PROCHOT assertions, THERMTRIP (availability loss), peak
temperature, and gigacycles retired on the failed node — how much
*work* each strategy salvaged over the fixed horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.tables import Table
from ..analysis.thermal_stats import degree_seconds_above
from ..core.policy import Policy
from ..governors.cpuspeed import CpuSpeed
from ..governors.fan_traditional import TraditionalFanControl
from ..governors.hybrid import hybrid_governors
from ..governors.ondemand import Ondemand
from ..workloads.npb import NpbJob, NpbParams
from .platform import DEFAULT_SEED, standard_cluster

__all__ = [
    "EmergencyRow",
    "EmergencyResult",
    "run",
    "render",
    "STRATEGIES",
    "STRESS_THRESHOLD",
]

STRATEGIES = ("stock", "ondemand", "cpuspeed", "unified")

#: Temperature above which exposure is counted as thermal stress.
STRESS_THRESHOLD = 70.0


@dataclass
class EmergencyRow:
    """One strategy's outcome on the fan-failure scenario (node 0).

    Attributes
    ----------
    strategy:
        ``"stock"`` / ``"cpuspeed"`` / ``"unified"``.
    prochot_count:
        Hardware thermal-throttle assertions.
    thermtrip:
        Whether the node powered off.
    max_temp:
        Peak die temperature, °C.
    retired_gcycles:
        Work retired on node 0 over the horizon, 1e9 cycles.
    tdvfs_triggers:
        Deliberate in-band scale-downs (unified only).
    final_ghz:
        Frequency at the end of the horizon.
    stress_ks:
        Degree-seconds above the 70 °C stress threshold, K·s — the
        reliability-exposure integral.
    """

    strategy: str
    prochot_count: int
    thermtrip: bool
    max_temp: float
    retired_gcycles: float
    tdvfs_triggers: int
    final_ghz: float
    stress_ks: float


@dataclass
class EmergencyResult:
    """All strategies on the identical failure scenario."""

    rows: List[EmergencyRow]
    fail_time: float
    horizon: float

    def row(self, strategy: str) -> EmergencyRow:
        """The row for a given strategy."""
        for r in self.rows:
            if r.strategy == strategy:
                return r
        raise KeyError(f"no row for strategy {strategy!r}")


def _long_job(cluster, horizon: float):
    """A BT-class job guaranteed to outlast the horizon."""
    iterations = int(horizon / 1.0) + 100
    params = NpbParams(
        name="BT-long",
        n_ranks=4,
        iterations=iterations,
        compute_seconds=0.83,
        comm_seconds=0.22,
    )
    return NpbJob(params, rng=cluster.rngs.stream("wl")).build()


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    fail_time: float = 40.0,
) -> EmergencyResult:
    """Run the fan-failure scenario under all three strategies."""
    horizon = 180.0 if quick else 420.0
    rows: List[EmergencyRow] = []
    for strategy in STRATEGIES:
        cluster = standard_cluster(n_nodes=4, seed=seed)
        for node in cluster.nodes:
            if strategy == "stock":
                cluster.add_governor(
                    node, TraditionalFanControl(node.make_fan_driver())
                )
            elif strategy == "ondemand":
                cluster.add_governor(
                    node, TraditionalFanControl(node.make_fan_driver())
                )
                cluster.add_governor(
                    node, Ondemand(node.core, events=cluster.events)
                )
            elif strategy == "cpuspeed":
                cluster.add_governor(
                    node, TraditionalFanControl(node.make_fan_driver())
                )
                cluster.add_governor(
                    node, CpuSpeed(node.core, events=cluster.events)
                )
            else:
                cluster.add_governor(
                    node,
                    hybrid_governors(
                        node, Policy(pp=50), max_duty=1.0, events=cluster.events
                    ),
                )
        cluster.bind_job(_long_job(cluster, horizon))
        victim = cluster.nodes[0]
        cluster.run_for(fail_time)
        victim.fail_fan(t=cluster.engine.clock.now)
        cluster.run_for(horizon - fail_time)

        temp = cluster.traces["node0.temp"]
        freq = cluster.traces["node0.freq_ghz"]
        rows.append(
            EmergencyRow(
                strategy=strategy,
                prochot_count=cluster.events.count(
                    "hw.prochot.assert", source="node0"
                ),
                thermtrip=victim.is_shutdown,
                max_temp=temp.max(),
                retired_gcycles=victim.core.retired_cycles / 1e9,
                tdvfs_triggers=cluster.events.count(
                    "tdvfs.trigger", source="node0"
                ),
                final_ghz=float(freq.values[-1]),
                stress_ks=degree_seconds_above(temp, STRESS_THRESHOLD)
                / 1000.0,
            )
        )
    return EmergencyResult(rows=rows, fail_time=fail_time, horizon=horizon)


def render(result: EmergencyResult) -> str:
    """Text output for the emergency experiment."""
    table = Table(
        headers=[
            "strategy",
            "PROCHOT asserts",
            "THERMTRIP",
            "max T (degC)",
            f"stress >={STRESS_THRESHOLD:.0f}C (kK*s)",
            "retired Gcycles",
            "tDVFS triggers",
            "final freq (GHz)",
        ],
        formats=[None, "d", None, ".1f", ".2f", ".1f", "d", ".1f"],
        title=(
            "Thermal-emergency avoidance: node0 fan fails at "
            f"t={result.fail_time:.0f}s (horizon {result.horizon:.0f}s)"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.strategy,
            row.prochot_count,
            "YES" if row.thermtrip else "no",
            row.max_temp,
            row.stress_ks,
            row.retired_gcycles,
            row.tdvfs_triggers,
            row.final_ghz,
        )
    return table.render()
