"""Thermal-emergency avoidance under fan failure (extension).

The paper's introduction motivates unified control with reliability:
*"high temperatures can trigger thermal emergencies in a server that
will slow or shut down the system"*, and its related work repeatedly
cites fan failure as the triggering event (Choi et al., Heath et al.).
The evaluation never injects one — this experiment does.

Protocol: a 4-node cluster runs a long BT-class job; at ``fail_time``
node 0's fan seizes (the rotor coasts to a stop; PWM commands are
ignored).  Hardware protection is realistic: PROCHOT forces the slowest
P-state at 85 °C and THERMTRIP powers the node off at 97 °C.  Three
control strategies face the event:

* **stock** — the hardware's static fan curve only (no OS thermal
  daemon).  The only thing between the node and THERMTRIP is PROCHOT.
* **ondemand** — the kernel's utilization governor: smarter frequency
  selection than CPUSPEED but *no temperature input at all*, so it
  keeps the dead-fan node at full speed and rides into the hardware
  clamp just like stock.
* **cpuspeed** — the utilization daemon with its crude temperature
  limit, on top of the stock curve.
* **unified** — the paper's hybrid: dynamic fan + tDVFS under one
  policy.  tDVFS walks deliberately down the frequency ladder as the
  dead-fan plant heats, staying ahead of the hardware clamp.

Metrics: PROCHOT assertions, THERMTRIP (availability loss), peak
temperature, and gigacycles retired on the failed node — how much
*work* each strategy salvaged over the fixed horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.rows import lookup_row
from ..analysis.tables import Table
from ..analysis.thermal_stats import degree_seconds_above
from ..runtime import DEFAULT_SEED, FaultSpec, Measure, RunExecutor, RunSpec

__all__ = [
    "EmergencyRow",
    "EmergencyResult",
    "specs",
    "run",
    "render",
    "STRATEGIES",
    "STRESS_THRESHOLD",
]

STRATEGIES = ("stock", "ondemand", "cpuspeed", "unified")

#: Temperature above which exposure is counted as thermal stress.
STRESS_THRESHOLD = 70.0


@dataclass
class EmergencyRow:
    """One strategy's outcome on the fan-failure scenario (node 0).

    Attributes
    ----------
    strategy:
        ``"stock"`` / ``"cpuspeed"`` / ``"unified"``.
    prochot_count:
        Hardware thermal-throttle assertions.
    thermtrip:
        Whether the node powered off.
    max_temp:
        Peak die temperature, °C.
    retired_gcycles:
        Work retired on node 0 over the horizon, 1e9 cycles.
    tdvfs_triggers:
        Deliberate in-band scale-downs (unified only).
    final_ghz:
        Frequency at the end of the horizon.
    stress_ks:
        Degree-seconds above the 70 °C stress threshold, K·s — the
        reliability-exposure integral.
    """

    strategy: str
    prochot_count: int
    thermtrip: bool
    max_temp: float
    retired_gcycles: float
    tdvfs_triggers: int
    final_ghz: float
    stress_ks: float


@dataclass
class EmergencyResult:
    """All strategies on the identical failure scenario."""

    rows: List[EmergencyRow]
    fail_time: float
    horizon: float

    def row(self, strategy: str) -> EmergencyRow:
        """The row for a given strategy."""
        return lookup_row(self.rows, strategy=strategy)


def _rigs_for(strategy: str):
    if strategy == "stock":
        return ["traditional_fan"]
    if strategy == "ondemand":
        return ["traditional_fan", "ondemand"]
    if strategy == "cpuspeed":
        return ["traditional_fan", "cpuspeed"]
    return [("hybrid", {"pp": 50, "max_duty": 1.0})]


def specs(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    fail_time: float = 40.0,
) -> List[RunSpec]:
    """One fault-injected spec per strategy, identical scenarios."""
    horizon = 180.0 if quick else 420.0
    return [
        RunSpec.of(
            "bt_long",
            {"horizon": horizon},
            rigs=_rigs_for(strategy),
            n_nodes=4,
            seed=seed,
            fault=FaultSpec(
                kind="fan_fail", node=0, at=fail_time, horizon=horizon
            ),
            quick=quick,
        )
        for strategy in STRATEGIES
    ]


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    fail_time: float = 40.0,
    executor: Optional[RunExecutor] = None,
) -> EmergencyResult:
    """Run the fan-failure scenario under all four strategies."""
    horizon = 180.0 if quick else 420.0
    executor = executor if executor is not None else RunExecutor()
    results = executor.map(specs(seed=seed, quick=quick, fail_time=fail_time))
    rows: List[EmergencyRow] = []
    for strategy, result in zip(STRATEGIES, results):
        m = Measure(result)
        temp = m.trace("temp")
        rows.append(
            EmergencyRow(
                strategy=strategy,
                prochot_count=result.events.count(
                    "hw.prochot.assert", source="node0"
                ),
                thermtrip=result.node_shutdown[0],
                max_temp=temp.max(),
                retired_gcycles=result.retired_cycles[0] / 1e9,
                tdvfs_triggers=result.events.count(
                    "tdvfs.trigger", source="node0"
                ),
                final_ghz=float(m.trace("freq_ghz").values[-1]),
                stress_ks=degree_seconds_above(temp, STRESS_THRESHOLD)
                / 1000.0,
            )
        )
    return EmergencyResult(rows=rows, fail_time=fail_time, horizon=horizon)


def render(result: EmergencyResult) -> str:
    """Text output for the emergency experiment."""
    table = Table(
        headers=[
            "strategy",
            "PROCHOT asserts",
            "THERMTRIP",
            "max T (degC)",
            f"stress >={STRESS_THRESHOLD:.0f}C (kK*s)",
            "retired Gcycles",
            "tDVFS triggers",
            "final freq (GHz)",
        ],
        formats=[None, "d", None, ".1f", ".2f", ".1f", "d", ".1f"],
        title=(
            "Thermal-emergency avoidance: node0 fan fails at "
            f"t={result.fail_time:.0f}s (horizon {result.horizon:.0f}s)"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.strategy,
            row.prochot_count,
            "YES" if row.thermtrip else "no",
            row.max_temp,
            row.stress_ks,
            row.retired_gcycles,
            row.tdvfs_triggers,
            row.final_ghz,
        )
    return table.render()
