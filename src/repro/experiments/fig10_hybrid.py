"""Figure 10 — hybrid dynamic fan + tDVFS under one shared P_p.

Protocol (paper §4.4): NPB BT.B on 4 nodes; both the dynamic fan
control and tDVFS parameterized by the *same* P_p ∈ {25, 50, 75};
maximum PWM duty 50 %; trigger threshold 51 °C.

Findings reproduced:

1. Smaller P_p controls temperature more effectively (lower mean/end
   temperatures).
2. **Coordination**: the smaller P_p is, the *later* tDVFS is
   triggered — the aggressive fan keeps the plant below threshold
   longer, deferring the in-band cost.
3. Smaller P_p scales *deeper* when it does trigger (the paper
   annotates 2.4 → 2.0 GHz for P_p = 25) and pays the longest
   execution time — yet the spread between P_p = 25 and 75 stays small
   (paper: 4.76 %), i.e. aggressive thermal control with minimal
   performance impact.

Trigger times and depths are collected across *all* nodes (the paper's
plot shows the cluster's processor temperature; any node's trigger
marks the coordination behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.rows import lookup_row
from ..analysis.tables import Table
from ..runtime import DEFAULT_SEED, Measure, RunExecutor, RunSpec

__all__ = [
    "Fig10Row",
    "Fig10Result",
    "specs",
    "run",
    "render",
    "MAX_DUTY",
    "PPS",
]

MAX_DUTY = 0.50
PPS = (25, 50, 75)


@dataclass
class Fig10Row:
    """One shared-P_p configuration.

    Attributes
    ----------
    pp:
        The shared policy value.
    execution_time:
        Job wall time, s.
    mean_temp / end_temp:
        Node-0 temperatures, °C.
    first_trigger:
        Earliest tDVFS trigger across all nodes, s (None if never).
    min_ghz:
        Deepest frequency adopted by any node's tDVFS.
    restores:
        Number of restore events across nodes.
    """

    pp: int
    execution_time: float
    mean_temp: float
    end_temp: float
    first_trigger: Optional[float]
    min_ghz: float
    restores: int


@dataclass
class Fig10Result:
    """All three shared policies."""

    rows: List[Fig10Row]

    def row(self, pp: int) -> Fig10Row:
        """The row for a given P_p."""
        return lookup_row(self.rows, pp=pp)

    @property
    def performance_spread(self) -> float:
        """Relative execution-time gap between P_p=25 and P_p=75."""
        t25 = self.row(25).execution_time
        t75 = self.row(75).execution_time
        return (t25 - t75) / t75


def specs(seed: int = DEFAULT_SEED, quick: bool = False) -> List[RunSpec]:
    """One hybrid BT.B.4 spec per shared P_p."""
    iterations = 70 if quick else 200
    return [
        RunSpec.of(
            "bt_b_4",
            {"iterations": iterations},
            rigs=[("hybrid", {"pp": pp, "max_duty": MAX_DUTY})],
            n_nodes=4,
            seed=seed,
            quick=quick,
        )
        for pp in PPS
    ]


def run(
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    executor: Optional[RunExecutor] = None,
) -> Fig10Result:
    """Run the Figure-10 sweep over shared P_p values."""
    executor = executor if executor is not None else RunExecutor()
    results = executor.map(specs(seed=seed, quick=quick))
    rows: List[Fig10Row] = []
    for pp, result in zip(PPS, results):
        m = Measure(result)
        triggers = result.events.filter(category="tdvfs.trigger")
        restores = result.events.filter(category="tdvfs.restore")
        rows.append(
            Fig10Row(
                pp=pp,
                execution_time=result.execution_time,
                mean_temp=m.mean("temp"),
                end_temp=m.final_mean("temp", seconds=15.0),
                first_trigger=triggers[0].time if triggers else None,
                min_ghz=min(
                    (e.data["new_ghz"] for e in triggers), default=2.4
                ),
                restores=len(restores),
            )
        )
    return Fig10Result(rows=rows)


def render(result: Fig10Result) -> str:
    """Paper-style text output for Figure 10."""
    table = Table(
        headers=[
            "P_p",
            "exec time (s)",
            "mean T (degC)",
            "end T (degC)",
            "first tDVFS trigger (s)",
            "deepest freq (GHz)",
            "restores",
        ],
        formats=["d", ".1f", ".1f", ".1f", None, ".1f", "d"],
        title=(
            "Figure 10 reproduction: hybrid fan+tDVFS, shared P_p, max duty "
            f"{MAX_DUTY:.0%} (P_p=25 vs 75 exec spread: "
            f"{result.performance_spread * 100:+.1f} %)"
        ),
    )
    for row in result.rows:
        table.add_row(
            row.pp,
            row.execution_time,
            row.mean_temp,
            row.end_temp,
            "never" if row.first_trigger is None else f"{row.first_trigger:.0f}",
            row.min_ghz,
            row.restores,
        )
    return table.render()
