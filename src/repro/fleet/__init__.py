"""``repro.fleet``: sharded fleet-scale simulation with deterministic
boundary exchange.

One coupled fleet — racks of nodes sharing a hot aisle, per-rack fan
walls, a fleet coordinator distributing ``P_p`` budgets — partitioned
across worker processes by rack.  Cross-rack state is exchanged only
at fixed synchronization epochs, which makes the computation rack-local
in between and the full result **bitwise independent of the shard
count**: ``run_fleet(spec, shards=1)`` and ``run_fleet(spec, shards=K)``
produce identical :meth:`~repro.fleet.engine.FleetResult.canonical_bytes`.

See ``docs/fleet.md`` for the topology schema, the epoch exchange
protocol and the determinism argument.
"""

from __future__ import annotations

from .coordinator import FleetCoordinator, recirculation_weights
from .engine import FleetResult, partition_racks, run_fleet
from .shard import NodeFinal, RackFinal, RackReport, ShardResult, ShardRunner
from .spec import FLEET_WORKLOADS, FleetFaultSpec, FleetSpec

__all__ = [
    "FLEET_WORKLOADS",
    "FleetCoordinator",
    "FleetFaultSpec",
    "FleetResult",
    "FleetSpec",
    "NodeFinal",
    "RackFinal",
    "RackReport",
    "ShardResult",
    "ShardRunner",
    "partition_racks",
    "recirculation_weights",
    "run_fleet",
]
