"""Shard execution: a contiguous rack range stepped in lockstep.

A :class:`ShardRunner` owns racks ``[rack_lo, rack_hi)`` of one fleet
and advances *all* of its nodes through one
:class:`~repro.fastpath.batch.BatchedRC` — the structure-of-arrays
stepper whose per-member bitwise-equivalence contract is exactly what
makes the partition a pure layout choice.  Between two synchronization
epochs a shard touches nothing but its own racks, so the trajectory of
rack *r* is a function of ``(spec, r, epoch commands)`` — never of
which shard (or how many shards) hosted it.

The process protocol is deliberately tiny and synchronous (BSP):

* ``("epoch", inlets, pps, n_ticks)`` → ``("reports", [RackReport])``
* ``("finish",)`` → ``("result", ShardResult)``
* ``("stop",)`` → worker exits

Workers rebuild their world from the spec's JSON wire form, so the
protocol works identically under fork and spawn start methods, and no
parent-side mutable state can leak into a worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import SimulationError
from ..fastpath.batch import BatchedRC
from ..telemetry import MetricsRegistry, TelemetrySnapshot
from .model import FleetRack, build_rack, node_band
from .spec import FleetSpec

__all__ = [
    "NodeFinal",
    "RackFinal",
    "RackReport",
    "ShardResult",
    "ShardRunner",
    "shard_worker",
]


@dataclass(frozen=True)
class RackReport:
    """One rack's epoch-boundary summary, shipped to the coordinator."""

    rack: int
    outlet_c: float
    mean_power_w: float
    max_die_c: float
    throttles: int
    duty: float


@dataclass(frozen=True)
class NodeFinal:
    """One node's end-of-run accumulators."""

    rack: int
    node: int
    final_die_c: float
    final_sink_c: float
    max_die_c: float
    energy_j: float
    pstate_index: int
    throttles: int


@dataclass(frozen=True)
class RackFinal:
    """One rack's end-of-run accumulators."""

    rack: int
    inlet_c: float
    duty: float
    fan_energy_j: float


@dataclass(frozen=True)
class ShardResult:
    """Everything a shard returns at ``finish`` (picklable primitives)."""

    rack_lo: int
    rack_hi: int
    nodes: Tuple[NodeFinal, ...]
    racks: Tuple[RackFinal, ...]
    telemetry: TelemetrySnapshot


class ShardRunner:
    """Advance racks ``[rack_lo, rack_hi)`` of ``spec`` in lockstep.

    The runner keeps one *global* tick counter so control-tick and
    epoch alignment are properties of the fleet schedule, not of the
    shard: every shard sees the same tick indices for the same wall of
    simulated time.
    """

    def __init__(self, spec: FleetSpec, rack_lo: int, rack_hi: int) -> None:
        if not 0 <= rack_lo < rack_hi <= spec.racks:
            raise SimulationError(
                f"shard rack range [{rack_lo}, {rack_hi}) is outside the "
                f"{spec.racks}-rack fleet"
            )
        self.spec = spec
        self.rack_lo = rack_lo
        self.rack_hi = rack_hi
        self.registry = MetricsRegistry()
        self.racks: List[FleetRack] = [
            build_rack(spec, r) for r in range(rack_lo, rack_hi)
        ]
        self._band = node_band(spec)
        self._batch = BatchedRC(
            [node.compiled for rack in self.racks for node in rack.nodes]
        )
        self._tick = 0
        self._throttles_reported = [0] * len(self.racks)

    def run_epoch(
        self,
        inlets: Tuple[float, ...],
        pps: Tuple[float, ...],
        n_ticks: int,
    ) -> List[RackReport]:
        """Advance ``n_ticks`` under frozen epoch commands; report racks.

        ``inlets[k]`` / ``pps[k]`` address this shard's k-th rack (the
        engine slices the fleet-wide vectors before dispatch).
        """
        spec = self.spec
        racks = self.racks
        if len(inlets) != len(racks) or len(pps) != len(racks):
            raise SimulationError(
                f"epoch command length {len(inlets)}/{len(pps)} does not "
                f"match the shard's {len(racks)} racks"
            )
        for rack, inlet, pp in zip(racks, inlets, pps):
            rack.begin_epoch(inlet, pp)
        dt = spec.dt
        control_ticks = spec.control_ticks
        batch = self._batch
        for _ in range(n_ticks):
            tick = self._tick
            if tick % control_ticks == 0:
                t = tick * dt
                for rack in racks:
                    rack.control_step(spec, t, self._band)
            for rack in racks:
                rack.tick(dt)
            batch.step(dt)
            self._tick += 1
            for rack in racks:
                for node in rack.nodes:
                    node.observe()
        reports: List[RackReport] = []
        for k, rack in enumerate(racks):
            throttles = sum(node.throttles for node in rack.nodes)
            delta = throttles - self._throttles_reported[k]
            self._throttles_reported[k] = throttles
            label = f"{rack.index:03d}"
            self.registry.counter(
                "fleet.shard.node_ticks", rack=label
            ).inc(len(rack.nodes) * n_ticks)
            if delta:
                self.registry.counter(
                    "fleet.shard.throttles", rack=label
                ).inc(delta)
            self.registry.gauge("fleet.rack.duty", rack=label).set(rack.duty)
            reports.append(
                RackReport(
                    rack=rack.index,
                    outlet_c=rack.outlet_c(),
                    mean_power_w=rack.mean_power_w(),
                    max_die_c=rack.max_die_c(),
                    throttles=throttles,
                    duty=rack.duty,
                )
            )
        return reports

    def finish(self) -> ShardResult:
        """Detach the batch and freeze the shard's final state."""
        self._batch.release()
        nodes: List[NodeFinal] = []
        racks: List[RackFinal] = []
        for rack in self.racks:
            for node in rack.nodes:
                nodes.append(
                    NodeFinal(
                        rack=rack.index,
                        node=node.index,
                        final_die_c=node.package.die_temperature,
                        final_sink_c=node.package.sink_temperature,
                        max_die_c=node.max_die_c,
                        energy_j=node.energy_j,
                        pstate_index=node.pstate,
                        throttles=node.throttles,
                    )
                )
            racks.append(
                RackFinal(
                    rack=rack.index,
                    inlet_c=rack.inlet_c,
                    duty=rack.duty,
                    fan_energy_j=rack.fan_energy_j,
                )
            )
        return ShardResult(
            rack_lo=self.rack_lo,
            rack_hi=self.rack_hi,
            nodes=tuple(nodes),
            racks=tuple(racks),
            telemetry=self.registry.snapshot(),
        )


def shard_worker(conn, spec_json: str, rack_lo: int, rack_hi: int) -> None:
    """Worker-process main loop: build from the wire form, serve epochs.

    Any exception is shipped back as ``("error", message)`` so the
    engine can raise a :class:`~repro.errors.SimulationError` with the
    shard identified instead of hanging on a dead pipe.
    """
    try:
        runner = ShardRunner(FleetSpec.from_json(spec_json), rack_lo, rack_hi)
        while True:
            message = conn.recv()
            command = message[0]
            if command == "epoch":
                _, inlets, pps, n_ticks = message
                conn.send(("reports", runner.run_epoch(inlets, pps, n_ticks)))
            elif command == "finish":
                conn.send(("result", runner.finish()))
            elif command == "stop":
                break
            else:
                conn.send(("error", f"unknown shard command {command!r}"))
                break
    except EOFError:
        pass
    except Exception as exc:  # pragma: no cover - transport of failures
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, BrokenPipeError):
            pass
    finally:
        conn.close()
