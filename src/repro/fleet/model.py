"""Rack-local fleet physics: nodes, fan walls and workload profiles.

Everything in this module is *rack-local*: a :class:`FleetNode` couples
to the world only through its own inlet-air boundary node, and a
:class:`FleetRack` aggregates its nodes behind one shared fan wall.
Nothing here reads another rack's state — cross-rack coupling happens
exclusively through the epoch exchange in
:mod:`repro.fleet.coordinator`.  That locality is the determinism
argument in miniature: any contiguous set of racks produces bitwise
the same trajectories no matter which worker process hosts it.

Workload profiles are pure functions ``u(rack, node, t)`` of the spec —
phase offsets come from integer hashing of ``(seed, rack, node)``, not
from a sequenced RNG, so there is no draw-order to get wrong when the
fleet is partitioned.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..cpu.power import CpuPowerModel, PowerParams
from ..cpu.pstate import ATHLON64_4000, PStateTable
from ..fan.aero import FanAero
from ..fastpath.rc import CompiledRC, compile_network
from ..platform.registry import resolve_platform
from ..thermal.package import CpuPackage
from .spec import FleetSpec

__all__ = [
    "AIR_W_PER_CFM_K",
    "FleetNode",
    "FleetRack",
    "build_rack",
    "node_band",
    "utilization",
]

#: Heat carried per CFM of rack airflow per kelvin of rise, W/(CFM·K).
#: Standard-density air: outlet rise ΔT = P_rack / (this · total CFM).
AIR_W_PER_CFM_K = 0.566

#: Fan-wall duty band and proportional gain (per control tick, per K of
#: rack hot-spot error against the ``t_max - headroom`` target).
_DUTY_MIN = 0.15
_INITIAL_DUTY = 0.35
_DUTY_GAIN = 0.004
_FAN_HEADROOM_K = 6.0

#: DVFS release hysteresis below the trigger temperature, K.
_HYSTERESIS_K = 2.0

#: Knuth multiplicative constant + small primes: the integer mix that
#: turns (seed, rack, node) into a stable per-node phase in [0, 1).
_MIX_A = 2654435761
_MIX_RACK = 40503
_MIX_NODE = 9973
_MIX_MOD = 100003


def node_band(spec: FleetSpec) -> Tuple[PStateTable, PowerParams, float, float]:
    """The DVFS ladder, power constants and safe band the fleet's nodes run.

    ``platform=None`` is the paper's Athlon64 testbed.  A named platform
    contributes its *lead-class* ladder and power constants (the DVFS
    domain governors actuate) plus its safe band; the fleet node model
    stays the single die/sink package — the node is the unit here, not
    the core.
    """
    if spec.platform is None:
        return ATHLON64_4000, PowerParams(), 38.0, 82.0
    plat = resolve_platform(spec.platform)
    lead = plat.lead_class
    return lead.table(), lead.power, plat.t_min, plat.t_max


def _phase(seed: int, rack: int, node: int) -> float:
    """Stable per-node phase offset in [0, 1) by pure integer mixing."""
    mixed = (seed * _MIX_A + rack * _MIX_RACK + node * _MIX_NODE) % _MIX_MOD
    return mixed / _MIX_MOD


def utilization(spec: FleetSpec, rack: int, node: int, t: float) -> float:
    """Workload profile: CPU utilization of ``(rack, node)`` at time ``t``.

    A pure function of the spec — evaluated at control ticks, piecewise
    constant in between.  Profiles:

    ``uniform``
        Every node at ``u`` (default 0.85) plus a small per-node offset.
    ``imbalance``
        The first ``hot_racks`` racks run ``u_hot`` (default 0.95), the
        rest ``u_cold`` (default 0.30) — the load-imbalance scenario the
        coordinator's hierarchical capping is exercised against.
    ``wave``
        A fleet-wide sinusoid ``u_mid ± u_amp`` with per-node phase, so
        demand migrates across the fleet over each ``period``.
    """
    params = dict(spec.workload_params)
    phase = _phase(spec.seed, rack, node)
    if spec.workload == "uniform":
        u = float(params.get("u", 0.85)) + 0.04 * (phase - 0.5)
    elif spec.workload == "imbalance":
        hot_racks = int(params.get("hot_racks", (spec.racks + 1) // 2))
        hot = rack < hot_racks
        u = float(params.get("u_hot", 0.95)) if hot else float(
            params.get("u_cold", 0.30)
        )
        u += 0.04 * (phase - 0.5)
    else:  # "wave" — spec validation admits nothing else
        period = float(params.get("period", 60.0))
        u_mid = float(params.get("u_mid", 0.60))
        u_amp = float(params.get("u_amp", 0.35))
        u = u_mid + u_amp * math.sin(2.0 * math.pi * (t / period + phase))
    return min(1.0, max(0.0, u))


class FleetNode:
    """One server: a die/sink package, its DVFS state and accumulators."""

    __slots__ = (
        "rack",
        "index",
        "package",
        "compiled",
        "power_model",
        "table",
        "pstate",
        "util",
        "throttles",
        "energy_j",
        "max_die_c",
    )

    def __init__(
        self,
        rack: int,
        index: int,
        package: CpuPackage,
        compiled: CompiledRC,
        power_model: CpuPowerModel,
        table: PStateTable,
    ) -> None:
        self.rack = rack
        self.index = index
        self.package = package
        self.compiled = compiled
        self.power_model = power_model
        self.table = table
        self.pstate = 0  # fastest
        self.util = 0.0
        self.throttles = 0
        self.energy_j = 0.0
        self.max_die_c = package.die_temperature

    def dvfs_step(self, t_min: float, t_max: float, pp: float) -> None:
        """One in-band governor decision against the rack's ``P_p`` budget.

        The trigger slides across the safe band with the performance
        preference: ``t_trig = t_min + (t_max - t_min) · pp / 100`` —
        a low budget throttles early, a 100 budget only at ``t_max``.
        """
        t_trig = t_min + (t_max - t_min) * pp / 100.0
        die = self.package.die_temperature
        if die > t_trig:
            if self.pstate < len(self.table) - 1:
                self.pstate += 1
                self.throttles += 1
        elif die < t_trig - _HYSTERESIS_K and self.pstate > 0:
            self.pstate -= 1

    def apply_power(self, dt: float) -> float:
        """Write this tick's die power into the network; returns watts."""
        package = self.package
        watts = self.power_model.power(
            self.table[self.pstate], self.util, package.die_temperature
        )
        package._net.set_power(package._die, watts)
        self.energy_j += watts * dt
        return watts

    def observe(self) -> None:
        """Track the running die-temperature peak (after a step)."""
        die = self.package.die_temperature
        if die > self.max_die_c:
            self.max_die_c = die


class FleetRack:
    """``nodes_per_rack`` nodes behind one shared fan wall.

    The fan wall is one duty fraction driving an identical fan per
    node; its proportional loop tracks the rack hot spot against
    ``t_max - 6 K``.  Duty changes write every node's convective-link
    resistance (through the public setter, so the compiled steppers'
    dirty bookkeeping fires) — between changes the coefficient caches
    stay warm.
    """

    __slots__ = (
        "index",
        "nodes",
        "aero",
        "duty",
        "airflow_cfm",
        "fan_power_w",
        "inlet_c",
        "pp",
        "fan_energy_j",
        "epoch_power_sum",
        "epoch_ticks_done",
    )

    def __init__(self, index: int, nodes: List[FleetNode]) -> None:
        self.index = index
        self.nodes = nodes
        self.aero = FanAero()
        self.duty = 0.0
        self.airflow_cfm = 0.0
        self.fan_power_w = 0.0
        self.inlet_c = 0.0
        self.pp = 100.0
        self.fan_energy_j = 0.0
        self.epoch_power_sum = 0.0
        self.epoch_ticks_done = 0
        self.set_duty(_INITIAL_DUTY)

    def set_duty(self, duty: float) -> None:
        """Set the fan-wall duty and push the resistance to every node."""
        self.duty = duty
        rpm = duty * self.aero.rpm_max
        self.airflow_cfm = self.aero.airflow(rpm)
        # Whole-wall electrical power: one fan per node.
        self.fan_power_w = len(self.nodes) * self.aero.power(rpm)
        for node in self.nodes:
            package = node.package
            package.set_airflow(self.airflow_cfm)
            package._conv_link.resistance = package.convection.resistance(
                self.airflow_cfm
            )

    def set_inlet(self, inlet_c: float) -> None:
        """Set the rack inlet air temperature (epoch-boundary exchange)."""
        self.inlet_c = inlet_c
        for node in self.nodes:
            package = node.package
            package._net.set_temperature(package._amb, inlet_c)

    def max_die_c(self) -> float:
        """Current rack hot spot, °C (fixed node order; max is exact)."""
        peak = self.nodes[0].package.die_temperature
        for node in self.nodes[1:]:
            die = node.package.die_temperature
            if die > peak:
                peak = die
        return peak

    def control_step(self, spec: FleetSpec, t: float, band: Tuple) -> None:
        """One control period: workload refresh, DVFS, fan wall.

        Order is load-bearing for reproducibility and fixed here once:
        hot spot read first, then per-node utilization + DVFS in node
        order, then the fan-wall duty update.
        """
        _table, _power, t_min, t_max = band
        hot_spot = self.max_die_c()
        for node in self.nodes:
            node.util = utilization(spec, self.index, node.index, t)
            node.dvfs_step(t_min, t_max, self.pp)
        target = t_max - _FAN_HEADROOM_K
        duty = self.duty + _DUTY_GAIN * (hot_spot - target)
        duty = min(1.0, max(_DUTY_MIN, duty))
        if duty != self.duty:
            self.set_duty(duty)

    def tick(self, dt: float) -> None:
        """Per-tick power injection and energy accounting (pre-step)."""
        total = 0.0
        for node in self.nodes:
            total += node.apply_power(dt)
        self.epoch_power_sum += total
        self.epoch_ticks_done += 1
        self.fan_energy_j += self.fan_power_w * dt

    def begin_epoch(self, inlet_c: float, pp: float) -> None:
        """Absorb the coordinator's epoch command (inlet + budget)."""
        self.set_inlet(inlet_c)
        self.pp = pp
        self.epoch_power_sum = 0.0
        self.epoch_ticks_done = 0

    def mean_power_w(self) -> float:
        """Mean whole-rack CPU power over the finished epoch, W."""
        if self.epoch_ticks_done == 0:
            return 0.0
        return self.epoch_power_sum / self.epoch_ticks_done

    def outlet_c(self) -> float:
        """Rack outlet air temperature after the finished epoch, °C.

        Energy balance over the rack airflow: the exhaust rises above
        the inlet by ``P_rack / (0.566 · CFM_total)`` at the fan wall's
        current flow.
        """
        cfm_total = len(self.nodes) * self.airflow_cfm
        return self.inlet_c + self.mean_power_w() / (
            AIR_W_PER_CFM_K * cfm_total
        )


def build_rack(spec: FleetSpec, rack_index: int) -> FleetRack:
    """Materialize one rack of the fleet from its spec.

    Every node gets its own :class:`CpuPackage` (unique node names keep
    debugging sane) with the network pre-compiled for the batched
    stepper; the platform only swaps the DVFS ladder, power constants
    and safe band — the chassis thermal stack is the paper's testbed.
    """
    table, power_params, _t_min, _t_max = node_band(spec)
    model = CpuPowerModel(power_params)
    nodes: List[FleetNode] = []
    for i in range(spec.nodes_per_rack):
        package = CpuPackage(name=f"r{rack_index}n{i}")
        compiled = compile_network(package._net)
        nodes.append(
            FleetNode(
                rack=rack_index,
                index=i,
                package=package,
                compiled=compiled,
                power_model=model,
                table=table,
            )
        )
    return FleetRack(index=rack_index, nodes=nodes)
