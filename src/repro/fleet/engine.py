"""The fleet engine: sharded BSP execution with a deterministic reduce.

:func:`run_fleet` advances one coupled fleet to its horizon.  The
shard count is an *execution strategy*, never a semantic input:

* racks partition contiguously across shards (near-equal slices);
* within an epoch every shard advances its racks with cross-rack
  state frozen (rack physics is rack-local — see
  :mod:`repro.fleet.model`);
* at each epoch boundary the engine gathers per-rack reports, the
  :class:`~repro.fleet.coordinator.FleetCoordinator` computes the next
  inlets and budgets from them in fixed rack order, and the commands
  fan back out.

Because each rack's trajectory is a function of ``(spec, epoch
commands)`` and the coordinator is a function of the ordered reports,
the whole :class:`FleetResult` is bitwise identical for every
``shards`` value — :meth:`FleetResult.canonical_bytes` is the
equivalence gate the tests and the benchmark both assert on.

Results ride a content-addressed cache keyed by the spec digest alone
(no shard count — a fleet simulated once is a hit at any shard count),
with the same atomic-replace discipline as the runtime layer's run
cache.  The fleet package deliberately does not import the cluster
layer (the RPR014 shard-isolation rule pins this): shards rebuild
their world from the spec wire form only.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import SimulationError
from ..sim.events import Event
from ..telemetry import TelemetrySnapshot
from .coordinator import FleetCoordinator
from .shard import NodeFinal, RackFinal, RackReport, ShardRunner, shard_worker
from .spec import FleetSpec

__all__ = ["FleetResult", "partition_racks", "run_fleet"]

#: On-disk cache payload version; bump on any FleetResult shape change.
_CACHE_FORMAT = 1

#: Process-local uniquifier for atomic cache writes (pid alone is not
#: enough when one process stores several results).
_TMP_IDS = itertools.count()


@dataclass(frozen=True)
class FleetResult:
    """Everything one fleet simulation produced, frozen and picklable.

    Attributes
    ----------
    spec:
        The spec that named the run.
    nodes:
        Per-node finals in ``(rack, node)`` order.
    racks:
        Per-rack finals in rack order.
    series:
        Per-epoch ``(t_end, total_power_w, max_die_c, pp_global)`` rows.
    events:
        The coordinator's event log (epoch summaries, fault injection).
    telemetry:
        Merged shard + coordinator snapshot (rack-labeled instruments;
        nothing in it depends on the shard count).
    """

    spec: FleetSpec
    nodes: Tuple[NodeFinal, ...]
    racks: Tuple[RackFinal, ...]
    series: Tuple[Tuple[float, float, float, float], ...]
    events: Tuple[Event, ...]
    telemetry: TelemetrySnapshot

    # -- summaries ---------------------------------------------------------

    def peak_die_c(self) -> float:
        """Hottest die temperature any node reached, °C."""
        return max(node.max_die_c for node in self.nodes)

    def total_cpu_energy_j(self) -> float:
        """Fleet CPU energy over the horizon, J (fixed node order)."""
        total = 0.0
        for node in self.nodes:
            total += node.energy_j
        return total

    def total_fan_energy_j(self) -> float:
        """Fleet fan-wall energy over the horizon, J (fixed rack order)."""
        total = 0.0
        for rack in self.racks:
            total += rack.fan_energy_j
        return total

    def total_throttles(self) -> int:
        """Total DVFS throttle-down decisions across the fleet."""
        return sum(node.throttles for node in self.nodes)

    # -- canonical form ----------------------------------------------------

    def to_jsonable(self) -> dict:
        """Plain-data rendering (CLI output, service payloads)."""
        return {
            "spec": json.loads(self.spec.to_json()),
            "digest": self.spec.digest(),
            "nodes": [
                {
                    "rack": n.rack,
                    "node": n.node,
                    "final_die_c": n.final_die_c,
                    "final_sink_c": n.final_sink_c,
                    "max_die_c": n.max_die_c,
                    "energy_j": n.energy_j,
                    "pstate_index": n.pstate_index,
                    "throttles": n.throttles,
                }
                for n in self.nodes
            ],
            "racks": [
                {
                    "rack": r.rack,
                    "inlet_c": r.inlet_c,
                    "duty": r.duty,
                    "fan_energy_j": r.fan_energy_j,
                }
                for r in self.racks
            ],
            "series": [list(row) for row in self.series],
            "events": [
                {
                    "time": e.time,
                    "category": e.category,
                    "source": e.source,
                    "data": {k: e.data[k] for k in sorted(e.data)},
                }
                for e in self.events
            ],
            "telemetry": [
                {
                    "name": s.name,
                    "type": s.type,
                    "labels": s.label_dict(),
                    "value": s.value,
                    "sum": s.sum,
                    "count": s.count,
                    "buckets": [list(b) for b in s.buckets],
                }
                for s in self.telemetry
            ],
            "summary": {
                "peak_die_c": self.peak_die_c(),
                "total_cpu_energy_j": self.total_cpu_energy_j(),
                "total_fan_energy_j": self.total_fan_energy_j(),
                "total_throttles": self.total_throttles(),
            },
        }

    def canonical_bytes(self) -> bytes:
        """Bitwise-faithful serialization — the equivalence gate.

        Floats serialize through :func:`json.dumps`'s shortest
        round-trip ``repr``, which is injective on float64, so two
        results agree on these bytes iff every float in them is
        bitwise identical.
        """
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")


def partition_racks(racks: int, shards: int) -> Tuple[Tuple[int, int], ...]:
    """Contiguous near-equal ``(rack_lo, rack_hi)`` slices per shard.

    ``shards`` is clamped into ``[1, racks]``; the first ``racks %
    shards`` slices take one extra rack.
    """
    shards = max(1, min(shards, racks))
    base, extra = divmod(racks, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return tuple(bounds)


class _LocalShard:
    """In-process shard handle (the ``shards == 1`` fast path)."""

    def __init__(self, spec: FleetSpec, rack_lo: int, rack_hi: int) -> None:
        self._runner = ShardRunner(spec, rack_lo, rack_hi)
        self._reports: List[RackReport] = []

    def submit_epoch(
        self,
        inlets: Tuple[float, ...],
        pps: Tuple[float, ...],
        n_ticks: int,
    ) -> None:
        self._reports = self._runner.run_epoch(inlets, pps, n_ticks)

    def collect_reports(self) -> List[RackReport]:
        return self._reports

    def finish(self):
        return self._runner.finish()

    def stop(self) -> None:
        pass


class _ProcessShard:
    """Worker-process shard handle speaking the pipe protocol."""

    def __init__(self, spec: FleetSpec, rack_lo: int, rack_hi: int) -> None:
        self.rack_lo = rack_lo
        self.rack_hi = rack_hi
        self._conn, child = multiprocessing.Pipe()
        self._process = multiprocessing.Process(
            target=shard_worker,
            args=(child, spec.to_json(), rack_lo, rack_hi),
            daemon=True,
        )
        self._process.start()
        child.close()

    def _receive(self, expected: str):
        try:
            kind, payload = self._conn.recv()
        except EOFError:
            raise SimulationError(
                f"fleet shard [{self.rack_lo}, {self.rack_hi}) died "
                "without reporting"
            ) from None
        if kind == "error":
            raise SimulationError(
                f"fleet shard [{self.rack_lo}, {self.rack_hi}) failed: "
                f"{payload}"
            )
        if kind != expected:
            raise SimulationError(
                f"fleet shard [{self.rack_lo}, {self.rack_hi}) sent "
                f"{kind!r}, expected {expected!r}"
            )
        return payload

    def submit_epoch(
        self,
        inlets: Tuple[float, ...],
        pps: Tuple[float, ...],
        n_ticks: int,
    ) -> None:
        self._conn.send(("epoch", inlets, pps, n_ticks))

    def collect_reports(self) -> List[RackReport]:
        return self._receive("reports")

    def finish(self):
        self._conn.send(("finish",))
        return self._receive("result")

    def stop(self) -> None:
        try:
            self._conn.send(("stop",))
        except (OSError, BrokenPipeError):
            pass
        self._process.join(timeout=10.0)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=10.0)
        self._conn.close()


# -- cache ----------------------------------------------------------------


def _cache_path(cache_dir: Union[str, Path], digest: str) -> Path:
    return Path(cache_dir) / f"fleet-{digest}.pickle"


def _cache_load(path: Path, spec: FleetSpec) -> Optional[FleetResult]:
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if (
        not isinstance(payload, tuple)
        or len(payload) != 2
        or payload[0] != _CACHE_FORMAT
    ):
        return None
    result = payload[1]
    if not isinstance(result, FleetResult) or result.spec != spec:
        return None
    return result


def _cache_store(path: Path, result: FleetResult) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_IDS)}.tmp"
    )
    try:
        with open(tmp, "wb") as fh:
            pickle.dump((_CACHE_FORMAT, result), fh)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


# -- the engine ------------------------------------------------------------


def _epoch_tick_counts(spec: FleetSpec) -> List[int]:
    total = spec.total_ticks()
    counts: List[int] = []
    done = 0
    while done < total:
        n = min(spec.epoch_ticks, total - done)
        counts.append(n)
        done += n
    return counts


def _reduce(
    spec: FleetSpec,
    shard_results: Sequence,
    coordinator: FleetCoordinator,
    series: Sequence[Tuple[float, float, float, float]],
) -> FleetResult:
    """Deterministic fold of shard results into one :class:`FleetResult`.

    Node and rack finals sort by their ``(rack, node)`` identity (the
    shards cover disjoint rack ranges, so this is a pure reordering),
    and the telemetry merge is order-independent by the snapshot
    contract — so the reduce is a function of the result *set*, not of
    shard arrival order.
    """
    nodes: List[NodeFinal] = sorted(
        (n for sr in shard_results for n in sr.nodes),
        key=lambda n: (n.rack, n.node),
    )
    racks: List[RackFinal] = sorted(
        (r for sr in shard_results for r in sr.racks),
        key=lambda r: r.rack,
    )
    telemetry = TelemetrySnapshot.merge(
        coordinator.registry.snapshot(),
        *(sr.telemetry for sr in shard_results),
    )
    return FleetResult(
        spec=spec,
        nodes=tuple(nodes),
        racks=tuple(racks),
        series=tuple(series),
        events=tuple(coordinator.events),
        telemetry=telemetry,
    )


def run_fleet(
    spec: FleetSpec,
    shards: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> FleetResult:
    """Simulate one coupled fleet; bitwise identical for any ``shards``.

    Parameters
    ----------
    spec:
        The fleet to simulate.
    shards:
        Worker count; clamped into ``[1, spec.racks]``.  ``1`` runs
        in-process, anything larger forks one worker per shard.
    cache_dir:
        Optional content-addressed result cache.  Keyed by the spec
        digest only — shard count is not part of a result's identity.
    """
    if cache_dir is not None:
        path = _cache_path(cache_dir, spec.digest())
        cached = _cache_load(path, spec)
        if cached is not None:
            return cached
    bounds = partition_racks(spec.racks, shards)
    if len(bounds) == 1:
        handles: List = [_LocalShard(spec, *bounds[0])]
    else:
        handles = [_ProcessShard(spec, lo, hi) for lo, hi in bounds]
    coordinator = FleetCoordinator(spec)
    series: List[Tuple[float, float, float, float]] = []
    try:
        t = 0.0
        for n_ticks in _epoch_tick_counts(spec):
            inlets, pps = coordinator.begin_epoch(t)
            for (lo, hi), handle in zip(bounds, handles):
                handle.submit_epoch(inlets[lo:hi], pps[lo:hi], n_ticks)
            reports: List[RackReport] = []
            for handle in handles:
                reports.extend(handle.collect_reports())
            t += n_ticks * spec.dt
            coordinator.end_epoch(t, reports)
            last = coordinator.events[len(coordinator.events) - 1]
            series.append(
                (
                    t,
                    last.data["total_power_w"],
                    last.data["max_die_c"],
                    last.data["pp_global"],
                )
            )
        shard_results = [handle.finish() for handle in handles]
    finally:
        for handle in handles:
            handle.stop()
    result = _reduce(spec, shard_results, coordinator, series)
    if cache_dir is not None:
        _cache_store(path, result)
    return result
