"""Declarative fleet topology specifications.

A :class:`FleetSpec` *names* one coupled fleet simulation — racks ×
nodes-per-rack, the recirculation coupling between racks, the workload
profile, the coordinator's power budget and an optional hot-aisle
fault — without holding any live objects.  Like
:class:`~repro.runtime.spec.RunSpec` it is frozen, hashable,
comparable and picklable, its :meth:`FleetSpec.canonical` JSON is both
the digest input and the public wire form
(``FleetSpec.from_json(spec.to_json()) == spec`` always holds), and it
rides the same content-addressed cache discipline as RunSpecs — with a
``repro-fleet/`` digest domain so the two spec kinds can share a cache
directory without ever colliding.

Deliberately **absent** from the spec: the shard count.  Sharding is a
pure execution strategy — the engine guarantees bitwise-identical
results for every ``shards`` value — so it must not (and does not)
affect the digest: a fleet simulated once is a cache hit at any shard
count.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from ..errors import ConfigurationError
from ..runtime.spec import DEFAULT_SEED, Params, freeze_params

__all__ = [
    "FLEET_WORKLOADS",
    "FleetFaultSpec",
    "FleetSpec",
]

#: Fleet workload profile names (see :mod:`repro.fleet.model`).
FLEET_WORKLOADS = ("uniform", "imbalance", "wave")

#: Fault kinds the coordinator knows how to inject.
_FAULT_KINDS = ("hot_aisle_recirc",)


@dataclass(frozen=True)
class FleetFaultSpec:
    """A hot-aisle containment fault and when it fires.

    Attributes
    ----------
    kind:
        Fault type; currently only ``"hot_aisle_recirc"`` (the victim
        rack's containment is breached, multiplying the recirculated
        fraction of every rack's exhaust it ingests).
    rack:
        Index of the victim rack.
    at:
        Simulated seconds into the run at which the fault fires.  The
        coordinator applies it at the first epoch boundary at or after
        this time, so the injection point is a pure function of the
        spec — never of sharding.
    factor:
        Multiplier on the victim rack's recirculation row (clamped so
        the coupling stays contractive).
    """

    kind: str = "hot_aisle_recirc"
    rack: int = 0
    at: float = 40.0
    factor: float = 3.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ConfigurationError(
                f"fleet fault kind {self.kind!r} is unknown; "
                f"available: {list(_FAULT_KINDS)}"
            )
        if isinstance(self.rack, bool) or not isinstance(self.rack, int):
            raise ConfigurationError(
                f"fleet fault 'rack' must be an int, got {self.rack!r}"
            )
        if self.rack < 0:
            raise ConfigurationError(
                f"fleet fault 'rack' must be >= 0, got {self.rack}"
            )
        _require_finite(self.at, "fault 'at'")
        if self.at < 0.0:
            raise ConfigurationError(
                f"fleet fault 'at' must be >= 0, got {self.at}"
            )
        _require_finite(self.factor, "fault 'factor'")
        if self.factor < 1.0:
            raise ConfigurationError(
                f"fleet fault 'factor' must be >= 1 (a breach never "
                f"improves containment), got {self.factor}"
            )


def _require_finite(value: float, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"fleet spec {name} must be a number, got {value!r} "
            f"({type(value).__name__})"
        )
    if not math.isfinite(value):
        raise ConfigurationError(
            f"fleet spec {name} must be finite, got {value!r}"
        )


def _require_int(value: Any, name: str, minimum: int) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"fleet spec {name} must be an int, got {value!r} "
            f"({type(value).__name__})"
        )
    if value < minimum:
        raise ConfigurationError(
            f"fleet spec {name} must be >= {minimum}, got {value}"
        )


@dataclass(frozen=True)
class FleetSpec:
    """A complete, declarative name for one coupled-fleet simulation.

    Attributes
    ----------
    racks / nodes_per_rack:
        Topology: ``racks`` racks in one hot-aisle row, each holding
        ``nodes_per_rack`` identical nodes behind a shared fan wall.
    horizon:
        Simulated seconds the fleet runs.
    dt:
        Physics tick, seconds (the cluster layer's 0.05 s default).
    epoch_ticks:
        Ticks per synchronization epoch.  Cross-rack coupling (rack
        outlet → hot aisle → neighbour inlet) and coordinator budgets
        are frozen *within* an epoch and exchanged only at epoch
        boundaries, which is exactly what makes the simulation
        rack-local between boundaries — and therefore bitwise
        shard-count-independent.
    control_ticks:
        Ticks per local control period (per-node DVFS decisions and the
        per-rack fan-wall loop).  Purely rack-local, so any cadence is
        sharding-safe.
    seed:
        Root seed; workload phase offsets derive from it by pure
        integer mixing (no sequenced RNG, so no draw-order hazards).
    workload:
        Fleet workload profile name (:data:`FLEET_WORKLOADS`).
    workload_params:
        Frozen profile parameters (e.g. hot/cold utilization levels).
    power_budget:
        Optional fleet-wide CPU power cap in watts.  ``None`` disables
        coordinator capping (every node keeps ``P_p = 100``).
    recirculation:
        Fraction of a rack's exhaust heat that recirculates to the
        aisle (spread over neighbours by a decaying distance kernel).
    cold_aisle_c:
        Cold-aisle supply temperature, °C.
    platform:
        Optional platform registry key; ``None`` — the default — uses
        the paper's Athlon64 testbed constants and is omitted from
        :meth:`canonical`, mirroring :class:`~repro.runtime.spec.RunSpec`.
    fault:
        Optional :class:`FleetFaultSpec`.
    quick:
        Marks shortened (smoke-test) configurations, carried so cache
        entries distinguish quick fleets from full ones.
    """

    racks: int = 4
    nodes_per_rack: int = 8
    horizon: float = 120.0
    dt: float = 0.05
    epoch_ticks: int = 40
    control_ticks: int = 20
    seed: int = DEFAULT_SEED
    workload: str = "imbalance"
    workload_params: Params = ()
    power_budget: Optional[float] = None
    recirculation: float = 0.2
    cold_aisle_c: float = 25.0
    platform: Optional[str] = None
    fault: Optional[FleetFaultSpec] = None
    quick: bool = False

    def __post_init__(self) -> None:
        _require_int(self.racks, "'racks'", 1)
        _require_int(self.nodes_per_rack, "'nodes_per_rack'", 1)
        _require_int(self.epoch_ticks, "'epoch_ticks'", 1)
        _require_int(self.control_ticks, "'control_ticks'", 1)
        _require_int(self.seed, "'seed'", 0)
        _require_finite(self.horizon, "'horizon'")
        if self.horizon <= 0.0:
            raise ConfigurationError(
                f"fleet spec 'horizon' must be > 0, got {self.horizon}"
            )
        _require_finite(self.dt, "'dt'")
        if self.dt <= 0.0:
            raise ConfigurationError(
                f"fleet spec 'dt' must be > 0, got {self.dt}"
            )
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigurationError(
                f"fleet spec 'workload' must be a non-empty string, got "
                f"{self.workload!r}"
            )
        if self.workload not in FLEET_WORKLOADS:
            raise ConfigurationError(
                f"fleet workload {self.workload!r} is unknown; "
                f"available: {list(FLEET_WORKLOADS)}"
            )
        if self.power_budget is not None:
            _require_finite(self.power_budget, "'power_budget'")
            if self.power_budget <= 0.0:
                raise ConfigurationError(
                    "fleet spec 'power_budget' must be > 0 (or null), got "
                    f"{self.power_budget}"
                )
        _require_finite(self.recirculation, "'recirculation'")
        if not 0.0 <= self.recirculation <= 0.8:
            raise ConfigurationError(
                "fleet spec 'recirculation' must be in [0, 0.8] (the "
                f"coupling must stay contractive), got {self.recirculation}"
            )
        _require_finite(self.cold_aisle_c, "'cold_aisle_c'")
        if not -50.0 <= self.cold_aisle_c <= 80.0:
            raise ConfigurationError(
                "fleet spec 'cold_aisle_c' is outside the plausible "
                f"[-50, 80] °C range: {self.cold_aisle_c}"
            )
        if self.platform is not None and (
            not isinstance(self.platform, str) or not self.platform
        ):
            raise ConfigurationError(
                "fleet spec 'platform' must be a non-empty string or null, "
                f"got {self.platform!r}"
            )
        if self.fault is not None:
            if not isinstance(self.fault, FleetFaultSpec):
                raise ConfigurationError(
                    "fleet spec 'fault' must be a FleetFaultSpec or None, "
                    f"got {self.fault!r}"
                )
            if self.fault.rack >= self.racks:
                raise ConfigurationError(
                    f"fleet fault rack {self.fault.rack} is outside the "
                    f"{self.racks}-rack topology"
                )
        if not isinstance(self.quick, bool):
            raise ConfigurationError(
                f"fleet spec 'quick' must be a boolean, got {self.quick!r}"
            )

    @classmethod
    def of(
        cls,
        *,
        params: Optional[Mapping[str, Any]] = None,
        **fields: Any,
    ) -> "FleetSpec":
        """Ergonomic constructor taking a plain dict for the profile."""
        return cls(workload_params=freeze_params(params), **fields)

    # -- derived sizes ----------------------------------------------------

    @property
    def total_nodes(self) -> int:
        """Nodes in the fleet."""
        return self.racks * self.nodes_per_rack

    def total_ticks(self) -> int:
        """Physics ticks covering the horizon."""
        return max(1, math.ceil(self.horizon / self.dt - 1e-9))

    def epochs(self) -> int:
        """Synchronization epochs covering the horizon (last may be short)."""
        return math.ceil(self.total_ticks() / self.epoch_ticks)

    # -- wire form / digest ----------------------------------------------

    def canonical(self) -> str:
        """Deterministic JSON form (the digest input and wire form).

        A ``None`` platform is dropped, mirroring
        :meth:`repro.runtime.spec.RunSpec.canonical`.
        """
        data = dataclasses.asdict(self)
        if data["platform"] is None:
            del data["platform"]
        return json.dumps(data, sort_keys=True)

    def to_json(self) -> str:
        """The public JSON wire form (exactly :meth:`canonical`)."""
        return self.canonical()

    @classmethod
    def from_json(cls, payload: Union[str, bytes]) -> "FleetSpec":
        """Parse the JSON wire form back into a spec.

        Every malformed payload raises
        :class:`~repro.errors.ConfigurationError` naming the offending
        field — this is the request-validation seam for fleet jobs.
        """
        if isinstance(payload, bytes):
            try:
                payload = payload.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ConfigurationError(
                    f"fleet spec payload is not valid UTF-8: {exc}"
                ) from None
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fleet spec payload is not valid JSON: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise ConfigurationError(
                "fleet spec payload must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown fleet spec field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        fields: dict = {}
        for name in (
            "racks", "nodes_per_rack", "epoch_ticks", "control_ticks", "seed",
        ):
            if name in data:
                fields[name] = data[name]
        for name in (
            "horizon", "dt", "recirculation", "cold_aisle_c",
        ):
            if name in data:
                value = data[name]
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ConfigurationError(
                        f"fleet spec {name!r} must be a number, got "
                        f"{value!r} ({type(value).__name__})"
                    )
                fields[name] = float(value)
        if "power_budget" in data and data["power_budget"] is not None:
            value = data["power_budget"]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    "fleet spec 'power_budget' must be a number or null, "
                    f"got {value!r} ({type(value).__name__})"
                )
            fields["power_budget"] = float(value)
        if "workload" in data:
            fields["workload"] = data["workload"]
        if "workload_params" in data:
            raw = data["workload_params"]
            if isinstance(raw, Mapping):
                fields["workload_params"] = freeze_params(raw)
            elif isinstance(raw, (list, tuple)):
                pairs: dict = {}
                for entry in raw:
                    if (
                        not isinstance(entry, (list, tuple))
                        or len(entry) != 2
                        or not isinstance(entry[0], str)
                    ):
                        raise ConfigurationError(
                            "fleet spec workload_params entries must be "
                            f"[\"key\", value] pairs, got {entry!r}"
                        )
                    pairs[entry[0]] = entry[1]
                fields["workload_params"] = freeze_params(pairs)
            else:
                raise ConfigurationError(
                    "fleet spec workload_params must be an object or a "
                    f"list of pairs, got {raw!r} ({type(raw).__name__})"
                )
        if data.get("platform") is not None:
            fields["platform"] = data["platform"]
        if data.get("fault") is not None:
            raw = data["fault"]
            if not isinstance(raw, Mapping):
                raise ConfigurationError(
                    "fleet spec 'fault' must be an object or null, got "
                    f"{raw!r} ({type(raw).__name__})"
                )
            unknown = sorted(set(raw) - {"kind", "rack", "at", "factor"})
            if unknown:
                raise ConfigurationError(
                    f"fleet spec 'fault' has unknown key(s) {unknown}; "
                    "expected kind/rack/at/factor"
                )
            fault_fields: dict = {}
            if "kind" in raw:
                fault_fields["kind"] = raw["kind"]
            if "rack" in raw:
                fault_fields["rack"] = raw["rack"]
            for fname in ("at", "factor"):
                if fname in raw:
                    value = raw[fname]
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        raise ConfigurationError(
                            f"fleet fault {fname!r} must be a number, got "
                            f"{value!r} ({type(value).__name__})"
                        )
                    fault_fields[fname] = float(value)
            fields["fault"] = FleetFaultSpec(**fault_fields)
        if "quick" in data:
            value = data["quick"]
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"fleet spec 'quick' must be a boolean, got {value!r}"
                )
            fields["quick"] = value
        try:
            return cls(**fields)
        except ConfigurationError:
            raise
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed fleet spec payload: {exc}"
            ) from None

    def digest(self, version: Optional[str] = None) -> str:
        """Content hash naming this spec (plus the package ``version``).

        The ``repro-fleet/`` domain prefix keeps fleet digests disjoint
        from RunSpec digests even in a shared cache directory.
        """
        if version is None:
            from .. import __version__ as version
        h = hashlib.sha256()
        h.update(f"repro-fleet/{version}\n".encode("utf-8"))
        h.update(self.canonical().encode("utf-8"))
        return h.hexdigest()[:40]

    def describe(self) -> str:
        """Short human-readable label (progress lines, bench reports)."""
        platform = f"/{self.platform}" if self.platform is not None else ""
        budget = (
            f"/cap={self.power_budget:.0f}W"
            if self.power_budget is not None
            else ""
        )
        fault = f"/fault@{self.fault.at:g}s" if self.fault is not None else ""
        return (
            f"fleet {self.racks}x{self.nodes_per_rack}/{self.workload}"
            f"{budget}{fault}/seed={self.seed}{platform}"
            f"{'/quick' if self.quick else ''}"
        )
