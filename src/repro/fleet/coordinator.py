"""Fleet-level coordination: epoch exchange and hierarchical capping.

The :class:`FleetCoordinator` is the only place cross-rack state
lives.  Once per synchronization epoch it

1. turns last epoch's rack *outlet* temperatures into this epoch's
   rack *inlet* temperatures through the frozen recirculation kernel
   (rack exhaust → hot aisle → neighbour intake),
2. distributes the per-rack performance-preference budgets ``P_p``
   that the in-band governors throttle against — a global term tracks
   the fleet power budget, a per-rack term leans on hot racks — and
3. injects the hot-aisle containment fault at its scheduled boundary.

Everything it consumes is the ordered list of per-rack
:class:`~repro.fleet.shard.RackReport` records, and every reduction is
a fixed-order Python loop over rack index — so its outputs (and hence
the whole simulation) are a pure function of the spec, independent of
how racks were sharded and which worker reported first.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import SimulationError
from ..sim.events import EventLog
from ..telemetry import MetricsRegistry
from .shard import RackReport
from .spec import FleetSpec

__all__ = ["FleetCoordinator", "recirculation_weights"]

#: Coordinator gains and clamps: the global budget loop (per epoch,
#: proportional on relative power error) and the per-rack lean against
#: hot racks (per kelvin above the fleet-mean hot spot).
_PP_MIN = 5.0
_PP_MAX = 100.0
_BUDGET_GAIN = 30.0
_RACK_LEAN_PER_K = 3.0

#: Geometric decay of recirculated exhaust with rack distance, and the
#: post-fault ceiling on any rack's total recirculated fraction.
_DISTANCE_DECAY = 0.5
_ROW_SUM_CEILING = 0.9


def recirculation_weights(spec: FleetSpec) -> Tuple[Tuple[float, ...], ...]:
    """The frozen rack-coupling kernel ``W`` as nested tuples.

    ``W[r][s]`` is the fraction of rack *s*'s exhaust rise that rack
    *r* ingests: a distance-decayed kernel normalized so every row sums
    to exactly ``spec.recirculation`` — the coupling is contractive
    (recirculation < 1), which keeps the epoch fixed-point iteration
    stable for any topology.
    """
    racks = spec.racks
    rows: List[Tuple[float, ...]] = []
    for r in range(racks):
        kernel = [_DISTANCE_DECAY ** abs(r - s) for s in range(racks)]
        norm = 0.0
        for value in kernel:
            norm += value
        rows.append(
            tuple(spec.recirculation * value / norm for value in kernel)
        )
    return tuple(rows)


class FleetCoordinator:
    """Cross-rack state machine advanced once per synchronization epoch."""

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self.weights = recirculation_weights(spec)
        self.pp_global = _PP_MAX
        self.events = EventLog()
        self.registry = MetricsRegistry()
        self.epoch_index = 0
        self.fault_applied = False
        self._inlets: List[float] = [spec.cold_aisle_c] * spec.racks
        self._rack_max: List[float] = [0.0] * spec.racks
        self._have_reports = False

    # -- epoch planning ----------------------------------------------------

    def begin_epoch(
        self, t: float
    ) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Commands for the epoch starting at ``t``: (inlets, pps).

        The fault is applied here — at the first epoch boundary at or
        after its scheduled time — so injection is a property of the
        epoch schedule, not of shard timing.
        """
        spec = self.spec
        fault = spec.fault
        if fault is not None and not self.fault_applied and t >= fault.at:
            self._apply_fault(t)
        inlets = tuple(self._inlets)
        if not self._have_reports:
            pps = tuple(self.pp_global for _ in range(spec.racks))
        else:
            mean_max = 0.0
            for value in self._rack_max:
                mean_max += value
            mean_max /= spec.racks
            pps = tuple(
                min(
                    _PP_MAX,
                    max(
                        _PP_MIN,
                        self.pp_global
                        - _RACK_LEAN_PER_K * (self._rack_max[r] - mean_max),
                    ),
                )
                for r in range(spec.racks)
            )
        return inlets, pps

    def _apply_fault(self, t: float) -> None:
        fault = self.spec.fault
        assert fault is not None
        rows = list(self.weights)
        row = [value * fault.factor for value in rows[fault.rack]]
        total = 0.0
        for value in row:
            total += value
        if total > _ROW_SUM_CEILING:
            scale = _ROW_SUM_CEILING / total
            row = [value * scale for value in row]
        rows[fault.rack] = tuple(row)
        self.weights = tuple(rows)
        self.fault_applied = True
        self.events.emit(
            t,
            "fleet.coordinator.fault",
            "fleet.coordinator",
            kind=fault.kind,
            rack=fault.rack,
            factor=fault.factor,
        )
        self.registry.counter("fleet.coordinator.faults").inc()

    # -- epoch absorption --------------------------------------------------

    def end_epoch(self, t: float, reports: Sequence[RackReport]) -> None:
        """Absorb the epoch's rack reports: exchange air, retune budgets."""
        spec = self.spec
        if len(reports) != spec.racks:
            raise SimulationError(
                f"coordinator expected {spec.racks} rack reports, got "
                f"{len(reports)}"
            )
        for r, report in enumerate(reports):
            if report.rack != r:
                raise SimulationError(
                    f"rack reports out of order: slot {r} holds rack "
                    f"{report.rack}"
                )
        total_power = 0.0
        fleet_max = reports[0].max_die_c
        for report in reports:
            total_power += report.mean_power_w
            if report.max_die_c > fleet_max:
                fleet_max = report.max_die_c
            self._rack_max[report.rack] = report.max_die_c
        self._have_reports = True
        if spec.power_budget is not None:
            err = total_power - spec.power_budget
            self.pp_global = min(
                _PP_MAX,
                max(
                    _PP_MIN,
                    self.pp_global - _BUDGET_GAIN * err / spec.power_budget,
                ),
            )
        cold = spec.cold_aisle_c
        for r in range(spec.racks):
            inlet = cold
            row = self.weights[r]
            for s in range(spec.racks):
                inlet += row[s] * (reports[s].outlet_c - cold)
            self._inlets[r] = inlet
        self.events.emit(
            t,
            "fleet.coordinator.epoch",
            "fleet.coordinator",
            epoch=self.epoch_index,
            total_power_w=total_power,
            max_die_c=fleet_max,
            pp_global=self.pp_global,
        )
        self.registry.counter("fleet.coordinator.epochs").inc()
        self.registry.gauge("fleet.coordinator.pp_global").set(self.pp_global)
        self.registry.gauge(
            "fleet.coordinator.total_power_w"
        ).set(total_power)
        self.registry.gauge("fleet.coordinator.max_die_c").set(fleet_max)
        self.epoch_index += 1
