"""The runtime layer: declarative specs, parallel execution, caching.

Every simulation the repo runs — CLI experiments, benchmarks, series
regeneration, tests — flows through this package:

.. code-block:: python

    from repro.runtime import RunExecutor, RunSpec

    specs = [
        RunSpec.of(
            "bt_b_4", {"iterations": 200},
            rigs=[("dynamic_fan", {"pp": 50, "max_duty": cap})],
            seed=20100913,
        )
        for cap in (0.25, 0.50, 0.75, 1.00)
    ]
    results = RunExecutor(jobs=4).map(specs)   # one RunResult per spec

* :mod:`repro.runtime.spec` — :class:`RunSpec`: a frozen, hashable
  name for one run (platform, seed, workload, rigging, fault).
* :mod:`repro.runtime.execute` — the spec → simulation bridge.
* :mod:`repro.runtime.executor` — :class:`RunExecutor`: serial or
  process-pool fan-out plus a content-addressed on-disk result cache.
* :mod:`repro.runtime.measure` — :class:`Measure`: the shared
  trace-window reductions experiment rows are built from.

The determinism contract: a spec's result is byte-identical whether it
ran serially, in a worker process, or came from the cache.  ``repro
lint`` rule RPR007 keeps experiments on this path by banning direct
``Cluster``/``run_job`` use outside the platform/runtime layers.
"""

from .executor import ExecutorStats, RunExecutor, timed_execute_spec
from .execute import execute_spec
from .measure import Measure, first_rise_delay, late_quarter_slope
from .spec import (
    DEFAULT_SEED,
    FaultSpec,
    Params,
    RigSpec,
    RunSpec,
    freeze_params,
    specs_table,
)

__all__ = [
    "DEFAULT_SEED",
    "ExecutorStats",
    "FaultSpec",
    "Measure",
    "Params",
    "RigSpec",
    "RunExecutor",
    "RunSpec",
    "execute_spec",
    "first_rise_delay",
    "freeze_params",
    "late_quarter_slope",
    "specs_table",
    "timed_execute_spec",
]
