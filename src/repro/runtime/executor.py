"""Spec → result mapping with process fan-out and result caching.

:class:`RunExecutor` is how every experiment, benchmark and CLI
invocation runs simulations:

.. code-block:: python

    executor = RunExecutor(jobs=4, cache_dir=".repro-cache")
    results = executor.map(specs)        # order matches specs

Three properties the rest of the repo builds on:

* **Determinism** — a spec's result is identical whether it ran
  serially, in a worker process, or came out of the cache (the
  simulator is a pure function of the spec; see
  :mod:`repro.runtime.execute`).  ``jobs=1`` is the default, so
  tier-1 behaviour is exactly the historical serial path.
* **Fan-out** — with ``jobs=N`` uncached specs are distributed over a
  :class:`~concurrent.futures.ProcessPoolExecutor`; sweeps cost the
  wall-clock of their slowest member, not their sum.  The pool is
  created lazily on the first parallel :meth:`RunExecutor.map` call
  and **reused** across subsequent calls, so a session of successive
  sweeps (the CLI's ``run all``, the serving layer, benchmark phases)
  pays worker spin-up — process fork plus the module-tree import —
  exactly once instead of per call.  :meth:`RunExecutor.close` (or the
  context-manager form) releases the workers; a broken pool is
  disposed and never reused.
* **Caching** — with ``cache_dir`` set, results are pickled under a
  content hash of (spec, package version), so re-running the same
  configuration across the CLI, tests and benchmarks simulates once.
  Off by default.  Version bumps invalidate every entry.

Identical specs inside one ``map`` call are also deduplicated: the run
happens once and the same result object is returned at each position.

Every executor owns a host-side
:class:`~repro.telemetry.registry.MetricsRegistry`.  Its lifetime
counters (``host.exec.*`` / ``host.cache.*``) back
:class:`ExecutorStats`, so the numbers are identical whether specs ran
serially or across the pool — workers measure their own wall time and
the parent folds it in (wall-clock reads are **only** legal here, in
``host.*`` metrics; sim-side telemetry is sim-clock-only, see lint rule
RPR008).  With ``telemetry=True`` the executor also switches every
mapped spec's telemetry on and keeps the ``(spec, result)`` pairs in
:attr:`RunExecutor.collected` for the exporters.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cluster.cluster import RunResult
from ..telemetry.registry import MetricsRegistry, SECONDS_BUCKETS
from ..telemetry.snapshot import TelemetrySnapshot
from .execute import execute_spec, execute_specs_batch
from .spec import RunSpec

__all__ = ["ExecutorStats", "RunExecutor", "timed_execute_spec"]

#: Distinguishes executors that share one metrics registry: each gets an
#: ``executor=<ordinal>`` label on its host-side instruments so two
#: executors' counters and gauges never collide (process-lifetime
#: ordinals; host metrics are excluded from deterministic exports).
_EXECUTOR_IDS = itertools.count()

#: Makes concurrent cache stores from one process collision-free: the
#: tmp-file name folds in a process-wide sequence number on top of the
#: pid, so two executors (or threads) storing the same digest never
#: interleave writes into one tmp file.
_TMP_IDS = itertools.count()


def timed_execute_spec(spec: RunSpec) -> Tuple[RunResult, float]:
    """:func:`execute_spec` plus the worker-side wall time, seconds.

    Module-level (picklable) so the measurement happens *inside* the
    worker process — the parent would otherwise attribute pool queueing
    delays to the simulation.
    """
    started = time.perf_counter()
    result = execute_spec(spec)
    return result, time.perf_counter() - started


class ExecutorStats:
    """One executor's lifetime counters (cache efficacy, fan-out).

    A read-only view over the executor's ``host.*`` registry counters;
    because workers report back through the registry, the numbers are
    the same under ``jobs=1`` and ``jobs=N``.
    """

    __slots__ = (
        "_executed",
        "_cache_hits",
        "_cache_misses",
        "_deduplicated",
        "_jobs_requested",
        "_jobs_effective",
    )

    def __init__(self, registry: MetricsRegistry, **labels: object) -> None:
        self._executed = registry.counter("host.exec.executed", **labels)
        self._cache_hits = registry.counter("host.cache.hits", **labels)
        self._cache_misses = registry.counter("host.cache.misses", **labels)
        self._deduplicated = registry.counter(
            "host.exec.deduplicated", **labels
        )
        self._jobs_requested = registry.gauge(
            "host.exec.jobs_requested", **labels
        )
        self._jobs_effective = registry.gauge(
            "host.exec.jobs_effective", **labels
        )

    @property
    def executed(self) -> int:
        """Specs actually simulated (not cached, not deduplicated)."""
        return int(self._executed.value)

    @property
    def cache_hits(self) -> int:
        """Specs satisfied from the on-disk cache."""
        return int(self._cache_hits.value)

    @property
    def cache_misses(self) -> int:
        """Specs simulated and then stored in the cache."""
        return int(self._cache_misses.value)

    @property
    def deduplicated(self) -> int:
        """Duplicate specs that reused an earlier position's result."""
        return int(self._deduplicated.value)

    @property
    def jobs_requested(self) -> int:
        """Worker count the executor was configured with."""
        return int(self._jobs_requested.value)

    @property
    def jobs_effective(self) -> int:
        """Worker count after clamping to the machine's CPU count."""
        return int(self._jobs_effective.value)

    @property
    def jobs_clamped(self) -> bool:
        """Whether the requested fan-out exceeded the available CPUs."""
        return self.jobs_effective < self.jobs_requested

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for JSON reports)."""
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "deduplicated": self.deduplicated,
            "jobs_requested": self.jobs_requested,
            "jobs_effective": self.jobs_effective,
        }


@dataclass
class RunExecutor:
    """Maps :class:`RunSpec` lists to :class:`RunResult` lists.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs serially in-process,
        preserving the historical execution path exactly.  Requests
        beyond ``os.cpu_count()`` are clamped — oversubscribing a small
        machine costs pickling and scheduling overhead without any
        parallelism to pay for it — and a clamp down to one worker
        falls back to the serial path entirely.  The requested and
        effective counts are surfaced through :class:`ExecutorStats`.
    cache_dir:
        Directory for the content-addressed result cache; ``None``
        (default) disables caching.  Created on first write.
    cache_version:
        Version string folded into cache digests; defaults to the
        installed package version.  Exposed so tests can model a
        version bump without reinstalling.
    telemetry:
        When True, every mapped spec is run with telemetry enabled
        (``dataclasses.replace(spec, telemetry=True)``), results'
        snapshots are folded into the executor registry under a
        ``run=<digest>`` label, and the ``(spec, result)`` pairs are
        kept in :attr:`collected` for the exporters.
    fastpath:
        When True, every mapped spec runs through the
        :mod:`repro.fastpath` step compiler
        (``dataclasses.replace(spec, fastpath=True)``).  Results are
        byte-identical to the reference path, but the flag changes the
        digest, so fastpath runs keep their own cache entries.
    batch:
        When True, uncached specs that form batchable groups (same
        workload shape and tick schedule, differing parameters, no
        fault protocol — fig07's max-PWM ladder is the exemplar) run
        in lockstep through :mod:`repro.fastpath.batch` instead of one
        at a time.  Implies ``fastpath``; every run's result — and the
        per-spec cache entry written from it — is bitwise identical to
        its own serial fastpath execution, so the flag affects wall
        clock only, never results or digests beyond what ``fastpath``
        already changes.  Groups that cannot batch (singletons, fault
        specs) fall back to the ordinary per-spec path.
    platform:
        Optional platform registry key.  When set, every mapped spec
        that does not already name a platform is retargeted to this
        silicon (``dataclasses.replace(spec, platform=...)``) — the
        ``repro run|series --platform NAME`` path.  Specs that
        explicitly name a platform keep it.  ``None`` (default) leaves
        specs untouched, so historical digests and cache keys are
        unaffected.
    registry:
        The host-side metrics registry.  Supplied automatically; pass
        one explicitly to share a registry across executors — each
        executor then labels its ``host.*`` instruments with a unique
        ``executor=<ordinal>``, so shared-registry stats never
        cross-contaminate (solo executors keep unlabeled names).
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    cache_version: Optional[str] = None
    telemetry: bool = False
    fastpath: bool = False
    batch: bool = False
    platform: Optional[str] = None
    registry: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        self.jobs = max(1, int(self.jobs))
        self.effective_jobs = min(self.jobs, os.cpu_count() or 1)
        if self.batch:
            self.fastpath = True
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        if self.cache_version is None:
            from .. import __version__

            self.cache_version = __version__
        shared_registry = self.registry is not None
        if self.registry is None:
            self.registry = MetricsRegistry()
        # Per-executor instrument namespace, but only when the caller
        # opted into sharing: a solo executor keeps the historical
        # unlabeled names (and byte-identical snapshots).
        self._labels: Dict[str, object] = (
            {"executor": next(_EXECUTOR_IDS)} if shared_registry else {}
        )
        self.stats = ExecutorStats(self.registry, **self._labels)
        self.stats._jobs_requested.set(float(self.jobs))
        self.stats._jobs_effective.set(float(self.effective_jobs))
        #: ``(spec, result)`` pairs accumulated across map() calls when
        #: ``telemetry=True`` (primary specs only; duplicates collapse).
        self.collected: List[Tuple[RunSpec, RunResult]] = []
        #: Lazily created, reused across map() calls (None until the
        #: first parallel execution; see :meth:`close`).
        self._pool: Optional[ProcessPoolExecutor] = None
        self._wall_hist = self.registry.histogram(
            "host.spec.wall_seconds", buckets=SECONDS_BUCKETS, **self._labels
        )

    # -- public API ------------------------------------------------------

    def run(self, spec: RunSpec) -> RunResult:
        """Run (or fetch) a single spec."""
        return self.map([spec])[0]

    def cached(self, spec: RunSpec) -> Optional[RunResult]:
        """Probe the on-disk cache for a spec without running anything.

        Returns the cached :class:`RunResult` or ``None`` (no cache
        directory, no entry, or a corrupt entry — all indistinguishable
        by design).  A probe is *not* a hit: it does not touch the
        ``host.cache.*`` counters, so :class:`ExecutorStats` keeps
        meaning "what :meth:`map` did".  The serving layer uses this to
        answer hot requests without occupying a queue slot.
        """
        return self._cache_load(spec)

    def map(
        self, specs: Sequence[RunSpec], batch: Optional[bool] = None
    ) -> List[RunResult]:
        """Run every spec, returning results in spec order.

        Cached results are loaded first; the remaining specs run
        serially (``jobs=1``), across a process pool, or — with
        ``batch`` (argument overrides the constructor flag) — in
        lockstep groups through the batched fastpath.  Either way they
        then populate the cache.  Duplicate specs execute once.
        """
        use_batch = self.batch if batch is None else batch
        specs = list(specs)
        if self.platform is not None:
            specs = [
                s
                if s.platform is not None
                else dataclasses.replace(s, platform=self.platform)
                for s in specs
            ]
        if self.telemetry:
            specs = [
                s if s.telemetry else dataclasses.replace(s, telemetry=True)
                for s in specs
            ]
        if self.fastpath or use_batch:
            specs = [
                s if s.fastpath else dataclasses.replace(s, fastpath=True)
                for s in specs
            ]
        results: List[Optional[RunResult]] = [None] * len(specs)

        # Deduplicate: first index holding each distinct spec runs it.
        primary: Dict[RunSpec, int] = {}
        pending: List[int] = []
        for i, spec in enumerate(specs):
            if spec in primary:
                self.stats._deduplicated.inc()
                continue
            primary[spec] = i
            cached = self._cache_load(spec)
            if cached is not None:
                self.stats._cache_hits.inc()
                results[i] = cached
            else:
                pending.append(i)

        if pending:
            pending_specs = [specs[i] for i in pending]
            if use_batch:
                fresh = self._execute_batched(pending_specs)
            else:
                fresh = self._execute_all(pending_specs)
            for i, (result, wall_seconds) in zip(pending, fresh):
                results[i] = result
                self._wall_hist.observe(wall_seconds)
                if self.cache_dir is not None:
                    self.stats._cache_misses.inc()
                    self._cache_store(specs[i], result)
            self.stats._executed.inc(len(pending))

        for i, spec in enumerate(specs):
            if results[i] is None:
                results[i] = results[primary[spec]]

        if self.telemetry:
            for spec, position in primary.items():
                result = results[position]
                self.collected.append((spec, result))
                if result.telemetry is not None:
                    self.registry.merge_snapshot(
                        result.telemetry.with_labels(run=spec.digest()[:12])
                    )
        return results

    def telemetry_snapshot(self) -> TelemetrySnapshot:
        """Everything this executor knows: host metrics + merged runs."""
        return self.registry.snapshot()

    def close(self) -> None:
        """Release the worker pool (idempotent; the executor stays usable
        — the next parallel :meth:`map` simply pays spin-up again)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "RunExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    # -- execution -------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, created on first parallel use.

        Sized to ``effective_jobs`` (not the current call's spec count)
        so one pool serves every subsequent :meth:`map` regardless of
        how many specs each call brings.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.effective_jobs)
            self.registry.counter(
                "host.exec.pools_created", **self._labels
            ).inc()
        return self._pool

    def _execute_all(
        self, specs: List[RunSpec]
    ) -> List[Tuple[RunResult, float]]:
        """Run specs serially or across the (persistent) process pool."""
        workers = min(self.effective_jobs, len(specs))
        self.registry.gauge("host.exec.workers", **self._labels).set(
            float(workers)
        )
        if workers <= 1:
            return [timed_execute_spec(spec) for spec in specs]
        self.registry.counter("host.exec.pool_batches", **self._labels).inc()
        pool = self._ensure_pool()
        try:
            return list(pool.map(timed_execute_spec, specs))
        except BrokenProcessPool:
            # A dead worker poisons the whole pool; dispose of it so the
            # next map() starts from a fresh one instead of failing
            # forever on the corpse.
            self._pool = None
            pool.shutdown(wait=False, cancel_futures=True)
            raise

    @staticmethod
    def _batch_key(spec: RunSpec):
        """The identity batchable specs must share, or ``None``.

        Lockstep runs must advance on the same tick schedule with the
        same run protocol — workload shape, node count, rig families,
        ambient model, timeout/tail and telemetry mode — while seeds
        and rig *parameters* are free to differ (that is the whole
        point of a sweep).  Fault specs never batch (their protocol is
        not a single ``run_job``), and non-fastpath specs never batch
        (batching is defined as lockstep *fastpath* execution).
        """
        if spec.fault is not None or not spec.fastpath:
            return None
        return (
            spec.workload,
            spec.workload_params,
            spec.n_nodes,
            tuple(rig.name for rig in spec.rigs),
            spec.ambient,
            spec.timeout,
            spec.tail,
            spec.telemetry,
            spec.platform,
        )

    def _execute_batched(
        self, specs: List[RunSpec]
    ) -> List[Tuple[RunResult, float]]:
        """Run specs in lockstep groups; leftovers take the normal path.

        Per-spec wall time inside a lockstep group is not individually
        observable (the runs interleave at tick granularity), so each
        member is attributed an equal share of its group's wall clock —
        the histogram's count stays one observation per executed spec
        and its sum stays the true total.
        """
        groups: Dict[tuple, List[int]] = {}
        singles: List[int] = []
        for i, spec in enumerate(specs):
            key = self._batch_key(spec)
            if key is None:
                singles.append(i)
            else:
                groups.setdefault(key, []).append(i)
        out: List[Optional[Tuple[RunResult, float]]] = [None] * len(specs)
        for members in groups.values():
            if len(members) < 2:
                singles.extend(members)
                continue
            started = time.perf_counter()
            results = execute_specs_batch([specs[i] for i in members])
            share = (time.perf_counter() - started) / len(members)
            for i, result in zip(members, results):
                out[i] = (result, share)
            self.registry.counter(
                "host.exec.batch_groups", **self._labels
            ).inc()
            self.registry.counter(
                "host.exec.batched_specs", **self._labels
            ).inc(len(members))
        singles.sort()
        if singles:
            for i, pair in zip(singles, self._execute_all(
                [specs[i] for i in singles]
            )):
                out[i] = pair
        return out

    # -- cache -----------------------------------------------------------

    def _cache_path(self, spec: RunSpec) -> Path:
        return self.cache_dir / f"{spec.digest(version=self.cache_version)}.pkl"

    def _cache_load(self, spec: RunSpec) -> Optional[RunResult]:
        if self.cache_dir is None:
            return None
        path = self._cache_path(spec)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            # A truncated or stale entry is a miss, not an error.
            return None

    def _cache_store(self, spec: RunSpec, result: RunResult) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(spec)
        # Write-then-rename so concurrent writers never observe a
        # partial pickle (os.replace is atomic on POSIX and Windows).
        # The tmp name folds in a process-wide sequence number: a
        # pid-only suffix let two executors (or threads) in one process
        # interleave writes into the same tmp file.
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_IDS)}")
        with tmp.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
