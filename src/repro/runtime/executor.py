"""Spec → result mapping with process fan-out and result caching.

:class:`RunExecutor` is how every experiment, benchmark and CLI
invocation runs simulations:

.. code-block:: python

    executor = RunExecutor(jobs=4, cache_dir=".repro-cache")
    results = executor.map(specs)        # order matches specs

Three properties the rest of the repo builds on:

* **Determinism** — a spec's result is identical whether it ran
  serially, in a worker process, or came out of the cache (the
  simulator is a pure function of the spec; see
  :mod:`repro.runtime.execute`).  ``jobs=1`` is the default, so
  tier-1 behaviour is exactly the historical serial path.
* **Fan-out** — with ``jobs=N`` uncached specs are distributed over a
  :class:`~concurrent.futures.ProcessPoolExecutor`; sweeps cost the
  wall-clock of their slowest member, not their sum.
* **Caching** — with ``cache_dir`` set, results are pickled under a
  content hash of (spec, package version), so re-running the same
  configuration across the CLI, tests and benchmarks simulates once.
  Off by default.  Version bumps invalidate every entry.

Identical specs inside one ``map`` call are also deduplicated: the run
happens once and the same result object is returned at each position.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..cluster.cluster import RunResult
from .execute import execute_spec
from .spec import RunSpec

__all__ = ["ExecutorStats", "RunExecutor"]


@dataclass
class ExecutorStats:
    """Counters for one executor's lifetime (cache efficacy, fan-out)."""

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    deduplicated: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for JSON reports)."""
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "deduplicated": self.deduplicated,
        }


@dataclass
class RunExecutor:
    """Maps :class:`RunSpec` lists to :class:`RunResult` lists.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs serially in-process,
        preserving the historical execution path exactly.
    cache_dir:
        Directory for the content-addressed result cache; ``None``
        (default) disables caching.  Created on first write.
    cache_version:
        Version string folded into cache digests; defaults to the
        installed package version.  Exposed so tests can model a
        version bump without reinstalling.
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    cache_version: Optional[str] = None
    stats: ExecutorStats = field(default_factory=ExecutorStats)

    def __post_init__(self) -> None:
        self.jobs = max(1, int(self.jobs))
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        if self.cache_version is None:
            from .. import __version__

            self.cache_version = __version__

    # -- public API ------------------------------------------------------

    def run(self, spec: RunSpec) -> RunResult:
        """Run (or fetch) a single spec."""
        return self.map([spec])[0]

    def map(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Run every spec, returning results in spec order.

        Cached results are loaded first; the remaining specs run
        serially (``jobs=1``) or across a process pool, then populate
        the cache.  Duplicate specs execute once.
        """
        specs = list(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)

        # Deduplicate: first index holding each distinct spec runs it.
        primary: Dict[RunSpec, int] = {}
        pending: List[int] = []
        for i, spec in enumerate(specs):
            if spec in primary:
                self.stats.deduplicated += 1
                continue
            primary[spec] = i
            cached = self._cache_load(spec)
            if cached is not None:
                self.stats.cache_hits += 1
                results[i] = cached
            else:
                pending.append(i)

        if pending:
            fresh = self._execute_all([specs[i] for i in pending])
            for i, result in zip(pending, fresh):
                results[i] = result
                if self.cache_dir is not None:
                    self.stats.cache_misses += 1
                    self._cache_store(specs[i], result)
            self.stats.executed += len(pending)

        for i, spec in enumerate(specs):
            if results[i] is None:
                results[i] = results[primary[spec]]
        return results

    # -- execution -------------------------------------------------------

    def _execute_all(self, specs: List[RunSpec]) -> List[RunResult]:
        """Run specs serially or across the process pool."""
        if self.jobs == 1 or len(specs) == 1:
            return [execute_spec(spec) for spec in specs]
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(execute_spec, specs))

    # -- cache -----------------------------------------------------------

    def _cache_path(self, spec: RunSpec) -> Path:
        return self.cache_dir / f"{spec.digest(version=self.cache_version)}.pkl"

    def _cache_load(self, spec: RunSpec) -> Optional[RunResult]:
        if self.cache_dir is None:
            return None
        path = self._cache_path(spec)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            # A truncated or stale entry is a miss, not an error.
            return None

    def _cache_store(self, spec: RunSpec, result: RunResult) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(spec)
        # Write-then-rename so concurrent processes never observe a
        # partial pickle (os.replace is atomic on POSIX and Windows).
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
