"""Shared measurement boilerplate over :class:`RunResult` traces.

Every experiment derives its table rows from the same handful of
trace-window reductions — "mean of the last 30 s", "settled duty over
the second half", "least-squares slope of the final quarter".  Before
the runtime layer each module re-spelled these against raw traces;
:class:`Measure` centralizes them so a row builder reads as the
quantity it reports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.cluster import RunResult
from ..sim.trace import Trace

__all__ = [
    "Measure",
    "late_quarter_slope",
    "first_rise_delay",
]


def late_quarter_slope(times: np.ndarray, values: np.ndarray) -> float:
    """Least-squares slope (units/s) over the final quarter of a series.

    The paper's "still climbing vs stabilized" contrast (Figure 9):
    positive means the quantity was still rising when the run ended.
    Returns 0 for series too short to fit.
    """
    n = len(times)
    if n < 8:
        return 0.0
    tail = slice(3 * n // 4, n)
    t = times[tail]
    v = values[tail]
    t0 = t - t.mean()
    denom = float(np.sum(t0 * t0))
    if denom <= 0:
        return 0.0
    return float(np.sum(t0 * (v - v.mean())) / denom)


def first_rise_delay(
    times: np.ndarray,
    values: np.ndarray,
    step_time: float,
    rise: float = 0.05,
) -> float:
    """Seconds after ``step_time`` until the series exceeds its pre-step
    level by ``rise``; inf if it never does.

    Used by the window-size ablation to time the fan's reaction to a
    Type-I (sudden) load step.
    """
    before = values[times < step_time]
    base = float(before[-1]) if before.size else float(values[0])
    after_mask = times >= step_time
    t_after = times[after_mask]
    v_after = values[after_mask]
    risen = np.where(v_after >= base + rise)[0]
    if risen.size == 0:
        return float("inf")
    return float(t_after[int(risen[0])] - step_time)


class Measure:
    """Window/metric reductions over one run's standard trace set.

    Parameters
    ----------
    result:
        The run to measure.
    node:
        Default node index for all signal lookups (overridable per
        call with ``node=``).
    """

    def __init__(self, result: RunResult, node: int = 0) -> None:
        self.result = result
        self.node = node

    @property
    def t_end(self) -> float:
        """The run's execution time, s (the window anchors below)."""
        return self.result.execution_time

    def trace(self, signal: str, node: Optional[int] = None) -> Trace:
        """The ``node{i}.{signal}`` trace (temp/duty/rpm/freq_ghz/power/util)."""
        i = self.node if node is None else node
        return self.result.traces[f"node{i}.{signal}"]

    def window_mean(
        self,
        signal: str,
        t0: float,
        t1: float,
        node: Optional[int] = None,
    ) -> float:
        """Mean of ``signal`` over ``[t0, t1]``."""
        return self.trace(signal, node).window(t0, t1).mean()

    def final_mean(
        self,
        signal: str = "temp",
        seconds: float = 30.0,
        node: Optional[int] = None,
    ) -> float:
        """Mean of the last ``seconds`` of the run — the stabilized level."""
        return self.window_mean(signal, self.t_end - seconds, self.t_end, node)

    def late_mean(self, signal: str = "duty", node: Optional[int] = None) -> float:
        """Mean over the second half of the run — the settled level."""
        return self.window_mean(signal, self.t_end / 2, self.t_end, node)

    def mean(self, signal: str = "temp", node: Optional[int] = None) -> float:
        """Whole-run mean of ``signal``."""
        return self.trace(signal, node).mean()

    def peak(self, signal: str = "temp", node: Optional[int] = None) -> float:
        """Whole-run maximum of ``signal``."""
        return self.trace(signal, node).max()

    def late_slope(self, signal: str = "temp", node: Optional[int] = None) -> float:
        """Final-quarter least-squares slope of ``signal``, units/s."""
        trace = self.trace(signal, node)
        return late_quarter_slope(
            np.asarray(trace.times), np.asarray(trace.values)
        )
