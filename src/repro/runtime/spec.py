"""Declarative run specifications.

A :class:`RunSpec` *names* one cluster simulation — platform size,
seed, workload, governor rigging, optional ambient model and fault
injection — without holding any live objects, so it is frozen,
hashable, comparable and picklable.  Specs are the currency of the
runtime layer: experiments build lists of them and hand the lists to a
:class:`~repro.runtime.executor.RunExecutor`, which maps each spec to a
:class:`~repro.cluster.cluster.RunResult` (serially, in a process
pool, or out of an on-disk cache).

Workloads, rigs and ambients are referenced **by registry name** (see
the ``WORKLOAD_REGISTRY`` / ``RIG_REGISTRY`` / ``AMBIENT_REGISTRY``
tables in :mod:`repro.experiments.platform`); parameters are frozen to
sorted ``(key, value)`` tuples so a spec's hash is stable across
processes and sessions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError

__all__ = [
    "DEFAULT_SEED",
    "Params",
    "FaultSpec",
    "RigSpec",
    "RunSpec",
    "freeze_params",
    "specs_table",
]

#: Seed all paper-reproduction runs use unless overridden.
DEFAULT_SEED = 20100913

#: Frozen parameter mapping: sorted ``(key, value)`` pairs.
Params = Tuple[Tuple[str, Any], ...]


def _freeze_value(value: Any) -> Any:
    """Recursively convert ``value`` to a hashable equivalent."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        if isinstance(value, (set, frozenset)):
            try:
                items = sorted(value)
            except TypeError:
                # A mixed-type set has no canonical order, so it has no
                # canonical (digest-stable) frozen form.
                raise ConfigurationError(
                    f"spec parameter set {value!r} mixes unorderable "
                    "types; sets must be uniformly orderable to freeze "
                    "deterministically"
                ) from None
        else:
            items = value
        return tuple(_freeze_value(v) for v in items)
    if isinstance(value, float) and not math.isfinite(value):
        # nan breaks spec equality/dedup (nan != nan) and both nan and
        # inf have no strict-JSON token in canonical().
        raise ConfigurationError(
            f"spec parameter value {value!r} is not finite; specs must "
            "be built from finite numbers"
        )
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"spec parameter value {value!r} ({type(value).__name__}) is not "
        "a primitive; specs must be built from hashable primitives"
    )


def freeze_params(params: Optional[Mapping[str, Any]]) -> Params:
    """Freeze a parameter dict into sorted, hashable key/value pairs."""
    if not params:
        return ()
    return tuple(sorted((str(k), _freeze_value(v)) for k, v in params.items()))


@dataclass(frozen=True)
class RigSpec:
    """One governor rigging (or ambient model) by registry name.

    Attributes
    ----------
    name:
        Key into the rig/ambient registry of
        :mod:`repro.experiments.platform`.
    params:
        Frozen keyword arguments for the registry factory.
    """

    name: str
    params: Params = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "RigSpec":
        """Build a rig spec from keyword arguments."""
        return cls(name=name, params=freeze_params(params))


@dataclass(frozen=True)
class FaultSpec:
    """An injected fault and the fixed horizon it is observed over.

    Attributes
    ----------
    kind:
        Fault type; currently only ``"fan_fail"`` (the rotor coasts to
        a stop and PWM commands are ignored).
    node:
        Index of the victim node.
    at:
        Simulated seconds into the run at which the fault fires.
    horizon:
        Total simulated seconds the scenario runs (the job is sized to
        outlast it); the run does not wait for job completion.
    """

    kind: str = "fan_fail"
    node: int = 0
    at: float = 40.0
    horizon: float = 420.0


def _as_rig(entry: Union[str, "RigSpec", Tuple[str, Mapping[str, Any]]]) -> RigSpec:
    """Coerce a rigs-list entry into a :class:`RigSpec`."""
    if isinstance(entry, RigSpec):
        return entry
    if isinstance(entry, str):
        return RigSpec(name=entry)
    name, params = entry
    return RigSpec(name=name, params=freeze_params(params))


# -- JSON wire-form parsing helpers (RunSpec.from_json) ----------------------


def _typed(data: Mapping[str, Any], key: str, kind: type, default: Any) -> Any:
    """``data[key]`` checked against ``kind`` (``default`` when absent)."""
    value = data.get(key, default)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ConfigurationError(
            f"spec {key!r} must be {kind.__name__}, got {value!r} "
            f"({type(value).__name__})"
        )
    return value


def _int_field(data: Mapping[str, Any], key: str, default: int) -> int:
    return _typed(data, key, int, default)


def _float_field(data: Mapping[str, Any], key: str, default: float) -> float:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"spec {key!r} must be a number, got {value!r} "
            f"({type(value).__name__})"
        )
    return float(value)


def _bool_field(data: Mapping[str, Any], key: str) -> bool:
    value = data.get(key, False)
    if not isinstance(value, bool):
        raise ConfigurationError(
            f"spec {key!r} must be a boolean, got {value!r} "
            f"({type(value).__name__})"
        )
    return value


def _optional_str_field(data: Mapping[str, Any], key: str) -> Optional[str]:
    value = data.get(key)
    if value is not None and not isinstance(value, str):
        raise ConfigurationError(
            f"spec {key!r} must be a string or null, got {value!r} "
            f"({type(value).__name__})"
        )
    return value


def _params_from_json(raw: Any, where: str) -> Params:
    """Parse parameters from the pair-list or object wire shapes."""
    if isinstance(raw, Mapping):
        return freeze_params(raw)
    if isinstance(raw, (list, tuple)):
        pairs = {}
        for entry in raw:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
            ):
                raise ConfigurationError(
                    f"spec {where} entries must be [\"key\", value] pairs, "
                    f"got {entry!r}"
                )
            pairs[entry[0]] = entry[1]
        return freeze_params(pairs)
    raise ConfigurationError(
        f"spec {where} must be an object or a list of pairs, got {raw!r} "
        f"({type(raw).__name__})"
    )


def _rig_from_json(raw: Any, where: str) -> RigSpec:
    """Parse one rig/ambient entry (``"name"`` or ``{"name", "params"}``)."""
    if isinstance(raw, str):
        return RigSpec(name=raw)
    if not isinstance(raw, Mapping):
        raise ConfigurationError(
            f"spec {where} must be a rig name or object, got {raw!r} "
            f"({type(raw).__name__})"
        )
    unknown = sorted(set(raw) - {"name", "params"})
    if unknown:
        raise ConfigurationError(
            f"spec {where} has unknown key(s) {unknown}; expected "
            "'name' and optional 'params'"
        )
    name = raw.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"spec {where} 'name' must be a non-empty string, got {name!r}"
        )
    return RigSpec(name=name, params=_params_from_json(
        raw.get("params", ()), f"{where}.params"
    ))


def _fault_from_json(raw: Any) -> Optional[FaultSpec]:
    """Parse the optional fault object."""
    if raw is None:
        return None
    if not isinstance(raw, Mapping):
        raise ConfigurationError(
            f"spec 'fault' must be an object or null, got {raw!r} "
            f"({type(raw).__name__})"
        )
    unknown = sorted(set(raw) - {"kind", "node", "at", "horizon"})
    if unknown:
        raise ConfigurationError(
            f"spec 'fault' has unknown key(s) {unknown}; expected "
            "kind/node/at/horizon"
        )
    kind = raw.get("kind", "fan_fail")
    if not isinstance(kind, str) or not kind:
        raise ConfigurationError(
            f"spec fault 'kind' must be a non-empty string, got {kind!r}"
        )
    try:
        return FaultSpec(
            kind=kind,
            node=_int_field(raw, "node", default=0),
            at=_float_field(raw, "at", default=40.0),
            horizon=_float_field(raw, "horizon", default=420.0),
        )
    except ConfigurationError as exc:
        raise ConfigurationError(f"in spec 'fault': {exc}") from None


@dataclass(frozen=True)
class RunSpec:
    """A complete, declarative name for one cluster simulation.

    Attributes
    ----------
    workload:
        Workload registry key (e.g. ``"bt_b_4"``).
    workload_params:
        Frozen workload factory arguments (e.g. iteration count).
    rigs:
        Governor riggings applied in order (each rigs every node).
    n_nodes / seed:
        Platform size and root seed.
    ambient:
        Optional ambient registry entry (e.g. a rack inlet gradient).
    fault:
        Optional fault injection; when set the run follows the fixed
        fault horizon instead of running the job to completion.
    timeout:
        Hard ceiling on simulated seconds for job-completion runs.
    tail:
        Extra simulated seconds after job completion.
    quick:
        Marks shortened (smoke-test) configurations.  Carried so cache
        entries and reports can distinguish quick sweeps from full
        ones even when parameter values coincide.
    telemetry:
        Run with a live :class:`~repro.telemetry.MetricsRegistry` so
        the result carries decision provenance and a metrics snapshot.
        Part of the spec (and hence the digest): a telemetry run's
        result object differs from a bare run's, so they must not
        share cache entries — even though the *simulated physics* are
        identical (telemetry is observation-only, which the tests
        assert).
    fastpath:
        Run through the :mod:`repro.fastpath` step compiler instead of
        the reference engine loop.  The compiled loop is byte-identical
        to the reference (the equivalence suite enforces it), but the
        flag is still part of the spec — and hence the digest — so a
        cache can never silently mix the two execution paths.
    platform:
        Optional platform registry key (see
        :data:`repro.platform.PLATFORM_REGISTRY`) naming the silicon
        the run simulates.  ``None`` — the default — runs the paper's
        testbed part through the exact pre-platform code path and is
        *omitted* from :meth:`canonical`, so specs that never name a
        platform keep their historical digests and cache keys
        byte-for-byte.  Any explicit value (including the default
        part's own name, ``"athlon64_4000"``) is digest-affecting.
    """

    workload: str
    workload_params: Params = ()
    rigs: Tuple[RigSpec, ...] = ()
    n_nodes: int = 4
    seed: int = DEFAULT_SEED
    ambient: Optional[RigSpec] = None
    fault: Optional[FaultSpec] = None
    timeout: float = 3600.0
    tail: float = 0.0
    quick: bool = False
    telemetry: bool = False
    fastpath: bool = False
    platform: Optional[str] = None

    @classmethod
    def of(
        cls,
        workload: str,
        params: Optional[Mapping[str, Any]] = None,
        *,
        rigs: Sequence[Union[str, RigSpec, Tuple[str, Mapping[str, Any]]]] = (),
        n_nodes: int = 4,
        seed: int = DEFAULT_SEED,
        ambient: Optional[Union[RigSpec, Tuple[str, Mapping[str, Any]]]] = None,
        fault: Optional[FaultSpec] = None,
        timeout: float = 3600.0,
        tail: float = 0.0,
        quick: bool = False,
        telemetry: bool = False,
        fastpath: bool = False,
        platform: Optional[str] = None,
    ) -> "RunSpec":
        """Ergonomic constructor taking plain dicts for all parameters."""
        return cls(
            workload=workload,
            workload_params=freeze_params(params),
            rigs=tuple(_as_rig(r) for r in rigs),
            n_nodes=n_nodes,
            seed=seed,
            ambient=None if ambient is None else _as_rig(ambient),
            fault=fault,
            timeout=timeout,
            tail=tail,
            quick=quick,
            telemetry=telemetry,
            fastpath=fastpath,
            platform=platform,
        )

    def to_json(self) -> str:
        """The public JSON wire form of this spec.

        Exactly :meth:`canonical` — the digest input *is* the wire
        form, so a client can compute the digest of what it POSTs and
        the server recovers an equal spec with :meth:`from_json`:
        ``RunSpec.from_json(spec.to_json()) == spec`` always holds.
        """
        return self.canonical()

    @classmethod
    def from_json(cls, payload: Union[str, bytes]) -> "RunSpec":
        """Parse the JSON wire form back into a spec.

        This is the request-validation seam of the serving layer
        (``POST /v1/runs`` bodies land here): every malformed payload —
        bad JSON, wrong top-level type, unknown or missing fields,
        wrong field types, malformed rigs/fault/params — raises
        :class:`~repro.errors.ConfigurationError` with a message naming
        the offending field, never a bare ``KeyError``/``TypeError``.

        Accepted parameter shapes are the canonical pair list
        (``[["key", value], ...]``) *and* a plain JSON object
        (``{"key": value}``) — hand-written clients get the friendly
        form, round-trips get exactness.  Numeric protocol fields
        (``timeout``, ``tail``, fault ``at``/``horizon``) are coerced
        to float so ``3600`` and ``3600.0`` name the same spec (and
        hence the same digest).
        """
        if isinstance(payload, bytes):
            try:
                payload = payload.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise ConfigurationError(
                    f"spec payload is not valid UTF-8: {exc}"
                ) from None
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"spec payload is not valid JSON: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise ConfigurationError(
                "spec payload must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown spec field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        if "workload" not in data:
            raise ConfigurationError("spec payload is missing 'workload'")
        workload = data["workload"]
        if not isinstance(workload, str) or not workload:
            raise ConfigurationError(
                f"spec 'workload' must be a non-empty string, got {workload!r}"
            )
        try:
            return cls(
                workload=workload,
                workload_params=_params_from_json(
                    data.get("workload_params", ()), "workload_params"
                ),
                rigs=tuple(
                    _rig_from_json(entry, f"rigs[{i}]")
                    for i, entry in enumerate(
                        _typed(data, "rigs", list, default=[])
                    )
                ),
                n_nodes=_int_field(data, "n_nodes", default=4),
                seed=_int_field(data, "seed", default=DEFAULT_SEED),
                ambient=(
                    None
                    if data.get("ambient") is None
                    else _rig_from_json(data["ambient"], "ambient")
                ),
                fault=_fault_from_json(data.get("fault")),
                timeout=_float_field(data, "timeout", default=3600.0),
                tail=_float_field(data, "tail", default=0.0),
                quick=_bool_field(data, "quick"),
                telemetry=_bool_field(data, "telemetry"),
                fastpath=_bool_field(data, "fastpath"),
                platform=_optional_str_field(data, "platform"),
            )
        except ConfigurationError:
            raise
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed spec payload: {exc}") from None

    def canonical(self) -> str:
        """Deterministic JSON form (the digest input; also debuggable).

        A ``None`` platform is dropped from the rendering: the field
        was added after digests of platform-less specs were already
        populating on-disk caches, and ``platform=None`` means "the
        exact pre-platform behaviour", so those specs must keep their
        historical canonical form byte-for-byte.
        """
        data = dataclasses.asdict(self)
        if data["platform"] is None:
            del data["platform"]
        return json.dumps(data, sort_keys=True)

    def digest(self, version: Optional[str] = None) -> str:
        """Content hash naming this spec (plus the package ``version``).

        Two specs share a digest iff every field matches; bumping the
        package version invalidates every cached digest, since any code
        change may recalibrate results.
        """
        if version is None:
            from .. import __version__ as version
        h = hashlib.sha256()
        h.update(f"repro/{version}\n".encode("utf-8"))
        h.update(self.canonical().encode("utf-8"))
        return h.hexdigest()[:40]

    def describe(self) -> str:
        """Short human-readable label (progress lines, bench reports)."""
        rig_names = "+".join(r.name for r in self.rigs) or "bare"
        platform = f"/{self.platform}" if self.platform is not None else ""
        return (
            f"{self.workload}@{self.n_nodes}n/{rig_names}"
            f"/seed={self.seed}{platform}{'/quick' if self.quick else ''}"
        )


def specs_table(specs: Iterable[RunSpec]) -> str:
    """One :meth:`RunSpec.describe` line per spec (debugging helper)."""
    return "\n".join(s.describe() for s in specs)
