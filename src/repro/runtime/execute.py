"""Materialize a :class:`RunSpec` into a live simulation and run it.

:func:`execute_spec` is the single bridge from the declarative layer to
the simulator: it resolves registry names
(:mod:`repro.experiments.platform`), assembles the cluster, riggs the
governors, builds the workload and runs the protocol the spec calls
for — job-to-completion (the normal case) or a fixed fault horizon.

It is a module-level function of one picklable argument precisely so
:class:`~repro.runtime.executor.RunExecutor` can ship it to worker
processes; determinism across process boundaries follows from the
simulator being a pure function of the spec (seeded named RNG streams,
no ambient entropy — enforced by ``repro.lint`` RPR001).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from ..cluster.cluster import Cluster, RunResult
from ..config import ClusterConfig
from ..errors import ConfigurationError
from ..telemetry.registry import MetricsRegistry
from .spec import RunSpec

__all__ = ["execute_spec", "execute_specs_batch"]


def _resolve(registry: Mapping, kind: str, name: str):
    """Look up ``name`` in a registry, failing with the available keys."""
    try:
        return registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown {kind} {name!r}; available: {sorted(registry)}"
        ) from None


def _build_run(spec: RunSpec):
    """Materialize ``spec`` into a ready-to-run ``(cluster, job)`` pair.

    The import of :mod:`repro.experiments.platform` is deferred to call
    time: the experiments layer imports the runtime layer, so the
    registries must be resolved lazily to keep the import graph acyclic
    (and so worker processes resolve them against their own fresh
    interpreter state).
    """
    from ..experiments import platform as registries

    ambient_factory = None
    if spec.ambient is not None:
        maker = _resolve(
            registries.AMBIENT_REGISTRY, "ambient model", spec.ambient.name
        )
        ambient_factory = maker(spec.n_nodes, **dict(spec.ambient.params))

    # A spec without a platform builds the exact pre-platform config —
    # the byte-identity guarantee for every historical spec.  A named
    # platform swaps in that silicon's node config (same chassis).
    if spec.platform is None:
        platform_spec = None
        config = ClusterConfig(n_nodes=spec.n_nodes, seed=spec.seed)
    else:
        from ..platform import resolve_platform

        platform_spec = resolve_platform(spec.platform)
        config = ClusterConfig(
            n_nodes=spec.n_nodes,
            seed=spec.seed,
            node=platform_spec.node_config(),
        )

    cluster = Cluster(
        config,
        ambient_factory=ambient_factory,
        telemetry=MetricsRegistry() if spec.telemetry else None,
        fastpath=spec.fastpath,
        platform=platform_spec,
    )
    for rig in spec.rigs:
        attach = _resolve(registries.RIG_REGISTRY, "rig", rig.name)
        attach(cluster, **dict(rig.params))

    make_job = _resolve(registries.WORKLOAD_REGISTRY, "workload", spec.workload)
    job = make_job(cluster, **dict(spec.workload_params))
    return cluster, job


def execute_spec(spec: RunSpec) -> RunResult:
    """Run the simulation a spec names and return its result."""
    cluster, job = _build_run(spec)
    if spec.fault is None:
        return cluster.run_job(job, timeout=spec.timeout, tail=spec.tail)
    return _execute_fault(cluster, job, spec)


def execute_specs_batch(specs: Sequence[RunSpec]) -> List[RunResult]:
    """Run several specs in lockstep through the batched fastpath.

    Each spec gets its own cluster, job and telemetry registry exactly
    as :func:`execute_spec` would build them; only the per-tick thermal
    integration is shared (one stacked solve across every node of every
    run — see :mod:`repro.fastpath.batch`).  Results are bitwise
    identical to running each spec through :func:`execute_spec` with
    ``fastpath=True``, which is what makes it legal for the executor to
    populate the per-spec content-addressed cache from a batched run.

    Callers are expected to pass specs that group (same workload shape
    and tick schedule, no fault protocol); anything the lockstep path
    cannot handle — down to a mid-run divergence or budget exhaustion —
    makes this function fall back to serial per-spec execution, which
    also reproduces the serial path's exact error behaviour.
    """
    from ..fastpath.batch import run_jobs_batch

    specs = list(specs)
    if len(specs) < 2:
        return [execute_spec(spec) for spec in specs]
    try:
        pairs = [_build_run(spec) for spec in specs]
        return run_jobs_batch(
            clusters=[cluster for cluster, _ in pairs],
            jobs=[job for _, job in pairs],
            timeouts=[spec.timeout for spec in specs],
            tails=[spec.tail for spec in specs],
        )
    except Exception:
        # Anything at all — Unbatchable, a simulation error, a foreign
        # component — defers to the serial path, which either succeeds
        # or raises the reference error for the offending spec.
        return [execute_spec(spec) for spec in specs]


def _execute_fault(cluster: Cluster, job, spec: RunSpec) -> RunResult:
    """The fault protocol: run to ``at``, inject, ride out the horizon."""
    fault = spec.fault
    if fault.kind != "fan_fail":
        raise ConfigurationError(f"unknown fault kind {fault.kind!r}")
    cluster.bind_job(job)
    cluster.run_for(fault.at)
    victim = cluster.node(fault.node)
    victim.fail_fan(t=cluster.engine.clock.now)
    cluster.run_for(fault.horizon - fault.at)
    return RunResult(
        execution_time=fault.horizon,
        traces=cluster.traces,
        events=cluster.events,
        average_power=[n.meter.average_power for n in cluster.nodes],
        energy_joules=[n.meter.energy_joules for n in cluster.nodes],
        job_name=job.name,
        node_shutdown=[n.is_shutdown for n in cluster.nodes],
        retired_cycles=[float(n.core.retired_cycles) for n in cluster.nodes],
        telemetry=(
            cluster.telemetry.snapshot() if cluster.telemetry.enabled else None
        ),
    )
