"""repro — unified in-band and out-of-band dynamic thermal control.

A full reproduction of *"System-level, Unified In-band and Out-of-band
Dynamic Thermal Control"* (Dong Li, Rong Ge, Kirk Cameron, ICPP 2010),
including the simulated power-aware cluster the original ran on.

Quickstart
----------

.. code-block:: python

    from repro import Cluster, ClusterConfig, Policy
    from repro.governors import DynamicFanControl, TDvfs
    from repro.workloads import bt_b_4

    cluster = Cluster(ClusterConfig(n_nodes=4))
    policy = Policy(pp=50)
    for node in cluster.nodes:
        cluster.add_governor(node, DynamicFanControl(
            node.make_fan_driver(max_duty=0.75), policy,
            events=cluster.events))
        cluster.add_governor(node, TDvfs(
            node.dvfs, policy, events=cluster.events))
    result = cluster.run_job(bt_b_4(rng=cluster.rngs.stream("wl")))
    print(result.execution_time, result.cluster_average_power)

Layering (bottom → top):

* physical substrates: :mod:`repro.thermal`, :mod:`repro.cpu`,
  :mod:`repro.fan`, :mod:`repro.i2c`
* machinery: :mod:`repro.sim`, :mod:`repro.cluster`,
  :mod:`repro.workloads`
* the paper's contribution: :mod:`repro.core`
* complete daemons: :mod:`repro.governors`
* measurement & reproduction: :mod:`repro.analysis`,
  :mod:`repro.runtime`, :mod:`repro.experiments`

For sweep-shaped work, prefer the declarative layer over hand-rolled
loops (see ``docs/architecture.md``)::

    from repro import RunExecutor, RunSpec

    spec = RunSpec.of("bt_b_4", {"iterations": 200},
                      rigs=[("dynamic_fan", {"pp": 50})])
    result = RunExecutor(jobs=4).run(spec)
"""

from .cluster import Cluster, Node, RunResult
from .config import ClusterConfig, NodeConfig
from .core import (
    Policy,
    ThermalControlArray,
    TwoLevelWindow,
    UnifiedThermalController,
)
from .errors import ReproError
from .platform import (
    DEFAULT_PLATFORM,
    PLATFORM_REGISTRY,
    CoreClass,
    PlatformSpec,
    resolve_platform,
)
from .telemetry import (
    MetricsRegistry,
    TelemetrySnapshot,
    export_jsonl,
    export_prometheus,
    export_summary,
)

__version__ = "1.0.0"

from .runtime import RunExecutor, RunSpec  # noqa: E402  (needs __version__)

__all__ = [
    "__version__",
    "Cluster",
    "Node",
    "RunResult",
    "RunSpec",
    "RunExecutor",
    "ClusterConfig",
    "NodeConfig",
    "CoreClass",
    "PlatformSpec",
    "PLATFORM_REGISTRY",
    "DEFAULT_PLATFORM",
    "resolve_platform",
    "MetricsRegistry",
    "Policy",
    "TelemetrySnapshot",
    "ThermalControlArray",
    "TwoLevelWindow",
    "UnifiedThermalController",
    "ReproError",
    "export_jsonl",
    "export_prometheus",
    "export_summary",
]
