"""The in-band actuator: dynamic voltage and frequency scaling.

:class:`Dvfs` owns the processor's current P-state and is the *only*
way governors change it.  It models the two properties the paper's
evaluation leans on:

* **Transition cost** — a P-state switch stalls the pipeline for a
  short latency (voltage ramp + PLL relock, ~100 µs on K8).  During the
  stall no work retires, so pathological governors that flap between
  states (CPUSPEED in Table 1 flaps 101–139 times) pay a real, if
  small, performance tax.
* **Change accounting** — every transition is counted and logged;
  Table 1's "# freq changes" column and the trigger-time analysis of
  Figure 10 come straight from this log.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ActuatorError
from ..sim.events import EventLog
from ..units import require_non_negative
from .pstate import PState, PStateTable

__all__ = ["Dvfs", "GangedDvfs"]


class Dvfs:
    """P-state switch with latency modelling and change accounting.

    Parameters
    ----------
    table:
        The processor's P-state ladder (fastest first).
    transition_latency:
        Pipeline stall per switch, seconds.
    events:
        Optional event log; transitions are emitted as
        ``dvfs.change`` events.
    name:
        Source name used in emitted events.
    """

    def __init__(
        self,
        table: PStateTable,
        transition_latency: float = 1.0e-4,
        events: Optional[EventLog] = None,
        name: str = "dvfs",
    ) -> None:
        self.table = table
        self.transition_latency = require_non_negative(
            transition_latency, "transition_latency"
        )
        self._events = events
        self.name = name
        self._index = 0
        self._change_count = 0
        self._stall_remaining = 0.0
        self._now = 0.0

    # -- state -----------------------------------------------------------

    @property
    def index(self) -> int:
        """Current P-state index (0 = fastest)."""
        return self._index

    @property
    def pstate(self) -> PState:
        """Current operating point."""
        return self.table[self._index]

    @property
    def frequency(self) -> float:
        """Current core clock in Hz."""
        return self.pstate.frequency

    @property
    def change_count(self) -> int:
        """Total number of P-state transitions so far."""
        return self._change_count

    @property
    def stalled_fraction_pending(self) -> float:
        """Seconds of pipeline stall not yet consumed by :meth:`consume_stall`."""
        return self._stall_remaining

    # -- actuation ------------------------------------------------------------

    def set_index(self, index: int, t: Optional[float] = None) -> bool:
        """Switch to P-state ``index``; returns True if a change occurred.

        Raises
        ------
        ActuatorError
            If ``index`` is outside the ladder.
        """
        if not 0 <= index < len(self.table):
            raise ActuatorError(
                f"P-state index {index} out of range [0, {len(self.table) - 1}]"
            )
        if index == self._index:
            return False
        old = self.pstate
        self._index = index
        self._change_count += 1
        self._stall_remaining += self.transition_latency
        when = self._now if t is None else t
        if self._events is not None:
            self._events.emit(
                when,
                "dvfs.change",
                self.name,
                old_ghz=old.frequency_ghz,
                new_ghz=self.pstate.frequency_ghz,
                old_index=self.table.index_of_frequency(old.frequency),
                new_index=index,
            )
        return True

    def set_frequency(self, frequency: float, t: Optional[float] = None) -> bool:
        """Switch to the P-state with the given frequency (Hz)."""
        return self.set_index(self.table.index_of_frequency(frequency), t)

    def step_down(self, t: Optional[float] = None) -> bool:
        """Move one P-state slower, if possible; returns True on change."""
        if self._index + 1 < len(self.table):
            return self.set_index(self._index + 1, t)
        return False

    def step_up(self, t: Optional[float] = None) -> bool:
        """Move one P-state faster, if possible; returns True on change."""
        if self._index > 0:
            return self.set_index(self._index - 1, t)
        return False

    # -- time ------------------------------------------------------------

    def note_time(self, t: float) -> None:
        """Inform the actuator of the current simulation time.

        Lets governors call :meth:`set_index` without threading time
        through every call site.
        """
        self._now = t

    def consume_stall(self, dt: float) -> float:
        """Consume up to ``dt`` seconds of pending transition stall.

        Returns the stall time actually consumed within this interval;
        the CPU core subtracts it from the time available for retiring
        work.
        """
        consumed = min(self._stall_remaining, dt)
        self._stall_remaining -= consumed
        return consumed


class GangedDvfs(Dvfs):
    """A lead DVFS domain that drags follower domains with it.

    Heterogeneous parts expose several DVFS domains (one per core
    class), but the paper's governors actuate a single ladder.  The
    lead domain (class 0) is what they see; every index change is
    propagated to each follower domain at the *proportionally
    equivalent* rung of its own ladder, so ladders of different
    lengths track together: lead index ``i`` of ``N`` maps to follower
    index ``round(i · (M−1)/(N−1))`` of ``M``.  Fastest maps to
    fastest, slowest to slowest — a PROCHOT clamp on the lead slams
    every class to its floor.

    Followers are ordinary :class:`Dvfs` objects with their own change
    accounting and event names; only the lead's events carry the
    ``node<i>.dvfs`` source the Table-1 change counts are drawn from.
    """

    def __init__(
        self,
        table: PStateTable,
        followers: Sequence[Dvfs] = (),
        transition_latency: float = 1.0e-4,
        events: Optional[EventLog] = None,
        name: str = "dvfs",
    ) -> None:
        super().__init__(
            table,
            transition_latency=transition_latency,
            events=events,
            name=name,
        )
        self.followers = tuple(followers)

    def set_index(self, index: int, t: Optional[float] = None) -> bool:
        changed = super().set_index(index, t)
        if changed:
            span = len(self.table) - 1
            for follower in self.followers:
                mapped = round(self._index * (len(follower.table) - 1) / span)
                follower.set_index(int(mapped), t)
        return changed

    def note_time(self, t: float) -> None:
        super().note_time(t)
        for follower in self.followers:
            follower.note_time(t)
