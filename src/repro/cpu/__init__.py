"""Processor substrate: P-states, DVFS actuation, power and execution.

* :mod:`repro.cpu.pstate` — frequency/voltage operating points,
  including the AMD Athlon64 4000+ ladder the paper's cluster exposes
  (2.4 / 2.2 / 2.0 / 1.8 / 1.0 GHz).
* :mod:`repro.cpu.dvfs` — the in-band actuator: switches P-states with
  transition latency and counts changes (Table 1's "# freq changes").
* :mod:`repro.cpu.power` — dynamic + leakage power model.
* :mod:`repro.cpu.core` — execution model: retires workload cycles at
  the current frequency and reports utilization.
"""

from .core import CpuCore
from .dvfs import Dvfs
from .power import CpuPowerModel, PowerParams
from .pstate import ATHLON64_4000, PState, PStateTable

__all__ = [
    "PState",
    "PStateTable",
    "ATHLON64_4000",
    "Dvfs",
    "PowerParams",
    "CpuPowerModel",
    "CpuCore",
]
