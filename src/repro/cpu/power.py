"""CPU power model.

The model is the textbook CMOS decomposition the paper itself invokes
("scaling down DVFS processor frequency cubically reduces power"):

.. math::

    P = P_{leak}(V, T) + u \\cdot C_{eff} V^2 f

* **Dynamic power** scales with utilization ``u``, effective switched
  capacitance ``C_eff``, supply voltage squared and frequency — since
  voltage falls with frequency along the P-state ladder, power falls
  roughly cubically with frequency.
* **Leakage** scales with voltage and (weakly, exponentially) with die
  temperature; the temperature feedback term is small but makes the
  thermal runaway direction physically correct.

Default constants are calibrated so an Athlon64 4000+ at 2.4 GHz/1.50 V
under full load dissipates ≈ 63 W (near its 89 W TDP ceiling, typical
HPC draw), and ≈ 11 W when idle at 1.0 GHz — consistent with the wall
powers of the paper's Table 1 once baseboard power is added.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import require_in_range, require_non_negative, require_positive
from .pstate import PState

__all__ = ["PowerParams", "CpuPowerModel"]


@dataclass(frozen=True)
class PowerParams:
    """Constants of the CPU power model.

    Attributes
    ----------
    c_eff:
        Effective switched capacitance in farads.  With the Athlon64
        ladder top point (2.4 GHz, 1.5 V), ``c_eff=1.10e-8`` gives
        ``u=1`` dynamic power ≈ 59 W.
    leak_ref:
        Leakage power at ``v_ref`` and ``t_ref``, W.
    v_ref:
        Reference voltage of ``leak_ref``, V.
    t_ref:
        Reference die temperature of ``leak_ref``, °C.
    leak_temp_scale:
        Exponential temperature coefficient of leakage, 1/K.  Silicon
        leakage roughly doubles every 20–30 K; 0.03/K doubles at 23 K.
    idle_floor:
        Power at zero utilization and the slowest P-state is at least
        this floor (clock distribution, caches), W.
    """

    c_eff: float = 1.10e-8
    leak_ref: float = 8.0
    v_ref: float = 1.50
    t_ref: float = 50.0
    leak_temp_scale: float = 0.03
    idle_floor: float = 3.0

    def __post_init__(self) -> None:
        require_positive(self.c_eff, "c_eff")
        require_non_negative(self.leak_ref, "leak_ref")
        require_positive(self.v_ref, "v_ref")
        require_non_negative(self.leak_temp_scale, "leak_temp_scale")
        require_non_negative(self.idle_floor, "idle_floor")


class CpuPowerModel:
    """Compute CPU power from P-state, utilization and die temperature."""

    def __init__(self, params: PowerParams | None = None) -> None:
        self.params = params if params is not None else PowerParams()

    def dynamic_power(self, pstate: PState, utilization: float) -> float:
        """Switching power ``u · C_eff · V² · f`` in watts."""
        u = require_in_range(utilization, 0.0, 1.0, "utilization")
        return u * self.params.c_eff * pstate.voltage**2 * pstate.frequency

    def leakage_power(self, pstate: PState, die_temperature: float) -> float:
        """Leakage in watts at the given voltage and die temperature.

        Scales linearly with ``V/V_ref`` (a mild simplification of the
        V·I_sub dependence) and exponentially with temperature.
        """
        p = self.params
        v_scale = pstate.voltage / p.v_ref
        t_scale = math.exp(p.leak_temp_scale * (die_temperature - p.t_ref))
        return p.leak_ref * v_scale * t_scale

    def power(
        self, pstate: PState, utilization: float, die_temperature: float
    ) -> float:
        """Total CPU power in watts (never below ``idle_floor``)."""
        total = self.dynamic_power(pstate, utilization) + self.leakage_power(
            pstate, die_temperature
        )
        return max(total, self.params.idle_floor)
