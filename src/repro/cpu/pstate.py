"""P-state (frequency/voltage operating point) tables.

A :class:`PStateTable` is an immutable, validated ladder of
:class:`PState` points ordered from the *fastest* (index 0) to the
*slowest* (highest index).  This is the cpufreq convention; note that
the paper's thermal-control-array convention is the opposite (ascending
cooling *effectiveness*, i.e. descending frequency), and the adapter in
:mod:`repro.core.actuator` performs that reversal explicitly.

``ATHLON64_4000`` reproduces the ladder of the paper's testbed
processor: 2.4, 2.2, 2.0, 1.8 and 1.0 GHz, with voltages taken from the
AMD Athlon64 (939) PowerNow! tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..errors import ConfigurationError
from ..units import ghz, require_positive, to_ghz

__all__ = ["PState", "PStateTable", "ATHLON64_4000"]


@dataclass(frozen=True, order=True)
class PState:
    """One DVFS operating point.

    Ordering is by ``(frequency, voltage)`` so sorting a list of
    P-states ascending gives slowest-first.

    Attributes
    ----------
    frequency:
        Core clock in Hz.
    voltage:
        Core supply in volts.
    """

    frequency: float
    voltage: float

    def __post_init__(self) -> None:
        require_positive(self.frequency, "frequency")
        require_positive(self.voltage, "voltage")
        if self.voltage > 2.5:
            raise ConfigurationError(
                f"voltage {self.voltage} V is implausibly high for CMOS"
            )

    @property
    def frequency_ghz(self) -> float:
        """Core clock in GHz."""
        return to_ghz(self.frequency)

    def __str__(self) -> str:
        return f"{self.frequency_ghz:.1f}GHz@{self.voltage:.2f}V"


class PStateTable:
    """Immutable fastest-first ladder of P-states.

    Parameters
    ----------
    pstates:
        Operating points; must be unique in frequency.  Any order is
        accepted; the table sorts fastest-first and requires voltage to
        be non-increasing as frequency decreases (a slower point never
        needs *more* voltage).
    """

    def __init__(self, pstates: Sequence[PState]) -> None:
        if len(pstates) < 2:
            raise ConfigurationError(
                "a DVFS-capable processor needs at least 2 P-states"
            )
        ordered = sorted(pstates, key=lambda p: -p.frequency)
        freqs = [p.frequency for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise ConfigurationError("duplicate P-state frequencies")
        for faster, slower in zip(ordered, ordered[1:]):
            if slower.voltage > faster.voltage:
                raise ConfigurationError(
                    f"P-state {slower} needs more voltage than the faster {faster}"
                )
        self._pstates: List[PState] = ordered

    def __len__(self) -> int:
        return len(self._pstates)

    def __getitem__(self, index: int) -> PState:
        return self._pstates[index]

    def __iter__(self) -> Iterator[PState]:
        return iter(self._pstates)

    @property
    def fastest(self) -> PState:
        """The highest-frequency point (index 0)."""
        return self._pstates[0]

    @property
    def slowest(self) -> PState:
        """The lowest-frequency point (last index)."""
        return self._pstates[-1]

    def index_of_frequency(self, frequency: float, tol: float = 1e6) -> int:
        """Index of the P-state whose frequency matches within ``tol`` Hz.

        Raises
        ------
        ConfigurationError
            If no P-state matches.
        """
        for i, p in enumerate(self._pstates):
            if abs(p.frequency - frequency) <= tol:
                return i
        raise ConfigurationError(
            f"no P-state at {frequency/1e9:.3f} GHz; ladder is "
            f"{[str(p) for p in self._pstates]}"
        )

    def frequencies_ghz(self) -> List[float]:
        """All frequencies in GHz, fastest first."""
        return [p.frequency_ghz for p in self._pstates]


#: The paper's AMD Athlon64 4000+ (San Diego, socket 939) PowerNow! ladder.
ATHLON64_4000 = PStateTable(
    [
        PState(frequency=ghz(2.4), voltage=1.50),
        PState(frequency=ghz(2.2), voltage=1.45),
        PState(frequency=ghz(2.0), voltage=1.40),
        PState(frequency=ghz(1.8), voltage=1.35),
        PState(frequency=ghz(1.0), voltage=1.10),
    ]
)
