"""CPU execution model.

:class:`CpuCore` glues three things together each simulation tick:

1. the :class:`~repro.cpu.dvfs.Dvfs` actuator (what frequency are we
   at, and is any transition stall pending?),
2. the workload rank bound to this core (how much of the tick was the
   core busy, given that frequency?), and
3. utilization accounting (cumulative busy seconds) that
   utilization-driven governors like CPUSPEED sample.

The core itself has no thermal or electrical knowledge — the node
wiring feeds its utilization into the power model and the power into
the thermal package.
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..errors import SimulationError
from ..units import require_in_range
from .dvfs import Dvfs

__all__ = ["RankInterface", "CpuCore"]


class RankInterface(Protocol):
    """What a workload rank must expose to run on a :class:`CpuCore`.

    Implementations live in :mod:`repro.workloads`.
    """

    def advance(self, dt: float, frequency: float) -> float:
        """Advance the rank by ``dt`` seconds at ``frequency`` Hz.

        Returns the fraction of ``dt`` during which the core was busy
        (utilization in [0, 1]).
        """
        ...

    @property
    def finished(self) -> bool:
        """True once the rank's program has completed."""
        ...


class _IdleRank:
    """Built-in rank used when no workload is bound: the core idles."""

    def advance(self, dt: float, frequency: float) -> float:
        return 0.0

    @property
    def finished(self) -> bool:
        return False


class CpuCore:
    """One processor core executing a workload rank under DVFS.

    Parameters
    ----------
    dvfs:
        The core's frequency actuator.
    name:
        Identifier for error messages.
    """

    def __init__(self, dvfs: Dvfs, name: str = "core") -> None:
        self.dvfs = dvfs
        self.name = name
        self._rank: RankInterface = _IdleRank()
        self._utilization = 0.0
        self._busy_seconds = 0.0
        self._elapsed = 0.0
        self._throttle = 0.0
        self._retired_cycles = 0.0

    def bind_rank(self, rank: RankInterface) -> None:
        """Attach a workload rank; replaces any previous binding."""
        self._rank = rank

    @property
    def utilization(self) -> float:
        """Utilization over the most recent tick, in [0, 1]."""
        return self._utilization

    @property
    def busy_seconds(self) -> float:
        """Cumulative busy time since construction, seconds.

        Governors that measure utilization over their own interval
        (CPUSPEED) snapshot this counter and diff it.
        """
        return self._busy_seconds

    @property
    def elapsed_seconds(self) -> float:
        """Cumulative stepped time, seconds."""
        return self._elapsed

    @property
    def retired_cycles(self) -> float:
        """Approximate work retired so far, in CPU cycles.

        Busy-time × frequency, accumulated per tick — the throughput
        proxy the emergency experiments use to compare how much *work*
        each control strategy salvaged, independent of wall time.
        """
        return self._retired_cycles

    @property
    def rank_finished(self) -> bool:
        """True when the bound rank has completed its program."""
        return self._rank.finished

    @property
    def throttle(self) -> float:
        """Current ACPI-style duty throttle fraction in [0, 1)."""
        return self._throttle

    def set_throttle(self, fraction: float) -> None:
        """Duty-throttle the core: ``fraction`` of each tick is gated off.

        Models ACPI processor throttling (T-states): the clock is gated
        for a fixed duty, so both progress *and* switching activity
        (hence dynamic power, via utilization) scale by
        ``1 - fraction``.  Used by the sleep-state extension governor.
        """
        self._throttle = require_in_range(fraction, 0.0, 0.9999, "throttle")

    def step(self, t: float, dt: float) -> None:
        """Advance one tick: consume DVFS stall, then run the rank."""
        if dt <= 0:
            raise SimulationError(f"core {self.name!r}: non-positive dt {dt!r}")
        self.dvfs.note_time(t)
        stall = self.dvfs.consume_stall(dt)
        dt_work = (dt - stall) * (1.0 - self._throttle)
        util_work = 0.0
        if dt_work > 0 and not self._rank.finished:
            util_work = require_in_range(
                self._rank.advance(dt_work, self.dvfs.frequency),
                0.0,
                1.0,
                f"utilization from rank on {self.name!r}",
            )
        # A stalled pipeline reads as busy to the OS (it is not idle),
        # so the stall contributes to utilization but not to progress.
        busy = util_work * dt_work + stall
        self._utilization = busy / dt
        self._busy_seconds += busy
        self._elapsed += dt
        self._retired_cycles += util_work * dt_work * self.dvfs.frequency
