"""The platform name registry: every silicon a run can name.

Like the rig/workload/ambient registries in
:mod:`repro.experiments.platform`, this table maps the string a
:class:`~repro.runtime.spec.RunSpec` carries in its ``platform`` field
to a frozen :class:`~repro.platform.spec.PlatformSpec`, and is wrapped
in :class:`types.MappingProxyType` so worker processes can never see a
parent-side mutation (the RPR013 worker-state-safety contract).

Registered parts
----------------
``athlon64_4000``
    The paper's testbed processor (§4.1): single-core AMD Athlon64
    4000+ with the 5-point PowerNow! ladder.  This is the behaviour a
    spec *without* a platform field gets — the entry exists so the
    default silicon is first-class, inspectable data like any other.
``multicore_8c_45nm``
    An Opteron-class 8-core homogeneous part at the 45 nm table
    baseline, backed by the N-core
    :class:`~repro.thermal.multicore.MulticorePackage` floorplan.
    Per-core constants are calibrated so the full-load package lands
    near the Athlon's ≈55 W envelope under the same chassis.
``multicore_8c_45nm_16nm``
    The same part carried 45 → 16 nm through the conservative scaling
    tables (:meth:`~repro.platform.spec.PlatformSpec.scaled`) — the
    technology-node ladder demonstrated end to end.
``biglittle_4p4e``
    A heterogeneous 22 nm mix: 4 performance cores on an 8-point
    ladder plus 4 efficiency cores on a 4-point ladder, per-class
    power tables — the Bhat-style big.LITTLE shape, with a slightly
    tighter safe band (t_max 80 °C).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from ..cpu.power import PowerParams
from ..cpu.pstate import ATHLON64_4000, PState
from ..errors import ConfigurationError
from ..units import ghz
from .spec import CoreClass, PlatformSpec

__all__ = [
    "PLATFORM_REGISTRY",
    "DEFAULT_PLATFORM",
    "resolve_platform",
]

#: Name of the platform a spec without a ``platform`` field runs on.
DEFAULT_PLATFORM = "athlon64_4000"


def _athlon64_4000() -> PlatformSpec:
    return PlatformSpec(
        name="athlon64_4000",
        description="AMD Athlon64 4000+ (San Diego, 939): the paper's testbed",
        core_classes=(
            CoreClass(
                name="k8",
                count=1,
                pstates=tuple(ATHLON64_4000),
                power=PowerParams(),
            ),
        ),
        tech_nm=90,
    )


def _multicore_8c_45nm() -> PlatformSpec:
    # Per-core full-load dynamic power ≈ 6 W at 2.6 GHz / 1.10 V:
    # c_eff = 6 / (1.10² · 2.6e9) ≈ 1.91e-9 F.  Eight cores plus
    # leakage total ≈ 55 W — the same chassis envelope as the Athlon.
    ladder = (
        PState(frequency=ghz(2.6), voltage=1.10),
        PState(frequency=ghz(2.2), voltage=1.05),
        PState(frequency=ghz(1.8), voltage=0.98),
        PState(frequency=ghz(1.4), voltage=0.90),
        PState(frequency=ghz(1.0), voltage=0.80),
    )
    return PlatformSpec(
        name="multicore_8c_45nm",
        description="Opteron-class 8-core homogeneous part, 45 nm baseline",
        core_classes=(
            CoreClass(
                name="c",
                count=8,
                pstates=ladder,
                power=PowerParams(
                    c_eff=1.91e-9,
                    leak_ref=0.60,
                    v_ref=1.10,
                    idle_floor=0.40,
                ),
            ),
        ),
        tech_nm=45,
        c_core=8.0,
        c_sink=200.0,
        r_core_sink=0.45,
        r_core_core=1.2,
    )


def _biglittle_4p4e() -> PlatformSpec:
    # Performance class: 8-point ladder, ≈9 W/core full-load dynamic at
    # 3.2 GHz / 1.00 V (c_eff = 9 / (1.00² · 3.2e9) ≈ 2.81e-9 F).
    perf = (
        PState(frequency=ghz(3.2), voltage=1.00),
        PState(frequency=ghz(2.9), voltage=0.96),
        PState(frequency=ghz(2.6), voltage=0.92),
        PState(frequency=ghz(2.3), voltage=0.88),
        PState(frequency=ghz(2.0), voltage=0.84),
        PState(frequency=ghz(1.7), voltage=0.79),
        PState(frequency=ghz(1.4), voltage=0.74),
        PState(frequency=ghz(1.1), voltage=0.70),
    )
    # Efficiency class: short 4-point ladder, ≈2.5 W/core full-load
    # dynamic at 2.0 GHz / 0.85 V (c_eff ≈ 1.73e-9 F).
    eff = (
        PState(frequency=ghz(2.0), voltage=0.85),
        PState(frequency=ghz(1.6), voltage=0.78),
        PState(frequency=ghz(1.2), voltage=0.72),
        PState(frequency=ghz(0.8), voltage=0.65),
    )
    return PlatformSpec(
        name="biglittle_4p4e",
        description="Heterogeneous 4 perf + 4 eff big.LITTLE mix, 22 nm",
        core_classes=(
            CoreClass(
                name="perf",
                count=4,
                pstates=perf,
                power=PowerParams(
                    c_eff=2.81e-9,
                    leak_ref=1.00,
                    v_ref=1.00,
                    idle_floor=0.40,
                ),
            ),
            CoreClass(
                name="eff",
                count=4,
                pstates=eff,
                power=PowerParams(
                    c_eff=1.73e-9,
                    leak_ref=0.30,
                    v_ref=0.85,
                    idle_floor=0.20,
                ),
            ),
        ),
        tech_nm=22,
        t_max=80.0,
        c_core=8.0,
        c_sink=200.0,
        r_core_sink=0.45,
        r_core_core=1.0,
    )


_MULTICORE_8C = _multicore_8c_45nm()

#: Platform name → frozen :class:`PlatformSpec` (read-only view).
PLATFORM_REGISTRY: Mapping[str, PlatformSpec] = MappingProxyType({
    "athlon64_4000": _athlon64_4000(),
    "multicore_8c_45nm": _MULTICORE_8C,
    "multicore_8c_45nm_16nm": _MULTICORE_8C.scaled(16, model="cons"),
    "biglittle_4p4e": _biglittle_4p4e(),
})


def resolve_platform(name: str) -> PlatformSpec:
    """Look up a platform by name, failing with the available keys."""
    try:
        return PLATFORM_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {name!r}; available: {sorted(PLATFORM_REGISTRY)}"
        ) from None
