"""Technology-node scaling tables for the 45 → 8 nm ladder.

The tables reproduce the published ITRS-derived and conservative
scaling trajectories popularized by the Lumos heterogeneous-computing
model (Wang & Skadron), which in turn digests the ITRS roadmap
editions contemporary with the paper: per node, a supply-voltage
scale, a frequency scale and a total-power scale, all relative to the
45 nm baseline, plus the base threshold voltage the DVFS lower bound
derives from.

Two model variants are carried:

* ``"itrs"`` — the optimistic ITRS trajectory (aggressive frequency
  growth that historically did not materialize past 22 nm),
* ``"cons"`` — the conservative trajectory (modest frequency gains,
  slower voltage scaling; the realistic default).

:func:`scale_pstates` applies a node-to-node transition to a DVFS
ladder: frequencies multiply by the frequency-scale ratio, voltages by
the supply ratio, with every point clamped to the near-threshold floor
of the target node (voltage cannot chase the scale below ``V_th`` —
the same lower bound Lumos imposes on its DVFS range).
:func:`scale_power_params` rescales the power-model constants so that
full-load dynamic power lands exactly on the published total-power
scale: the effective capacitance absorbs the residual
``power / (vdd² · freq)`` factor, and leakage scales with the power
ratio directly.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping, Tuple

from ..cpu.power import PowerParams
from ..cpu.pstate import PState
from ..errors import ConfigurationError

__all__ = [
    "TECH_NODES",
    "SCALING_MODELS",
    "VDD_SCALE",
    "FREQ_SCALE",
    "POWER_SCALE",
    "VTH_BASE",
    "vdd_floor",
    "node_ratios",
    "scale_pstates",
    "scale_power_params",
]

#: Feature sizes the tables cover, in nanometres (45 nm is the baseline).
TECH_NODES: Tuple[int, ...] = (45, 32, 22, 16, 11, 8)

#: The two scaling trajectories the tables distinguish.
SCALING_MODELS: Tuple[str, ...] = ("itrs", "cons")

#: Supply-voltage scale relative to 45 nm, per model (frozen so the
#: tables stay identical across worker processes).
VDD_SCALE: Mapping[str, Mapping[int, float]] = MappingProxyType({
    "itrs": MappingProxyType(
        {45: 1.0, 32: 0.93, 22: 0.84, 16: 0.75, 11: 0.68, 8: 0.62}
    ),
    "cons": MappingProxyType(
        {45: 1.0, 32: 0.93, 22: 0.88, 16: 0.86, 11: 0.84, 8: 0.84}
    ),
})

#: Peak-frequency scale relative to 45 nm, per model.
FREQ_SCALE: Mapping[str, Mapping[int, float]] = MappingProxyType({
    "itrs": MappingProxyType(
        {45: 1.0, 32: 1.09, 22: 2.38, 16: 3.21, 11: 4.17, 8: 3.85}
    ),
    "cons": MappingProxyType(
        {45: 1.0, 32: 1.10, 22: 1.19, 16: 1.25, 11: 1.30, 8: 1.34}
    ),
})

#: Full-load total-power scale relative to 45 nm, per model.
POWER_SCALE: Mapping[str, Mapping[int, float]] = MappingProxyType({
    "itrs": MappingProxyType(
        {45: 1.0, 32: 0.66, 22: 0.54, 16: 0.38, 11: 0.25, 8: 0.12}
    ),
    "cons": MappingProxyType(
        {45: 1.0, 32: 0.71, 22: 0.52, 16: 0.39, 11: 0.29, 8: 0.22}
    ),
})

#: Nominal threshold voltage per node, volts.
VTH_BASE: Mapping[int, float] = MappingProxyType({
    45: 0.3201,
    32: 0.2970,
    22: 0.2673,
    16: 0.2409,
    11: 0.2178,
    8: 0.1980,
})

#: Near-threshold guard band above ``V_th`` for the DVFS floor, volts.
_NTC_GUARD = 0.15


def _check_node(tech_nm: int) -> None:
    if tech_nm not in VTH_BASE:
        raise ConfigurationError(
            f"unknown technology node {tech_nm} nm; the scaling tables "
            f"cover {sorted(VTH_BASE)}"
        )


def _check_model(model: str) -> None:
    if model not in VDD_SCALE:
        raise ConfigurationError(
            f"unknown scaling model {model!r}; choose from {SCALING_MODELS}"
        )


def vdd_floor(tech_nm: int) -> float:
    """Lowest usable supply at ``tech_nm``: V_th plus a guard band, V.

    The guard band keeps the ladder out of the near-threshold regime
    where the simple ``C_eff V² f`` dynamic model stops holding.
    """
    _check_node(tech_nm)
    return VTH_BASE[tech_nm] + _NTC_GUARD


def node_ratios(
    from_nm: int, to_nm: int, model: str = "cons"
) -> Tuple[float, float, float]:
    """``(vdd, freq, power)`` multipliers for a ``from → to`` transition.

    Both endpoints must be in :data:`TECH_NODES`; transitions compose
    through the 45 nm baseline (``s(to) / s(from)`` per table).
    """
    _check_model(model)
    _check_node(from_nm)
    _check_node(to_nm)
    return (
        VDD_SCALE[model][to_nm] / VDD_SCALE[model][from_nm],
        FREQ_SCALE[model][to_nm] / FREQ_SCALE[model][from_nm],
        POWER_SCALE[model][to_nm] / POWER_SCALE[model][from_nm],
    )


def scale_pstates(
    pstates: Tuple[PState, ...], from_nm: int, to_nm: int, model: str = "cons"
) -> Tuple[PState, ...]:
    """Carry a DVFS ladder across a technology transition.

    Frequencies scale by the frequency ratio, voltages by the supply
    ratio; every voltage is clamped to :func:`vdd_floor` of the target
    node (clamping a tail of points to the same floor keeps the
    ladder's required voltage monotonicity intact).
    """
    vdd_r, freq_r, _ = node_ratios(from_nm, to_nm, model)
    floor = vdd_floor(to_nm)
    return tuple(
        PState(
            frequency=p.frequency * freq_r,
            voltage=max(p.voltage * vdd_r, floor),
        )
        for p in pstates
    )


def scale_power_params(
    params: PowerParams, from_nm: int, to_nm: int, model: str = "cons"
) -> PowerParams:
    """Carry power-model constants across a technology transition.

    ``C_eff`` absorbs the residual so that un-clamped full-load dynamic
    power scales by exactly the published power ratio
    (``power / (vdd² · freq)``); leakage and the idle floor scale with
    the power ratio, and the leakage reference voltage follows the
    supply so the ``V / V_ref`` term stays centred on the new ladder.
    """
    vdd_r, freq_r, power_r = node_ratios(from_nm, to_nm, model)
    residual = power_r / (vdd_r * vdd_r * freq_r)
    return PowerParams(
        c_eff=params.c_eff * residual,
        leak_ref=params.leak_ref * power_r,
        v_ref=params.v_ref * vdd_r,
        t_ref=params.t_ref,
        leak_temp_scale=params.leak_temp_scale,
        idle_floor=params.idle_floor * power_r,
    )
