"""Declarative silicon descriptions: the :class:`PlatformSpec`.

A platform spec *names* a processor package the way a
:class:`~repro.runtime.spec.RunSpec` names a run: frozen, hashable,
value-comparable data, no live objects.  It carries

* one or more :class:`CoreClass` entries — a heterogeneous
  (big.LITTLE-style) part lists several classes, each with its own
  per-class DVFS ladder (frequency/voltage points) and power-model
  constants (``C_eff``, leakage — the Pdyn/Pleak tables),
* the die floorplan's thermal constants (per-core mass, shared sink,
  core→sink and lateral core→core conduction) parameterizing a
  :class:`~repro.thermal.multicore.MulticorePackage` when the part has
  more than one core,
* the technology node the part is built on, which anchors
  :meth:`PlatformSpec.scaled` — the 45 → 8 nm ladder of
  :mod:`repro.platform.technode` — and
* the safe operating band ``[t_min, t_max]`` the thermal-control
  policy scales against.

:meth:`PlatformSpec.node_config` materializes the spec into the
:class:`~repro.config.NodeConfig` the cluster layer builds nodes from;
a single-core single-class spec produces the classic
:class:`~repro.thermal.package.CpuPackage` node, anything larger
produces a :class:`~repro.config.FloorplanConfig`-bearing config that
:class:`~repro.cluster.multicore_node.MulticoreNode` consumes.

All validation happens at construction (:class:`ConfigurationError`),
never mid-run: a one-point ladder, a non-monotone ladder, an empty
class list or a degenerate ``t_min >= t_max`` band — the latter two
would otherwise surface as a ``ZeroDivisionError`` inside the
target-mode scale coefficient ``c = (N−1)/(t_max − t_min)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..config import CoreClassConfig, FloorplanConfig, NodeConfig
from ..core.policy import Policy
from ..cpu.power import PowerParams
from ..cpu.pstate import PState, PStateTable
from ..errors import ConfigurationError
from .technode import scale_power_params, scale_pstates

__all__ = ["CoreClass", "PlatformSpec"]


@dataclass(frozen=True)
class CoreClass:
    """One core class of a (possibly heterogeneous) part.

    Attributes
    ----------
    name:
        Class label (``"perf"``, ``"eff"``, ...); becomes part of the
        per-class DVFS domain name.
    count:
        Number of identical cores of this class on the die.
    pstates:
        The class's DVFS ladder as frozen points; any length ≥ 2, any
        order (the table sorts fastest-first).  Class 0's ladder is the
        *lead* DVFS domain governors actuate; follower classes track it
        proportionally.
    power:
        The class's power-model constants (per core).
    """

    name: str
    count: int
    pstates: Tuple[PState, ...]
    power: PowerParams = field(default_factory=PowerParams)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("core class needs a non-empty name")
        if self.count < 1:
            raise ConfigurationError(
                f"core class {self.name!r} needs count >= 1, got {self.count}"
            )
        if len(self.pstates) < 2:
            raise ConfigurationError(
                f"core class {self.name!r} has a degenerate {len(self.pstates)}"
                "-point DVFS ladder; the target-mode scale coefficient "
                "c = (N-1)/(t_max - t_min) needs N >= 2 modes"
            )
        # Surfaces duplicate-frequency / voltage-monotonicity errors now.
        PStateTable(list(self.pstates))

    def table(self) -> PStateTable:
        """The ladder as a validated fastest-first :class:`PStateTable`."""
        return PStateTable(list(self.pstates))


@dataclass(frozen=True)
class PlatformSpec:
    """A frozen, hashable description of one processor platform.

    Attributes
    ----------
    name:
        Registry key (``"athlon64_4000"``, ``"biglittle_4p4e"``, ...).
    description:
        One-line human-readable summary.
    core_classes:
        The part's core classes, lead class first.  One class with
        ``count == 1`` describes a classic single-core part.
    tech_nm:
        Technology node the part is built on, nm.  Only parts on a
        node covered by :data:`~repro.platform.technode.TECH_NODES`
        can be carried across nodes with :meth:`scaled`.
    t_min / t_max:
        Safe operating band for the thermal-control policy, °C.
    c_core / c_sink / r_core_sink / r_core_core:
        Die floorplan thermal constants (per-core capacitance, shared
        sink capacitance, core→sink and lateral ring conduction) —
        used when the part has more than one core.
    """

    name: str
    description: str
    core_classes: Tuple[CoreClass, ...]
    tech_nm: int = 90
    t_min: float = 38.0
    t_max: float = 82.0
    c_core: float = 8.0
    c_sink: float = 200.0
    r_core_sink: float = 0.45
    r_core_core: float = 1.2

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("platform needs a non-empty name")
        if not self.core_classes:
            raise ConfigurationError(
                f"platform {self.name!r} needs at least one core class"
            )
        if not self.t_min < self.t_max:
            raise ConfigurationError(
                f"platform {self.name!r} has a degenerate safe band "
                f"[{self.t_min}, {self.t_max}]; the scale coefficient "
                "c = (N-1)/(t_max - t_min) needs t_min < t_max"
            )
        names = [c.name for c in self.core_classes]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"platform {self.name!r} has duplicate core class names: {names}"
            )

    # -- derived shape ---------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Total cores on the die across all classes."""
        return sum(c.count for c in self.core_classes)

    @property
    def is_multicore(self) -> bool:
        """True when the part needs the N-core package model."""
        return self.n_cores > 1

    @property
    def lead_class(self) -> CoreClass:
        """Class 0 — the DVFS domain governors actuate directly."""
        return self.core_classes[0]

    # -- materialization -------------------------------------------------

    def policy(self, pp: int = 50) -> Policy:
        """A thermal-control policy over this platform's safe band."""
        return Policy(pp=pp, t_min=self.t_min, t_max=self.t_max)

    def node_config(self, base: NodeConfig = NodeConfig()) -> NodeConfig:
        """The :class:`~repro.config.NodeConfig` this platform runs as.

        Everything the spec does not describe (fan, sensor, convection,
        protection temperatures) is inherited from ``base`` — the
        paper's testbed chassis by default: swapping silicon does not
        swap the fan behind it.
        """
        lead = self.lead_class
        if not self.is_multicore:
            return base.with_(pstates=lead.table(), power=lead.power)
        floorplan = FloorplanConfig(
            classes=tuple(
                CoreClassConfig(
                    name=c.name,
                    count=c.count,
                    pstates=c.table(),
                    power=c.power,
                )
                for c in self.core_classes
            ),
            c_core=self.c_core,
            c_sink=self.c_sink,
            r_core_sink=self.r_core_sink,
            r_core_core=self.r_core_core,
        )
        return base.with_(
            pstates=lead.table(), power=lead.power, floorplan=floorplan
        )

    # -- technology scaling ----------------------------------------------

    def scaled(self, tech_nm: int, model: str = "cons") -> "PlatformSpec":
        """This part carried to another technology node.

        Every class's ladder and power constants move through the
        :mod:`~repro.platform.technode` tables (relative to this
        spec's ``tech_nm``); the floorplan and safe band carry over.
        The derived spec is named ``<name>_<node>nm``.
        """
        classes = tuple(
            replace(
                c,
                pstates=scale_pstates(c.pstates, self.tech_nm, tech_nm, model),
                power=scale_power_params(c.power, self.tech_nm, tech_nm, model),
            )
            for c in self.core_classes
        )
        return replace(
            self,
            name=f"{self.name}_{tech_nm}nm",
            description=(
                f"{self.description} (scaled {self.tech_nm}->{tech_nm} nm, "
                f"{model} tables)"
            ),
            core_classes=classes,
            tech_nm=tech_nm,
        )

    def describe(self) -> str:
        """Short label: classes, counts and ladder lengths."""
        mix = "+".join(
            f"{c.count}x{c.name}[{len(c.pstates)}p]" for c in self.core_classes
        )
        return f"{self.name}@{self.tech_nm}nm({mix})"
