"""Silicon as data: platform specs, the registry, tech-node scaling.

The platform layer makes the processor a *dimension* of a run instead
of a constant of the codebase: a frozen
:class:`~repro.platform.spec.PlatformSpec` describes a part (core
classes with per-class DVFS ladders and power tables, die floorplan
thermal constants, technology node, safe operating band), the
read-only :data:`~repro.platform.registry.PLATFORM_REGISTRY` names the
parts a :class:`~repro.runtime.spec.RunSpec` may reference, and
:mod:`~repro.platform.technode` carries any registered part across the
45 → 8 nm scaling ladder.

A spec without a ``platform`` field runs exactly the paper's testbed
(``athlon64_4000``) through the exact pre-platform code path — digests,
cache keys and rendered outputs are byte-identical by construction.
"""

from __future__ import annotations

from .registry import DEFAULT_PLATFORM, PLATFORM_REGISTRY, resolve_platform
from .spec import CoreClass, PlatformSpec
from .technode import (
    FREQ_SCALE,
    POWER_SCALE,
    SCALING_MODELS,
    TECH_NODES,
    VDD_SCALE,
    VTH_BASE,
    node_ratios,
    scale_power_params,
    scale_pstates,
    vdd_floor,
)

__all__ = [
    "CoreClass",
    "PlatformSpec",
    "PLATFORM_REGISTRY",
    "DEFAULT_PLATFORM",
    "resolve_platform",
    "TECH_NODES",
    "SCALING_MODELS",
    "VDD_SCALE",
    "FREQ_SCALE",
    "POWER_SCALE",
    "VTH_BASE",
    "vdd_floor",
    "node_ratios",
    "scale_pstates",
    "scale_power_params",
]
