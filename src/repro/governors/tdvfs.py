"""tDVFS — the paper's temperature-aware DVFS daemon (§4.1, §4.3).

Strategy (quoting the paper): *"our strategy for DVFS control is not to
scale down frequency unless necessary because low frequencies impact
application performance"*; tDVFS therefore triggers only on the
**average** temperature being **consistently** above a threshold
(51 °C on the paper's platform), and it restores the original frequency
once the average is consistently below.  Short-term spikes — the red
circle in Figure 8 — are ignored by construction, because the trigger
condition quantifies over the whole level-two FIFO.

How far a trigger scales is where the thermal control array and
``P_p`` come in: the target slot advances by ``c · overshoot`` (with
``c = (N−1)/(t_max−t_min)`` and the overshoot measured against the
*current* trigger threshold), but always at least to the next distinct
mode.  With a small ``P_p`` the array's ramp is compressed, so a
comparable overshoot jumps *deeper* down the frequency ladder — the
paper's Figure 10 observes exactly this (``P_p=25`` steps
2.4 → 2.0 GHz directly).

The trigger threshold *escalates with depth*: sitting at slot ``s``
(relative to the start slot) raises the effective threshold to
``threshold + s/c`` — the inverse of the array's slot-per-kelvin
scale.  Each frequency step therefore "buys" a proportional band of
tolerated temperature, which is what lets the paper's Figure 9 run
plateau a few degrees above the nominal 51 °C at 2.0 GHz instead of
chasing the threshold all the way down the ladder.

Change accounting happens in the underlying
:class:`~repro.cpu.dvfs.Dvfs`, which is where Table 1's 2–3 changes
(vs CPUSPEED's 101–139) are counted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..core.actuator import DvfsModeActuator
from ..core.control_array import ThermalControlArray
from ..core.policy import Policy
from ..core.window import TwoLevelWindow
from ..cpu.dvfs import Dvfs
from ..sim.events import EventLog
from ..telemetry.provenance import ProvenanceRecorder
from ..telemetry.registry import MetricsRegistry
from ..units import clamp, require_non_negative, require_positive
from .base import Governor

__all__ = ["TDvfsParams", "TDvfs"]


@dataclass(frozen=True)
class TDvfsParams:
    """Tuning of the tDVFS daemon.

    Attributes
    ----------
    threshold:
        Trigger temperature, °C (paper: 51).
    restore_margin:
        The original frequency is restored when every FIFO entry is
        below ``threshold - restore_margin``, K.  The hysteresis gap
        prevents down/up limit cycles around the threshold.
    cooldown:
        Minimum seconds between scaling actions; the heatsink time
        constant is O(100 s), so the plant needs tens of seconds to
        answer one action before the next is justified (the gaps
        between Figure 9's two annotated changes are of this order).
    trigger_depth_bias:
        Predicted *additional* rise charged to each trigger, K — the
        temperature expected to accrue during one cooldown at a typical
        ramp rate (≈ cooldown × 0.12 K/s).  Added to the measured
        overshoot before the ``c·Δ`` slot advance.  Because the slot
        advance is P_p-independent while the array's modes-per-slot
        density is not, the same bias reaches *deeper* frequencies
        under an aggressive (small) P_p — Figure 10's
        2.4 → 2.0 GHz jump at P_p = 25.
    escalate_threshold:
        Whether the trigger threshold rises with depth (the paper's
        Figure-9 plateau behaviour).  ``False`` keeps a fixed
        threshold, which chases the plant down the ladder — the
        ablation experiment quantifies the difference.
    l1_size / l2_size:
        Window geometry, as everywhere else (4-sample rounds, 5-round
        FIFO: the "consistently" horizon is l2_size rounds).
    """

    threshold: float = 51.0
    restore_margin: float = 2.5
    cooldown: float = 30.0
    trigger_depth_bias: float = 3.5
    escalate_threshold: bool = True
    l1_size: int = 4
    l2_size: int = 5

    def __post_init__(self) -> None:
        require_positive(self.restore_margin, "restore_margin")
        require_non_negative(self.cooldown, "cooldown")
        require_non_negative(self.trigger_depth_bias, "trigger_depth_bias")


class TDvfs(Governor):
    """The temperature-aware DVFS daemon.

    Parameters
    ----------
    dvfs:
        The node's DVFS actuator.
    policy:
        Shared user policy (``P_p`` shapes the DVFS control array).
    params:
        Daemon tuning.
    events:
        Shared event log (``tdvfs.trigger`` / ``tdvfs.restore``).
    name:
        Event source name.
    telemetry:
        Optional metrics registry; when enabled, every evaluated
        window round publishes its threshold state as a
        ``telemetry.decision.tdvfs`` provenance record.
    """

    def __init__(
        self,
        dvfs: Dvfs,
        policy: Policy,
        params: Optional[TDvfsParams] = None,
        events: Optional[EventLog] = None,
        name: str = "tdvfs",
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(name=name, period=1.0)
        self.dvfs = dvfs
        self.policy = policy
        self.params = params if params is not None else TDvfsParams()
        self.events = events
        self.name = name
        self.actuator = DvfsModeActuator(dvfs)
        self.array = ThermalControlArray(self.actuator.modes, policy)
        self.window = TwoLevelWindow(
            l1_size=self.params.l1_size, l2_size=self.params.l2_size
        )
        self.c = policy.scale_coefficient(len(self.array))
        self._slot = self.array.slot_for_mode(self.actuator.current_mode())
        self._initial_slot = self._slot
        self._original_index = dvfs.index
        self._last_action_time = -math.inf
        self.trigger_count = 0
        self.restore_count = 0
        self.provenance = ProvenanceRecorder(events, telemetry, name, "tdvfs")

    # -- governor protocol ---------------------------------------------------

    def start(self, t: float) -> None:
        """Record the frequency to restore to."""
        self._original_index = self.dvfs.index

    def on_interval(self, t: float) -> None:
        """tDVFS has no interval work; all logic runs on samples."""

    @property
    def effective_threshold(self) -> float:
        """The escalated trigger threshold at the current depth, °C."""
        if not self.params.escalate_threshold:
            return self.params.threshold
        depth = self._slot - self._initial_slot
        return self.params.threshold + depth / self.c

    def on_sample(self, t: float, temperature: float) -> None:
        """Feed a sensor sample; evaluate the trigger on window rounds."""
        update = self.window.push(t, temperature)
        if update is None or not update.l2_full:
            return
        p = self.params

        # "Consistently above": every FIFO entry above threshold within
        # sensor noise (half a quantization step of slack) AND the FIFO
        # average strictly above.  The slack keeps the decision from
        # hinging on a single noisy round at marginal operating points.
        threshold = self.effective_threshold
        consistently_above = (
            min(update.l2_values) > threshold - 0.25
            and update.l2_average > threshold
        )
        if t - self._last_action_time < p.cooldown:
            self._record_round(t, update, "cooldown", threshold, consistently_above)
            return

        triggers, restores = self.trigger_count, self.restore_count
        if consistently_above:
            self._scale_down(t, update.l2_average)
        elif (
            max(update.l2_values) < p.threshold - p.restore_margin
            and self.dvfs.index != self._original_index
        ):
            self._restore(t, update.l2_average)
        if self.trigger_count > triggers:
            action = "trigger"
        elif self.restore_count > restores:
            action = "restore"
        else:
            action = "hold"
        self._record_round(t, update, action, threshold, consistently_above)

    def _record_round(
        self, t, update, action: str, threshold: float, consistently_above: bool
    ) -> None:
        self.provenance.tdvfs_round(
            t,
            delta_l1=update.delta_l1,
            delta_l2=update.delta_l2,
            action=action,
            l2_average=update.l2_average,
            effective_threshold=threshold,
            consistently_above=consistently_above,
            slot=self._slot,
            index=self.dvfs.index,
            frequency_ghz=self.dvfs.pstate.frequency_ghz,
        )

    # -- actions ----------------------------------------------------------

    def _scale_down(self, t: float, l2_average: float) -> None:
        """Advance along the control array by c·overshoot (>= one mode)."""
        overshoot = max(0.0, l2_average - self.effective_threshold)
        charged = overshoot + self.params.trigger_depth_bias
        by_delta = self._slot + math.ceil(self.c * charged)
        at_least = self.array.next_distinct_slot(self._slot)
        if at_least == self._slot:
            return  # already at the most effective mode
        target = int(clamp(max(by_delta, at_least), 0, len(self.array) - 1))
        old_mode = self.array[self._slot]
        new_mode = self.array[target]
        self._slot = target
        if new_mode != old_mode:
            self.actuator.apply(new_mode, t)
            self._last_action_time = t
            self.trigger_count += 1
            if self.events is not None:
                self.events.emit(
                    t,
                    "tdvfs.trigger",
                    self.name,
                    overshoot=round(overshoot, 3),
                    new_index=new_mode,
                    new_ghz=self.dvfs.pstate.frequency_ghz,
                )

    def _restore(self, t: float, l2_average: float) -> None:
        """Jump back to the original frequency (paper: one-shot restore)."""
        self.actuator.apply(self._original_index, t)
        self._slot = self.array.slot_for_mode(self._original_index)
        self._last_action_time = t
        self.restore_count += 1
        if self.events is not None:
            self.events.emit(
                t,
                "tdvfs.restore",
                self.name,
                l2_average=round(l2_average, 3),
                new_ghz=self.dvfs.pstate.frequency_ghz,
            )
