"""CPUSPEED — the utilization-driven baseline daemon (paper §4.3, [33]).

A faithful behavioural model of Carl Thompson's classic ``cpuspeed``
daemon the paper compares tDVFS against:

* every ``interval`` seconds it reads CPU busy time (our
  :attr:`~repro.cpu.core.CpuCore.busy_seconds` stands in for
  ``/proc/stat``) and computes the interval's utilization;
* utilization at/above ``up_threshold`` → jump straight to the maximum
  frequency (cpuspeed's characteristic "snap to max");
* utilization at/below ``down_threshold`` → step one P-state down;
* like the real daemon's ``-t`` option, an optional temperature limit
  forces a step down while the sensor reads at/above ``max_temp``,
  regardless of utilization, and blocks upscaling until the reading
  falls below ``max_temp − hysteresis``.

Under an iterative MPI code this produces exactly the pathology the
paper measures: every communication/barrier phase looks idle, so the
daemon flaps down and snaps back up — 101–139 frequency changes over
one BT.B run (Table 1) — while the temperature keeps creeping up
because none of this is temperature-*aware* beyond the crude limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cpu.core import CpuCore
from ..errors import ConfigurationError
from ..sim.events import EventLog
from ..units import require_in_range, require_positive
from .base import Governor

__all__ = ["CpuSpeedParams", "CpuSpeed"]


@dataclass(frozen=True)
class CpuSpeedParams:
    """Daemon tuning (defaults match common cpuspeed deployments).

    Attributes
    ----------
    interval:
        Polling interval, seconds.
    up_threshold:
        Utilization at/above which the daemon snaps to max frequency.
    down_threshold:
        Utilization at/below which it steps one P-state down.
    max_temp:
        Optional temperature limit, °C (``None`` disables, like
        running without ``-t``).
    hysteresis:
        Upscaling is blocked until temperature < ``max_temp -
        hysteresis``, K.
    """

    interval: float = 0.25
    up_threshold: float = 0.90
    down_threshold: float = 0.28
    max_temp: Optional[float] = 60.0
    hysteresis: float = 3.0

    def __post_init__(self) -> None:
        require_positive(self.interval, "interval")
        require_in_range(self.up_threshold, 0.0, 1.0, "up_threshold")
        require_in_range(self.down_threshold, 0.0, 1.0, "down_threshold")
        if self.down_threshold >= self.up_threshold:
            raise ConfigurationError(
                f"down_threshold ({self.down_threshold}) must be < "
                f"up_threshold ({self.up_threshold})"
            )
        require_positive(self.hysteresis, "hysteresis")


class CpuSpeed(Governor):
    """The interval/utilization governor.

    Parameters
    ----------
    core:
        The node's CPU core (supplies busy time and the DVFS handle).
    params:
        Daemon tuning.
    events:
        Shared event log (frequency changes are logged by the Dvfs
        actuator itself).
    """

    def __init__(
        self,
        core: CpuCore,
        params: Optional[CpuSpeedParams] = None,
        events: Optional[EventLog] = None,
        name: str = "cpuspeed",
    ) -> None:
        p = params if params is not None else CpuSpeedParams()
        super().__init__(name=name, period=p.interval)
        self.core = core
        self.params = p
        self.events = events
        self._busy_snapshot = 0.0
        self._time_snapshot: Optional[float] = None
        self._last_temp: Optional[float] = None

    def start(self, t: float) -> None:
        self._busy_snapshot = self.core.busy_seconds
        self._time_snapshot = t

    def on_sample(self, t: float, temperature: float) -> None:
        # The daemon keeps only the latest reading (it polls sysfs).
        self._last_temp = temperature

    def interval_utilization(self, t: float) -> float:
        """Utilization since the previous interval (diff of busy time)."""
        if self._time_snapshot is None:
            self._time_snapshot = t
            self._busy_snapshot = self.core.busy_seconds
            return 0.0
        elapsed = t - self._time_snapshot
        if elapsed <= 0:
            return 0.0
        busy = self.core.busy_seconds - self._busy_snapshot
        self._time_snapshot = t
        self._busy_snapshot = self.core.busy_seconds
        return min(1.0, busy / elapsed)

    def on_interval(self, t: float) -> None:
        p = self.params
        util = self.interval_utilization(t)
        dvfs = self.core.dvfs

        too_hot = (
            p.max_temp is not None
            and self._last_temp is not None
            and self._last_temp >= p.max_temp
        )
        cooled_off = (
            p.max_temp is None
            or self._last_temp is None
            or self._last_temp < p.max_temp - p.hysteresis
        )

        if too_hot:
            dvfs.step_down(t)
        elif util >= p.up_threshold and cooled_off:
            dvfs.set_index(0, t)  # snap to max
        elif util <= p.down_threshold:
            dvfs.step_down(t)
