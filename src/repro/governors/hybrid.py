"""Hybrid dynamic fan + tDVFS control (paper §4.4).

The paper's full system: the out-of-band and in-band techniques run
together under **one** ``P_p``.  There is no explicit arbiter — the
coordination is emergent, and the paper's observations follow from the
two trigger structures:

* the dynamic fan reacts within one window round to any temperature
  *change*, so with a small ``P_p`` it holds the plant below the tDVFS
  threshold longer (or forever), *deferring the in-band cost*;
* tDVFS fires only when the level-two average is consistently above
  threshold — i.e. only when the fan (capped, in Figure 10, at 50 %)
  has already lost.

:class:`HybridControl` composes the two into one governor object;
:func:`hybrid_governors` is the convenience used by experiments to rig
a whole node.
"""

from __future__ import annotations

from typing import Optional

from ..core.coordinator import Coordinator
from ..core.policy import Policy
from ..sim.events import EventLog
from ..telemetry.registry import MetricsRegistry
from .base import Governor
from .fan_dynamic import DynamicFanControl
from .tdvfs import TDvfs, TDvfsParams

__all__ = ["HybridControl", "hybrid_governors"]


class HybridControl(Governor):
    """One governor running dynamic fan + tDVFS under a shared policy.

    Parameters
    ----------
    fan:
        The out-of-band half.
    tdvfs:
        The in-band half.

    Raises
    ------
    repro.errors.PolicyError
        Via the :class:`~repro.core.coordinator.Coordinator` if the two
        halves were built with different policies — the paper's design
        point is a *single* user intention.
    """

    def __init__(
        self, fan: DynamicFanControl, tdvfs: TDvfs, name: str = "hybrid"
    ) -> None:
        super().__init__(name=name, period=1.0)
        if fan.controller.policy is not tdvfs.policy and (
            fan.controller.policy != tdvfs.policy
        ):
            from ..errors import PolicyError

            raise PolicyError(
                "hybrid control requires the fan and tDVFS halves to share "
                f"one policy (got P_p={fan.controller.policy.pp} vs "
                f"P_p={tdvfs.policy.pp})"
            )
        self.fan = fan
        self.tdvfs = tdvfs
        # Out-of-band is cheaper: samples reach the fan first.
        self.coordinator = Coordinator(policy=tdvfs.policy, name=name)
        self.coordinator.register("fan", fan.on_sample, cost_rank=0)
        self.coordinator.register("dvfs", tdvfs.on_sample, cost_rank=1)

    def start(self, t: float) -> None:
        self.fan.start(t)
        self.tdvfs.start(t)

    def on_sample(self, t: float, temperature: float) -> None:
        self.coordinator.on_sample(t, temperature)

    def on_interval(self, t: float) -> None:
        self.fan.on_interval(t)
        self.tdvfs.on_interval(t)


def hybrid_governors(
    node,
    policy: Policy,
    max_duty: float = 0.50,
    tdvfs_params: Optional[TDvfsParams] = None,
    events: Optional[EventLog] = None,
    telemetry: Optional[MetricsRegistry] = None,
) -> HybridControl:
    """Rig one node with the paper's §4.4 hybrid configuration.

    Parameters
    ----------
    node:
        A :class:`~repro.cluster.node.Node`.
    policy:
        The shared user policy.
    max_duty:
        Fan cap (the Figure 10 experiments use 50 %).
    tdvfs_params:
        tDVFS tuning (default: 51 °C threshold, as in the paper).
    events:
        Shared event log.
    telemetry:
        Optional metrics registry, shared by both halves.
    """
    fan = DynamicFanControl(
        driver=node.make_fan_driver(max_duty=max_duty),
        policy=policy,
        events=events,
        name=f"{node.name}.fan-dynamic",
        telemetry=telemetry,
    )
    tdvfs = TDvfs(
        dvfs=node.dvfs,
        policy=policy,
        params=tdvfs_params,
        events=events,
        name=f"{node.name}.tdvfs",
        telemetry=telemetry,
    )
    return HybridControl(fan, tdvfs, name=f"{node.name}.hybrid")
