"""Dynamic fan control — the paper's method applied to the fan (§4.2).

This is a thin governor shell around the
:class:`~repro.core.controller.UnifiedThermalController` with a
:class:`~repro.core.actuator.FanModeActuator`: every 4 Hz sensor sample
feeds the two-level window; each completed round moves the fan along
the P_p-filled thermal control array by ``c·Δt``.

Behaviour the paper demonstrates and our tests assert:

* responds within one window round to *sudden* rises (Figure 5);
* does **not** chase *jitter* — the half-sum cancellation eats it;
* tracks *gradual* drift through the level-two delta;
* smaller ``P_p`` holds lower temperature at higher mean duty
  (Figure 5's 70/53/36 % mean-duty ordering).
"""

from __future__ import annotations

from typing import Optional

from ..core.actuator import FanModeActuator
from ..core.controller import UnifiedThermalController
from ..core.policy import Policy
from ..fan.driver import FanDriver
from ..sim.events import EventLog
from ..telemetry.registry import MetricsRegistry
from .base import Governor

__all__ = ["DynamicFanControl"]


class DynamicFanControl(Governor):
    """The unified controller driving a fan.

    Parameters
    ----------
    driver:
        The node's fan driver (its ``max_duty`` cap bounds the mode
        set, emulating a weaker fan).
    policy:
        User policy; ``policy.pp`` is the aggressiveness knob.
    l1_size / l2_size:
        Window geometry (paper defaults 4 / 5).
    l2_when_l1_silent:
        §3.2.2 ordering rule (ablation hook).
    events:
        Shared event log.
    telemetry:
        Optional metrics registry for decision provenance.
    """

    def __init__(
        self,
        driver: FanDriver,
        policy: Policy,
        l1_size: int = 4,
        l2_size: int = 5,
        l2_when_l1_silent: bool = True,
        events: Optional[EventLog] = None,
        name: str = "fan-dynamic",
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(name=name, period=1.0)
        self.driver = driver
        self.controller = UnifiedThermalController(
            actuator=FanModeActuator(driver),
            policy=policy,
            l1_size=l1_size,
            l2_size=l2_size,
            l2_when_l1_silent=l2_when_l1_silent,
            events=events,
            name=name,
            telemetry=telemetry,
        )

    def start(self, t: float) -> None:
        self.driver.set_manual_mode()
        # Actuate the initial slot's mode so chip and controller agree.
        self.driver.set_duty(float(self.controller.current_mode))

    def on_sample(self, t: float, temperature: float) -> None:
        self.controller.push_sample(t, temperature)

    @property
    def current_duty(self) -> float:
        """The duty the controller currently commands."""
        return float(self.controller.current_mode)
