"""The governor protocol.

A governor is a user-space daemon bound to one node.  The cluster
delivers two kinds of callbacks:

* :meth:`Governor.on_sample` — every thermal-sensor sample (the
  paper's 4 Hz lm-sensors cadence).  History-based controllers feed
  their two-level window here.
* :meth:`Governor.on_interval` — every ``period`` seconds of the
  governor's own control interval (CPUSPEED polls utilization here).

:meth:`Governor.start` runs once before the simulation loop — the place
to grab manual control of the fan chip or pin an initial P-state.
"""

from __future__ import annotations

from ..units import require_positive

__all__ = ["Governor"]


class Governor:
    """Base class for thermal-control daemons.

    Parameters
    ----------
    name:
        Daemon identifier used in events and traces.
    period:
        Control interval for :meth:`on_interval`, seconds.  Governors
        that only react to sensor samples may leave the default.
    """

    def __init__(self, name: str, period: float = 1.0) -> None:
        self.name = name
        self.period = require_positive(period, "period")

    def start(self, t: float) -> None:
        """One-time setup before the run loop (default: nothing)."""

    def on_sample(self, t: float, temperature: float) -> None:
        """Receive one thermal-sensor sample (default: ignore)."""

    def on_interval(self, t: float) -> None:
        """Run one control interval (default: nothing)."""
