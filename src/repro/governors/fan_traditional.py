"""Traditional static fan control (paper Figure 1).

The baseline the paper compares against: the fan speed is a *static*
function of the absolute temperature — PWM_min up to T_min, linear to
PWM_max at T_max.  On the real platform this map runs inside the
ADT7467's automatic fan-control hardware, so this governor does exactly
what the stock system does: program the curve registers once and leave
the chip in auto mode.  There is no host-side control loop at all; its
:meth:`on_sample` is intentionally empty.

Because the chip reacts only to the *current* temperature, it cannot
anticipate a rise — the paper's Figure 6 shows it stabilizing later and
hotter than the dynamic method.
"""

from __future__ import annotations

from ..fan.driver import FanDriver
from ..units import require_in_range
from .base import Governor

__all__ = ["TraditionalFanControl"]


class TraditionalFanControl(Governor):
    """Program the hardware automatic curve and step aside.

    Parameters
    ----------
    driver:
        The node's fan driver.
    t_min:
        Ramp start, °C (paper platform: 38).
    t_max:
        Full-speed temperature, °C (paper platform: 82).
    duty_min:
        Duty at/below ``t_min`` (paper platform: 10 %).
    duty_max:
        Duty ceiling; the ramp targets this at ``t_max``.  Capped
        configurations (Figures 6/8 use 75 % / 25 %) flatten the ramp,
        exactly as reprogramming the chip's PWM1-max register does.
    """

    def __init__(
        self,
        driver: FanDriver,
        t_min: float = 38.0,
        t_max: float = 82.0,
        duty_min: float = 0.10,
        duty_max: float = 1.0,
        name: str = "fan-traditional",
    ) -> None:
        super().__init__(name=name, period=1.0)
        self.driver = driver
        require_in_range(duty_min, 0.0, 1.0, "duty_min")
        require_in_range(duty_max, 0.0, 1.0, "duty_max")
        self.t_min = t_min
        self.t_max = t_max
        self.duty_min = duty_min
        self.duty_max = min(duty_max, driver.max_duty)

    def start(self, t: float) -> None:
        self.driver.set_auto_mode(
            t_min=self.t_min,
            t_range=self.t_max - self.t_min,
            duty_min=self.duty_min,
            duty_max=self.duty_max,
        )

    def expected_duty(self, temperature: float) -> float:
        """The Figure-1 curve value (for tests/analysis)."""
        if temperature <= self.t_min:
            return self.duty_min
        frac = min(1.0, (temperature - self.t_min) / (self.t_max - self.t_min))
        return self.duty_min + (self.duty_max - self.duty_min) * frac
