"""Constant fan speed control.

The third fan policy of the paper's Figure 6: the PWM duty is pinned
(75 % in the paper's comparison).  It holds the lowest temperature of
the three fan policies but burns the most fan power — the cube law
makes a pinned-high fan expensive — and it cannot exploit idle periods.
"""

from __future__ import annotations

from ..fan.driver import FanDriver
from ..units import require_in_range
from .base import Governor

__all__ = ["ConstantFanControl"]


class ConstantFanControl(Governor):
    """Pin the fan at a fixed duty for the whole run.

    Parameters
    ----------
    driver:
        The node's fan driver.
    duty:
        The pinned duty fraction (paper: 0.75).
    """

    def __init__(
        self, driver: FanDriver, duty: float = 0.75, name: str = "fan-constant"
    ) -> None:
        super().__init__(name=name, period=1.0)
        self.driver = driver
        self.duty = require_in_range(duty, 0.0, 1.0, "duty")

    def start(self, t: float) -> None:
        self.driver.set_manual_mode()
        self.driver.set_duty(self.duty)

    def on_interval(self, t: float) -> None:
        # Re-assert the setpoint each interval: a real daemon does this
        # to survive chip resets / BMC interference.
        self.driver.set_duty(self.duty)
