"""PID fan control — the formal-control baseline.

The paper's related work surveys *"formal thermal control techniques"*
(Lefurgy's closed-loop power capping, Wang's MIMO cluster controller)
and positions its own history-based heuristic against them.  This
module supplies that comparison point: a textbook discrete PID loop
regulating the die temperature to a setpoint by actuating PWM duty.

.. math::

    e_k = T_k - T_{set}, \\qquad
    u_k = K_p e_k + K_i \\sum e_j \\Delta t + K_d (e_k - e_{k-1})/\\Delta t

with output clamping and conditional anti-windup (the integrator only
accumulates while the output is unsaturated).  Unlike the paper's
controller it needs a *setpoint* (the paper's needs only the safe
band), reacts to absolute error rather than behaviour classes, and its
gains must be tuned per plant — the comparison study
(`tests/test_governors_fan_pid.py`) shows both loops holding the
setpoint, with the PID chasing jitter noticeably harder because it has
no notion of Type III behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..fan.driver import FanDriver
from ..sim.events import EventLog
from ..units import clamp, require_non_negative, require_positive
from .base import Governor

__all__ = ["PidGains", "PidFanControl"]


@dataclass(frozen=True)
class PidGains:
    """PID gains, in duty-fraction per kelvin (per second for Ki/Kd).

    Defaults are Ziegler–Nichols-ish for the simulated plant: the
    plant gain is ~0.08 K per duty-percent with a ~100 s dominant time
    constant, giving a stable, mildly-damped loop.
    """

    kp: float = 0.04
    ki: float = 0.002
    kd: float = 0.02

    def __post_init__(self) -> None:
        require_positive(self.kp, "kp")
        require_non_negative(self.ki, "ki")
        require_non_negative(self.kd, "kd")


class PidFanControl(Governor):
    """Closed-loop PID regulation of die temperature via PWM duty.

    Parameters
    ----------
    driver:
        The node's fan driver.
    setpoint:
        Target die temperature, °C.
    gains:
        Loop gains.
    period:
        Control period, seconds (acts on each sensor-derived interval).
    events:
        Optional event log; emits ``ctrl.pid`` on saturation changes.
    """

    def __init__(
        self,
        driver: FanDriver,
        setpoint: float = 50.0,
        gains: Optional[PidGains] = None,
        period: float = 0.25,
        events: Optional[EventLog] = None,
        name: str = "fan-pid",
    ) -> None:
        super().__init__(name=name, period=period)
        self.driver = driver
        self.setpoint = setpoint
        self.gains = gains if gains is not None else PidGains()
        self.events = events
        self._integral = 0.0
        self._previous_error: Optional[float] = None
        self._last_output = driver.ladder.min_duty
        self._saturated = False

    def start(self, t: float) -> None:
        self.driver.set_manual_mode()
        self.driver.set_duty(self._last_output)

    def on_sample(self, t: float, temperature: float) -> None:
        g = self.gains
        dt = 0.25  # sensor cadence; errors are per-sample
        error = temperature - self.setpoint

        # conditional anti-windup: freeze the integrator while the
        # output is pinned at either end and the error pushes further in
        lo = self.driver.ladder.min_duty
        hi = min(self.driver.max_duty, self.driver.ladder.max_duty)
        pushing_out = (self._last_output >= hi and error > 0) or (
            self._last_output <= lo and error < 0
        )
        if not pushing_out:
            self._integral += error * dt

        derivative = 0.0
        if self._previous_error is not None:
            derivative = (error - self._previous_error) / dt
        self._previous_error = error

        raw = g.kp * error + g.ki * self._integral + g.kd * derivative
        output = clamp(lo + raw, lo, hi)
        saturated = output in (lo, hi)
        if saturated != self._saturated and self.events is not None:
            self.events.emit(
                t, "ctrl.pid", self.name, saturated=saturated, output=round(output, 3)
            )
        self._saturated = saturated
        self._last_output = self.driver.set_duty(output)

    @property
    def last_output(self) -> float:
        """The duty most recently commanded."""
        return self._last_output
