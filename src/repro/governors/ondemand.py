"""The Linux *ondemand* cpufreq governor — a second in-band baseline.

By the paper's publication date, ``ondemand`` (Pallipadi & Starikovskiy,
OLS 2006) was displacing the userspace CPUSPEED daemon it evaluates
against.  It is behaviourally close but not identical:

* runs at a much shorter sampling period (we default 100 ms vs
  CPUSPEED's 250 ms);
* above ``up_threshold`` utilization it jumps straight to the maximum
  frequency (same as CPUSPEED);
* below it, instead of stepping one P-state at a time, it picks the
  *lowest frequency that would keep utilization just under the
  threshold* — proportional down-scaling:
  ``f_target = f_current · util / up_threshold``;
* it has **no temperature input at all**.

Including it lets users ask the natural follow-up the paper doesn't:
does a smarter utilization governor change the thermal story?  (It
doesn't — it flaps less than CPUSPEED but still lets the plant run away
under a weak fan, because nothing in it looks at a thermometer.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cpu.core import CpuCore
from ..errors import ConfigurationError
from ..sim.events import EventLog
from ..units import require_in_range, require_positive
from .base import Governor

__all__ = ["OndemandParams", "Ondemand"]


@dataclass(frozen=True)
class OndemandParams:
    """Governor tuning (defaults mirror the kernel's).

    Attributes
    ----------
    sampling_period:
        Utilization evaluation period, seconds.
    up_threshold:
        Utilization at/above which the governor snaps to max (kernel
        default 80 %... up to 95 % in later kernels; 0.80 here).
    """

    sampling_period: float = 0.10
    up_threshold: float = 0.80

    def __post_init__(self) -> None:
        require_positive(self.sampling_period, "sampling_period")
        require_in_range(self.up_threshold, 0.05, 1.0, "up_threshold")


class Ondemand(Governor):
    """Proportional utilization-driven frequency governor.

    Parameters
    ----------
    core:
        The governed CPU core.
    params:
        Governor tuning.
    events:
        Shared event log (transitions logged by the Dvfs actuator).
    """

    def __init__(
        self,
        core: CpuCore,
        params: Optional[OndemandParams] = None,
        events: Optional[EventLog] = None,
        name: str = "ondemand",
    ) -> None:
        p = params if params is not None else OndemandParams()
        super().__init__(name=name, period=p.sampling_period)
        self.core = core
        self.params = p
        self.events = events
        self._busy_snapshot = 0.0
        self._time_snapshot: Optional[float] = None

    def start(self, t: float) -> None:
        self._busy_snapshot = self.core.busy_seconds
        self._time_snapshot = t

    def _interval_utilization(self, t: float) -> float:
        if self._time_snapshot is None:
            self._time_snapshot = t
            self._busy_snapshot = self.core.busy_seconds
            return 0.0
        elapsed = t - self._time_snapshot
        if elapsed <= 0:
            return 0.0
        busy = self.core.busy_seconds - self._busy_snapshot
        self._time_snapshot = t
        self._busy_snapshot = self.core.busy_seconds
        return min(1.0, busy / elapsed)

    def on_interval(self, t: float) -> None:
        p = self.params
        util = self._interval_utilization(t)
        dvfs = self.core.dvfs
        if util >= p.up_threshold:
            dvfs.set_index(0, t)
            return
        # Proportional target: the slowest frequency that would still
        # keep utilization below the threshold at the current load.
        demand_hz = util * dvfs.frequency / p.up_threshold
        table = dvfs.table
        target = len(table) - 1
        for index in range(len(table) - 1, -1, -1):
            if table[index].frequency >= demand_hz:
                target = index
                break
        dvfs.set_index(target, t)
