"""ACPI sleep/throttle-state control — the paper's named extension.

§3.2.2 lists "valid sleep states for ACPI-compatible system" as a third
technique the thermal control array can host.  We realize it with ACPI
processor *throttling* states (T-states): the clock is duty-gated in
1/8 steps, cutting both progress and switching power proportionally —
an in-band technique coarser than DVFS (no voltage reduction, so the
power saving is linear rather than cubic) but available on parts with
no DVFS ladder at all.

:class:`SleepStateDevice` adapts the core's throttle control as a
:class:`~repro.core.actuator.ModeActuator`, and
:class:`AcpiSleepControl` is the same unified controller shell used for
the fan — demonstrating the paper's claim that the framework hosts any
technique that fits the array abstraction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.actuator import ModeActuator
from ..core.controller import UnifiedThermalController
from ..core.policy import Policy
from ..cpu.core import CpuCore
from ..errors import ConfigurationError
from ..sim.events import EventLog
from .base import Governor

__all__ = ["SleepStateDevice", "AcpiSleepControl"]


class SleepStateDevice(ModeActuator):
    """ACPI T-state throttler as a mode actuator.

    Modes are throttle fractions ``k/levels`` for ``k = 0..levels-1``,
    ascending effectiveness (more gating = more cooling).

    Parameters
    ----------
    core:
        The CPU core to throttle.
    levels:
        Number of T-states (ACPI defines 8).
    """

    technique = "sleep"

    def __init__(self, core: CpuCore, levels: int = 8) -> None:
        if levels < 2:
            raise ConfigurationError(f"need >= 2 throttle levels, got {levels}")
        self.core = core
        self._modes = tuple(k / levels for k in range(levels))

    @property
    def modes(self) -> Sequence[float]:
        return self._modes

    def apply(self, mode: float, t: float) -> None:
        self.core.set_throttle(float(mode))

    def current_mode(self) -> float:
        throttle = self.core.throttle
        return min(self._modes, key=lambda m: abs(m - throttle))


class AcpiSleepControl(Governor):
    """Unified controller over T-states.

    Same shell as :class:`~repro.governors.fan_dynamic.DynamicFanControl`
    but wrapping a :class:`SleepStateDevice` — the array/window/selector
    machinery is reused untouched.

    Parameters
    ----------
    core:
        The CPU core to throttle.
    policy:
        User policy.
    levels:
        T-state count.
    events:
        Shared event log.
    """

    def __init__(
        self,
        core: CpuCore,
        policy: Policy,
        levels: int = 8,
        events: Optional[EventLog] = None,
        name: str = "acpi-sleep",
    ) -> None:
        super().__init__(name=name, period=1.0)
        self.controller = UnifiedThermalController(
            actuator=SleepStateDevice(core, levels=levels),
            policy=policy,
            events=events,
            name=name,
        )

    def on_sample(self, t: float, temperature: float) -> None:
        self.controller.push_sample(t, temperature)

    @property
    def current_throttle(self) -> float:
        """The throttle fraction currently commanded."""
        return float(self.controller.current_mode)
