"""Complete thermal-control daemons (the paper's §4 actors).

Out-of-band (fan) governors:

* :class:`~repro.governors.fan_traditional.TraditionalFanControl` —
  the static PWM(T) map of Figure 1, executed by the ADT7467's
  hardware automatic mode.
* :class:`~repro.governors.fan_constant.ConstantFanControl` — a fixed
  duty cycle.
* :class:`~repro.governors.fan_dynamic.DynamicFanControl` — the
  paper's contribution applied to the fan: unified controller with a
  two-level window and a P_p-filled thermal control array.
* :class:`~repro.governors.fan_pid.PidFanControl` — a textbook PID
  loop: the "formal control" baseline the paper's related work
  discusses.

In-band (DVFS) governors:

* :class:`~repro.governors.tdvfs.TDvfs` — the paper's
  threshold-triggered, history-based DVFS daemon.
* :class:`~repro.governors.cpuspeed.CpuSpeed` — the interval/
  utilization baseline daemon of Table 1.
* :class:`~repro.governors.ondemand.Ondemand` — the kernel's
  proportional utilization governor (a second, thermometer-free
  baseline).

Combined:

* :func:`~repro.governors.hybrid.hybrid_governors` — dynamic fan +
  tDVFS sharing one P_p (§4.4).

Extension (paper §3.2.2 names sleep states as a third technique):

* :class:`~repro.governors.acpi_sleep.AcpiSleepControl` — drives
  simulated ACPI processor sleep states from the same control array.
"""

from .acpi_sleep import AcpiSleepControl, SleepStateDevice
from .base import Governor
from .cpuspeed import CpuSpeed, CpuSpeedParams
from .fan_constant import ConstantFanControl
from .fan_dynamic import DynamicFanControl
from .fan_pid import PidFanControl, PidGains
from .fan_traditional import TraditionalFanControl
from .hybrid import HybridControl, hybrid_governors
from .ondemand import Ondemand, OndemandParams
from .tdvfs import TDvfs, TDvfsParams

__all__ = [
    "Governor",
    "TraditionalFanControl",
    "ConstantFanControl",
    "DynamicFanControl",
    "PidFanControl",
    "PidGains",
    "TDvfs",
    "TDvfsParams",
    "CpuSpeed",
    "CpuSpeedParams",
    "Ondemand",
    "OndemandParams",
    "HybridControl",
    "hybrid_governors",
    "AcpiSleepControl",
    "SleepStateDevice",
]
