"""Workload substrate.

The paper drives its controllers with three classes of load:

* **cpu-burn** (§4.2) — a synthetic burner that pins the CPU; three
  back-to-back instances produce the sudden/jitter-rich profile of
  Figure 5 (:mod:`repro.workloads.cpuburn`).
* **NAS Parallel Benchmarks** BT.B and LU.A on 4 MPI ranks (§4.2–4.4) —
  iterative solvers whose compute segments scale with CPU frequency and
  whose communication segments do not
  (:mod:`repro.workloads.npb`).
* **Synthetic thermal-type generators** — parameterized Type I
  (sudden), Type II (gradual) and Type III (jitter) utilization
  profiles used to characterize the controller (Figure 2, ablations)
  (:mod:`repro.workloads.synthetic`).

All of them implement the rank protocol of
:class:`repro.cpu.core.RankInterface` plus the job-level protocol in
:mod:`repro.workloads.base`.
"""

from .base import (
    Barrier,
    CommSegment,
    ComputeSegment,
    IdleSegment,
    Job,
    RankProgram,
    Segment,
)
from .cpuburn import CpuBurn, cpu_burn_session
from .npb import (
    NpbJob,
    NpbParams,
    bt_b_4,
    cg_b_4,
    ep_b_4,
    lu_a_4,
    mg_b_4,
    sp_b_4,
)
from .synthetic import (
    SyntheticRank,
    gradual_profile,
    jitter_profile,
    mixed_thermal_profile,
    sudden_profile,
)
from .traces import TraceRank, UtilizationTrace

__all__ = [
    "Segment",
    "ComputeSegment",
    "CommSegment",
    "IdleSegment",
    "Barrier",
    "RankProgram",
    "Job",
    "CpuBurn",
    "cpu_burn_session",
    "NpbParams",
    "NpbJob",
    "bt_b_4",
    "lu_a_4",
    "sp_b_4",
    "cg_b_4",
    "ep_b_4",
    "mg_b_4",
    "SyntheticRank",
    "sudden_profile",
    "gradual_profile",
    "jitter_profile",
    "mixed_thermal_profile",
    "UtilizationTrace",
    "TraceRank",
]
