"""Trace-driven workloads.

:class:`UtilizationTrace` replays a recorded utilization time series —
the escape hatch for users who have real node telemetry (sar, collectl,
IPMI SDR dumps) and want to evaluate the controllers against it.  The
trace is a step function: each sample holds until the next timestamp.

Traces load from two-column CSV via :meth:`UtilizationTrace.from_csv`
(the inverse of :func:`repro.analysis.export.export_trace_csv`).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Sequence, Union

import numpy as np

from ..errors import ConfigurationError
from ..units import clamp
from .base import Job, RankProgram, Segment
from .synthetic import _ProfileSegment

__all__ = ["UtilizationTrace", "TraceRank"]


class UtilizationTrace:
    """An immutable (times, utilizations) step-function trace.

    Parameters
    ----------
    times:
        Strictly increasing sample times, seconds, starting at >= 0.
    utilizations:
        Utilization at each time, each in [0, 1]; holds until the next
        sample.
    """

    def __init__(self, times: Sequence[float], utilizations: Sequence[float]) -> None:
        t = np.asarray(times, dtype=np.float64)
        u = np.asarray(utilizations, dtype=np.float64)
        if t.ndim != 1 or u.ndim != 1 or t.size != u.size:
            raise ConfigurationError(
                "times and utilizations must be 1-D and the same length"
            )
        if t.size < 1:
            raise ConfigurationError("trace must have at least one sample")
        if t[0] < 0 or np.any(np.diff(t) <= 0):
            raise ConfigurationError("times must be non-negative and increasing")
        if np.any((u < 0) | (u > 1)):
            raise ConfigurationError("utilizations must lie in [0, 1]")
        self._t = t
        self._u = u

    @classmethod
    def from_csv(
        cls,
        path: Union[str, Path],
        time_column: int = 0,
        util_column: int = 1,
        normalize_percent: bool = False,
    ) -> "UtilizationTrace":
        """Load a trace from a CSV file.

        Parameters
        ----------
        path:
            The CSV file.  A header row is skipped automatically when
            its cells do not parse as numbers.
        time_column / util_column:
            Zero-based column indices.
        normalize_percent:
            When True, utilization values are divided by 100 (for
            sar-style percentage dumps).

        Raises
        ------
        ConfigurationError
            On empty files or rows with missing/unparseable cells.
        """
        times = []
        utils = []
        with Path(path).open(newline="") as handle:
            for row_index, row in enumerate(csv.reader(handle)):
                if not row:
                    continue
                try:
                    t = float(row[time_column])
                    u = float(row[util_column])
                except (ValueError, IndexError):
                    if row_index == 0:
                        continue  # header row
                    raise ConfigurationError(
                        f"{path}: unparseable row {row_index}: {row!r}"
                    ) from None
                times.append(t)
                utils.append(u / 100.0 if normalize_percent else u)
        if not times:
            raise ConfigurationError(f"{path}: no samples found")
        return cls(times, utils)

    @property
    def duration(self) -> float:
        """Time of the last sample, seconds."""
        return float(self._t[-1])

    def utilization_at(self, t: float) -> float:
        """The step-function value at time ``t`` (clamps outside the span)."""
        idx = int(np.searchsorted(self._t, t, side="right")) - 1
        idx = max(0, min(idx, self._u.size - 1))
        return float(self._u[idx])

    def __len__(self) -> int:
        return int(self._t.size)


class TraceRank:
    """Single-rank job replaying a :class:`UtilizationTrace`.

    Parameters
    ----------
    trace:
        The recorded utilization series.
    name:
        Job name.
    tail:
        Seconds to keep replaying the final sample past the trace end
        (lets the thermal state settle before the job reports finished).
    """

    def __init__(
        self, trace: UtilizationTrace, name: str = "trace", tail: float = 0.0
    ) -> None:
        self.trace = trace
        self.name = name
        if tail < 0:
            raise ConfigurationError(f"tail must be >= 0, got {tail!r}")
        self.tail = tail

    def build(self) -> Job:
        """Construct the single-rank job."""
        duration = self.trace.duration + self.tail
        if duration <= 0:
            # A single-sample trace at t=0 with no tail: hold 1 second.
            duration = 1.0

        def fn(t: float) -> float:
            return clamp(self.trace.utilization_at(t), 0.0, 1.0)

        def segments() -> Iterator[Segment]:
            yield _ProfileSegment(fn, duration)

        return Job([RankProgram(segments(), name=self.name)], name=self.name)
