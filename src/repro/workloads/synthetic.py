"""Synthetic Type I/II/III utilization profiles (paper §3.1, Figure 2).

The paper classifies the thermal behaviour of parallel applications
into three types:

* **Type I — sudden**: drastic, *sustained* temperature change from a
  step in CPU utilization.
* **Type II — gradual**: slow, steady drift from sustained CPU-bound
  work charging the heatsink.
* **Type III — jitter**: oscillation around a level from short bursty
  utilization; no sustained trend.

These generators produce utilization-vs-time profiles that, run through
the thermal substrate, reproduce each signature in isolation — the
ground truth against which :mod:`repro.core.classify` and the window
ablations are scored — plus :func:`mixed_thermal_profile`, a Figure-2
style run containing all three.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import clamp, require_in_range, require_positive
from .base import Job, RankProgram, Segment

__all__ = [
    "SyntheticRank",
    "sudden_profile",
    "gradual_profile",
    "jitter_profile",
    "mixed_thermal_profile",
    "UtilizationFn",
]

#: A utilization profile: time (s) -> utilization in [0, 1].
UtilizationFn = Callable[[float], float]


class _ProfileSegment(Segment):
    """A segment that follows a utilization function of elapsed time."""

    def __init__(self, fn: UtilizationFn, duration: float) -> None:
        self.fn = fn
        self.remaining = require_positive(duration, "duration")
        self.elapsed = 0.0

    def advance(self, dt: float, frequency: float) -> Tuple[float, float, bool]:
        consumed = min(dt, self.remaining)
        util = clamp(float(self.fn(self.elapsed)), 0.0, 1.0)
        self.remaining -= consumed
        self.elapsed += consumed
        return consumed, consumed * util, self.remaining <= 1e-12


class SyntheticRank:
    """Single-rank job following an arbitrary utilization function.

    Parameters
    ----------
    fn:
        Utilization as a function of elapsed seconds.
    duration:
        Total profile length, seconds.
    name:
        Job name.
    """

    def __init__(self, fn: UtilizationFn, duration: float, name: str = "synthetic") -> None:
        self.fn = fn
        self.duration = require_positive(duration, "duration")
        self.name = name

    def build(self) -> Job:
        """Construct the single-rank job."""

        def segments() -> Iterator[Segment]:
            yield _ProfileSegment(self.fn, self.duration)

        return Job([RankProgram(segments(), name=self.name)], name=self.name)


def sudden_profile(
    low: float = 0.05,
    high: float = 1.0,
    step_time: float = 60.0,
    duration: float = 180.0,
) -> SyntheticRank:
    """Type I: a sustained utilization step at ``step_time``."""
    require_in_range(low, 0.0, 1.0, "low")
    require_in_range(high, 0.0, 1.0, "high")
    if step_time >= duration:
        raise ConfigurationError("step_time must fall inside the profile")

    def fn(t: float) -> float:
        return high if t >= step_time else low

    return SyntheticRank(fn, duration, name="type1-sudden")


def gradual_profile(
    start: float = 0.2,
    end: float = 1.0,
    duration: float = 300.0,
) -> SyntheticRank:
    """Type II: utilization ramps linearly over the whole profile."""
    require_in_range(start, 0.0, 1.0, "start")
    require_in_range(end, 0.0, 1.0, "end")

    def fn(t: float) -> float:
        return start + (end - start) * (t / duration)

    return SyntheticRank(fn, duration, name="type2-gradual")


def jitter_profile(
    base: float = 0.55,
    amplitude: float = 0.45,
    burst_period: float = 1.5,
    duty: float = 0.5,
    duration: float = 180.0,
    rng: Optional[np.random.Generator] = None,
) -> SyntheticRank:
    """Type III: short bursts around a mean with no sustained trend.

    Bursty on/off utilization with optional random phase wobble; the
    long-run mean stays at ``base`` so the heatsink sees no trend.
    """
    require_in_range(base, 0.0, 1.0, "base")
    require_in_range(duty, 0.05, 0.95, "duty")
    require_positive(burst_period, "burst_period")
    wobble = 0.0 if rng is None else float(rng.uniform(0, burst_period))

    def fn(t: float) -> float:
        phase = ((t + wobble) % burst_period) / burst_period
        return clamp(base + (amplitude if phase < duty else -amplitude), 0.0, 1.0)

    return SyntheticRank(fn, duration, name="type3-jitter")


def mixed_thermal_profile(
    duration: float = 300.0,
    rng: Optional[np.random.Generator] = None,
) -> SyntheticRank:
    """A Figure-2 style profile containing all three types in sequence.

    Layout (fractions of ``duration``):

    * 0–10 %: idle (cool baseline)
    * 10–45 %: **sudden** jump to full load, then sustained full load →
      **gradual** heatsink charge
    * 45–62 %: **sudden** drop back to idle, then gradual decay
    * 62–80 %: **jitter** — bursty utilization with no sustained trend
    * 80–100 %: idle tail
    """

    def fn(t: float) -> float:
        x = t / duration
        if x < 0.10:
            return 0.05
        if x < 0.45:
            return 1.0
        if x < 0.62:
            return 0.05
        if x < 0.80:
            phase = (t % 3.0) / 3.0
            return 1.0 if phase < 0.5 else 0.05
        return 0.05

    return SyntheticRank(fn, duration, name="fig2-mixed")
