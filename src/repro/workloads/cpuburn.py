"""cpu-burn: the synthetic burner of the paper's §4.2.

``cpu_burn_session`` reproduces the experimental protocol of Figure 5:
three back-to-back cpu-burn instances, each ~5 minutes, separated by
idle gaps.  The starts and stops are the Type-I "sudden" events; within
each burn, short utilization dropouts (scheduler preemptions, the
burner's own restart loop) produce the Type-III "jitter" the dynamic
fan control is designed to ignore.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from ..units import require_non_negative, require_positive
from .base import ComputeSegment, IdleSegment, Job, RankProgram, Segment

__all__ = ["CpuBurn", "cpu_burn_session"]


class CpuBurn:
    """Builder for cpu-burn rank programs.

    Parameters
    ----------
    duration:
        Nominal burn length in seconds (at ``reference_frequency``).
    reference_frequency:
        Frequency at which ``duration`` is calibrated, Hz.  cpu-burn is
        pure compute, so at a lower frequency the same work takes
        proportionally longer.
    jitter_rate:
        Expected number of short dropouts per second (0 disables).
    jitter_duration:
        Length of each dropout, seconds.
    rng:
        Randomness for dropout placement; ``None`` disables jitter.
    """

    def __init__(
        self,
        duration: float = 300.0,
        reference_frequency: float = 2.4e9,
        jitter_rate: float = 0.4,
        jitter_duration: float = 0.35,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.duration = require_positive(duration, "duration")
        self.reference_frequency = require_positive(
            reference_frequency, "reference_frequency"
        )
        self.jitter_rate = require_non_negative(jitter_rate, "jitter_rate")
        self.jitter_duration = require_positive(jitter_duration, "jitter_duration")
        self.rng = rng

    def _segments(self) -> Iterator[Segment]:
        total_cycles = self.duration * self.reference_frequency
        if self.rng is None or self.jitter_rate <= 0.0:
            yield ComputeSegment(total_cycles, utilization=1.0)
            return
        # Split the burn into bursts separated by brief dropouts.
        n_dropouts = int(self.duration * self.jitter_rate)
        if n_dropouts == 0:
            yield ComputeSegment(total_cycles, utilization=1.0)
            return
        # Dirichlet-ish split: exponential gaps normalized to the burn.
        weights = self.rng.exponential(1.0, n_dropouts + 1)
        weights /= weights.sum()
        for i, w in enumerate(weights):
            cycles = max(1.0, w * total_cycles)
            yield ComputeSegment(cycles, utilization=1.0)
            if i < n_dropouts:
                yield IdleSegment(self.jitter_duration)

    def rank(self, name: str = "cpu-burn") -> RankProgram:
        """Build a fresh single-rank program for one burn."""
        return RankProgram(self._segments(), name=name)


def cpu_burn_session(
    instances: int = 3,
    burn_duration: float = 300.0,
    gap_duration: float = 40.0,
    rng: Optional[np.random.Generator] = None,
    warmup: float = 20.0,
) -> Job:
    """The Figure 5 protocol: ``instances`` burns separated by idle gaps.

    Returns a single-rank :class:`~repro.workloads.base.Job` whose
    utilization profile is: warmup idle, then
    ``burn, gap, burn, gap, burn`` — yielding sudden rises at each burn
    start, sudden falls at each stop, gradual drift as the heatsink
    charges, and jitter inside each burn.
    """

    def segments() -> Iterator[Segment]:
        if warmup > 0:
            yield IdleSegment(warmup)
        for i in range(instances):
            burner = CpuBurn(duration=burn_duration, rng=rng)
            yield from burner._segments()
            if i < instances - 1 and gap_duration > 0:
                yield IdleSegment(gap_duration)

    rank = RankProgram(segments(), name="cpu-burn-session")
    return Job([rank], name="cpu-burn-session")
