"""NAS Parallel Benchmark-like iterative parallel workloads.

The paper's evaluation runs NPB **BT.B** and **LU.A** on four nodes
(one MPI rank per node).  We model them as what they are to a thermal
controller: iterative solvers alternating

* a frequency-sensitive **compute** segment (the x/y/z sweeps), and
* a frequency-insensitive **communication** segment (face exchanges),

closed by a **barrier** per iteration (the implicit synchronization of
the exchange).  Calibration: BT.B.4 retires ≈200 iterations totalling
≈219 s at 2.4 GHz — Table 1's baseline execution time — with ~10 %
communication, so one DVFS step to 2.2 GHz stretches the run to ≈233 s,
the paper's measured ratio.

Per-rank load imbalance (a fixed skew plus per-iteration noise) makes
barriers bite, and short utilization dips at each exchange are what
interval-based governors like CPUSPEED mistake for idleness.

LU.A.4 additionally carries an intensity *schedule*: its later
iterations are lighter (the paper's Figure 8 shows the temperature
falling mid-run and tDVFS restoring the original frequency), which we
model as a heavy phase followed by a light phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..units import require_in_range, require_non_negative, require_positive
from .base import (
    Barrier,
    BarrierSegment,
    CommSegment,
    ComputeSegment,
    Job,
    RankProgram,
    Segment,
)

__all__ = [
    "NpbParams",
    "NpbJob",
    "bt_b_4",
    "lu_a_4",
    "sp_b_4",
    "cg_b_4",
    "ep_b_4",
    "mg_b_4",
]


@dataclass(frozen=True)
class NpbParams:
    """Shape of one NPB-like benchmark run.

    Attributes
    ----------
    name:
        Benchmark tag, e.g. ``"BT.B.4"``.
    n_ranks:
        MPI ranks (== nodes).
    iterations:
        Solver timesteps.
    compute_seconds:
        Wall time of one iteration's compute segment at
        ``reference_frequency``, seconds.
    comm_seconds:
        Wall time of one iteration's communication segment, seconds.
    comm_utilization:
        Core busy fraction during communication (blocking recv ≈ 0.15).
    reference_frequency:
        Frequency the compute time is quoted at, Hz.
    rank_skew:
        Maximum fixed per-rank compute imbalance (fraction; ranks get
        skews evenly spread in ``[-rank_skew, +rank_skew]``).
    iteration_noise:
        Std-dev of per-iteration compute-time noise (fraction).
    intensity_schedule:
        Optional sequence of (fraction_of_iterations, utilization,
        compute_scale) triples modelling phase changes.  ``None`` means
        uniform full intensity.
    """

    name: str
    n_ranks: int
    iterations: int
    compute_seconds: float
    comm_seconds: float
    comm_utilization: float = 0.15
    reference_frequency: float = 2.4e9
    rank_skew: float = 0.01
    iteration_noise: float = 0.02
    intensity_schedule: Optional[Sequence[tuple]] = None

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ConfigurationError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        require_positive(self.compute_seconds, "compute_seconds")
        require_non_negative(self.comm_seconds, "comm_seconds")
        require_in_range(self.comm_utilization, 0.0, 1.0, "comm_utilization")
        require_positive(self.reference_frequency, "reference_frequency")
        require_in_range(self.rank_skew, 0.0, 0.5, "rank_skew")
        require_in_range(self.iteration_noise, 0.0, 0.5, "iteration_noise")
        if self.intensity_schedule is not None:
            total = sum(f for f, _, _ in self.intensity_schedule)
            if abs(total - 1.0) > 1e-6:
                raise ConfigurationError(
                    f"intensity_schedule fractions must sum to 1, got {total}"
                )

    def nominal_runtime(self) -> float:
        """Ideal runtime at the reference frequency, ignoring imbalance."""
        scale = 1.0
        if self.intensity_schedule is not None:
            scale = sum(f * cs for f, _, cs in self.intensity_schedule)
        return self.iterations * (self.compute_seconds * scale + self.comm_seconds)


class NpbJob:
    """Builds the rank programs of one NPB-like run.

    Parameters
    ----------
    params:
        The benchmark shape.
    rng:
        Noise source for iteration-time variation (``None`` = noiseless).
    """

    def __init__(
        self, params: NpbParams, rng: Optional[np.random.Generator] = None
    ) -> None:
        self.params = params
        self.rng = rng

    def _iteration_intensity(self, iteration: int) -> tuple:
        """(utilization, compute_scale) for the given iteration index."""
        p = self.params
        if p.intensity_schedule is None:
            return 0.98, 1.0
        position = iteration / p.iterations
        acc = 0.0
        for fraction, util, scale in p.intensity_schedule:
            acc += fraction
            if position < acc + 1e-12:
                return util, scale
        _, util, scale = p.intensity_schedule[-1]
        return util, scale

    def build(self) -> Job:
        """Construct a fresh :class:`~repro.workloads.base.Job`."""
        p = self.params
        barriers: List[Barrier] = [
            Barrier(p.n_ranks, f"{p.name}/it{k}") for k in range(p.iterations)
        ]
        # Pre-draw all noise so every rank program is deterministic and
        # the generator needs no shared mutable RNG state.
        if self.rng is not None and p.iteration_noise > 0:
            noise = self.rng.normal(
                0.0, p.iteration_noise, size=(p.n_ranks, p.iterations)
            )
        else:
            noise = np.zeros((p.n_ranks, p.iterations))
        if p.n_ranks > 1:
            skews = np.linspace(-p.rank_skew, p.rank_skew, p.n_ranks)
        else:
            skews = np.zeros(1)

        def segments(rank_id: int) -> Iterator[Segment]:
            for k in range(p.iterations):
                util, scale = self._iteration_intensity(k)
                factor = scale * (1.0 + skews[rank_id] + noise[rank_id, k])
                factor = max(0.05, factor)
                cycles = p.compute_seconds * factor * p.reference_frequency
                yield ComputeSegment(cycles, utilization=util)
                if p.comm_seconds > 0:
                    yield CommSegment(
                        p.comm_seconds, utilization=p.comm_utilization
                    )
                yield BarrierSegment(barriers[k])

        ranks = [
            RankProgram(segments(r), name=f"{p.name}/rank{r}")
            for r in range(p.n_ranks)
        ]
        return Job(ranks, name=p.name)


def bt_b_4(
    rng: Optional[np.random.Generator] = None,
    iterations: Optional[int] = None,
) -> Job:
    """NPB BT class B on 4 ranks — the paper's Table 1 / Figs 6-7, 9-10 load.

    ≈219 s at 2.4 GHz: 200 iterations × (0.83 s compute + 0.22 s comm).
    The comm share (~21 % of the iteration) matches BT.B's measured
    communication fraction on commodity GigE clusters of the era and
    gives interval governors the utilization dips they react to.
    """
    params = NpbParams(
        name="BT.B.4",
        n_ranks=4,
        iterations=iterations if iterations is not None else 200,
        compute_seconds=0.83,
        comm_seconds=0.22,
        comm_utilization=0.15,
    )
    return NpbJob(params, rng=rng).build()


def lu_a_4(
    rng: Optional[np.random.Generator] = None,
    iterations: Optional[int] = None,
) -> Job:
    """NPB LU class A on 4 ranks — the Figure 8 load.

    Modelled with a heavy first phase and a lighter tail so the
    temperature crosses the tDVFS threshold upward, then falls back
    below it — producing the down-then-up frequency trajectory of
    Figure 8.
    """
    params = NpbParams(
        name="LU.A.4",
        n_ranks=4,
        iterations=iterations if iterations is not None else 250,
        compute_seconds=0.72,
        comm_seconds=0.12,
        comm_utilization=0.15,
        intensity_schedule=(
            # LU.A on 4 nodes is communication-bound: even the heavy
            # sweeps keep the core only ~half busy, which is what lets
            # the weak (25 %-capped) traditional fan of Figure 8 hold
            # the plant with a single DVFS step.
            (0.55, 0.63, 1.0),   # heavy sweeps
            (0.45, 0.30, 0.55),  # lighter tail (pipelined wavefronts)
        ),
    )
    return NpbJob(params, rng=rng).build()


def sp_b_4(rng: Optional[np.random.Generator] = None) -> Job:
    """NPB SP class B on 4 ranks — an extra workload for examples/ablations.

    Shorter iterations than BT with a higher communication share.
    """
    params = NpbParams(
        name="SP.B.4",
        n_ranks=4,
        iterations=320,
        compute_seconds=0.42,
        comm_seconds=0.22,
        comm_utilization=0.15,
    )
    return NpbJob(params, rng=rng).build()


def cg_b_4(
    rng: Optional[np.random.Generator] = None,
    iterations: Optional[int] = None,
) -> Job:
    """NPB CG class B on 4 ranks — the communication-bound extreme.

    Conjugate gradient is dominated by irregular sparse communication:
    roughly 40 % of each iteration is exchange time at low utilization,
    which makes it the workload interval governors misjudge hardest and
    a mild thermal load overall.
    """
    params = NpbParams(
        name="CG.B.4",
        n_ranks=4,
        iterations=iterations if iterations is not None else 260,
        compute_seconds=0.38,
        comm_seconds=0.26,
        comm_utilization=0.12,
    )
    return NpbJob(params, rng=rng).build()


def ep_b_4(
    rng: Optional[np.random.Generator] = None,
    iterations: Optional[int] = None,
) -> Job:
    """NPB EP class B on 4 ranks — the embarrassingly parallel extreme.

    Essentially no communication (a single reduction at the end of each
    long block), utilization pinned at ~1.0: thermally it behaves like
    cpu-burn with barriers, and interval governors never see a dip.
    """
    params = NpbParams(
        name="EP.B.4",
        n_ranks=4,
        iterations=iterations if iterations is not None else 24,
        compute_seconds=7.2,
        comm_seconds=0.03,
        comm_utilization=0.15,
        rank_skew=0.005,
    )
    return NpbJob(params, rng=rng).build()


def mg_b_4(
    rng: Optional[np.random.Generator] = None,
    iterations: Optional[int] = None,
) -> Job:
    """NPB MG class B on 4 ranks — short cycles, mid communication.

    Multigrid V-cycles are brief and alternate quickly between compute
    and exchange, putting its power signature between BT and CG.
    """
    params = NpbParams(
        name="MG.B.4",
        n_ranks=4,
        iterations=iterations if iterations is not None else 420,
        compute_seconds=0.30,
        comm_seconds=0.12,
        comm_utilization=0.15,
    )
    return NpbJob(params, rng=rng).build()
