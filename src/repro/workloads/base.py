"""Workload primitives: segments, barriers, rank programs, jobs.

A workload is a :class:`Job` of one or more *ranks* (MPI processes,
one per node).  Each rank executes a sequence of :class:`Segment`
objects:

* :class:`ComputeSegment` — a fixed number of CPU cycles; wall time
  scales as ``cycles / frequency``, so DVFS stretches it.  This is the
  in-band performance cost the paper trades against.
* :class:`CommSegment` — fixed wall time at low utilization
  (blocking MPI transfers are interrupt-driven, the core naps).
  Frequency-insensitive.
* :class:`IdleSegment` — fixed wall time at zero utilization.
* :class:`Barrier` (via :meth:`RankProgram`'s barrier handling) —
  synchronization: a rank arriving early waits at low utilization until
  every rank has arrived, so the slowest node gates the job.  This is
  what makes one throttled node slow the whole cluster, the coupling
  that distinguishes cluster-level thermal control from per-box control.

Ranks are advanced tick-by-tick by their :class:`~repro.cpu.core.CpuCore`;
a rank may cross several segment boundaries within one tick.  Barrier
release happens the instant the last rank arrives, so the ordering skew
between ranks stepped earlier/later in the same tick is bounded by one
tick and reads as (realistic) OS noise.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError, WorkloadError
from ..units import require_in_range, require_non_negative, require_positive

__all__ = [
    "Segment",
    "ComputeSegment",
    "CommSegment",
    "IdleSegment",
    "Barrier",
    "BarrierSegment",
    "RankProgram",
    "Job",
    "WAIT_UTILIZATION",
]

#: Utilization of a core spinning in an MPI progress loop while waiting.
WAIT_UTILIZATION = 0.12


class Segment:
    """One contiguous piece of a rank's program.

    Subclasses implement :meth:`advance`, returning how much of the
    offered time slice was consumed, how much of it the core was busy,
    and whether the segment completed within the slice.
    """

    def advance(self, dt: float, frequency: float) -> Tuple[float, float, bool]:
        """Advance by up to ``dt`` seconds at ``frequency`` Hz.

        Returns
        -------
        (consumed, busy, done):
            ``consumed`` seconds of wall time used (``<= dt``),
            ``busy`` seconds of that during which the core was busy,
            ``done`` whether the segment finished.
        """
        raise NotImplementedError


class ComputeSegment(Segment):
    """Retire ``cycles`` CPU cycles; wall time = cycles / frequency.

    Parameters
    ----------
    cycles:
        Work to retire.
    utilization:
        Busy fraction while computing (just below 1.0 accounts for
        memory stalls showing as iowait).
    """

    def __init__(self, cycles: float, utilization: float = 0.98) -> None:
        self.remaining = require_positive(cycles, "cycles")
        self.utilization = require_in_range(utilization, 0.0, 1.0, "utilization")

    def advance(self, dt: float, frequency: float) -> Tuple[float, float, bool]:
        require_positive(frequency, "frequency")
        time_needed = self.remaining / frequency
        if time_needed <= dt:
            self.remaining = 0.0
            return time_needed, time_needed * self.utilization, True
        self.remaining -= dt * frequency
        return dt, dt * self.utilization, False


class CommSegment(Segment):
    """Blocking communication: fixed wall time, low utilization."""

    def __init__(self, duration: float, utilization: float = 0.15) -> None:
        self.remaining = require_positive(duration, "duration")
        self.utilization = require_in_range(utilization, 0.0, 1.0, "utilization")

    def advance(self, dt: float, frequency: float) -> Tuple[float, float, bool]:
        consumed = min(dt, self.remaining)
        self.remaining -= consumed
        return consumed, consumed * self.utilization, self.remaining <= 1e-12


class IdleSegment(CommSegment):
    """Fixed wall time at zero utilization (job gaps, think time)."""

    def __init__(self, duration: float) -> None:
        super().__init__(duration, utilization=0.0)


class Barrier:
    """A one-shot synchronization point shared by all ranks of a job."""

    def __init__(self, n_ranks: int, label: str = "") -> None:
        if n_ranks < 1:
            raise ConfigurationError(f"barrier needs >= 1 rank, got {n_ranks}")
        self.n_ranks = n_ranks
        self.label = label
        self._arrived = 0

    def arrive(self) -> None:
        """Register one rank's arrival (each rank must arrive exactly once)."""
        if self._arrived >= self.n_ranks:
            raise WorkloadError(
                f"barrier {self.label!r}: more arrivals than ranks"
            )
        self._arrived += 1

    @property
    def released(self) -> bool:
        """True once every rank has arrived."""
        return self._arrived == self.n_ranks

    @property
    def arrived(self) -> int:
        """Number of ranks that have arrived so far."""
        return self._arrived


class BarrierSegment(Segment):
    """A rank's participation in a :class:`Barrier`.

    On first advance the rank arrives; until the barrier releases, the
    offered time is consumed waiting at :data:`WAIT_UTILIZATION`.
    """

    def __init__(self, barrier: Barrier) -> None:
        self.barrier = barrier
        self._arrived = False

    def advance(self, dt: float, frequency: float) -> Tuple[float, float, bool]:
        if not self._arrived:
            self.barrier.arrive()
            self._arrived = True
        if self.barrier.released:
            return 0.0, 0.0, True
        return dt, dt * WAIT_UTILIZATION, False


class RankProgram:
    """A rank: a lazy sequence of segments plus completion bookkeeping.

    Implements :class:`repro.cpu.core.RankInterface`.

    Parameters
    ----------
    segments:
        Iterable (may be a generator) of :class:`Segment` objects.
    name:
        Rank identifier, e.g. ``"bt.b.4/rank2"``.
    """

    def __init__(self, segments: Iterable[Segment], name: str = "rank") -> None:
        self._segments: Iterator[Segment] = iter(segments)
        self.name = name
        self._current: Optional[Segment] = None
        self._finished = False
        self._elapsed = 0.0
        self._busy = 0.0
        self.finish_time: Optional[float] = None

    def _next_segment(self) -> bool:
        """Load the next segment; returns False when the program is over."""
        try:
            self._current = next(self._segments)
            return True
        except StopIteration:
            self._current = None
            self._finished = True
            return False

    def advance(self, dt: float, frequency: float) -> float:
        """Advance up to ``dt`` seconds; returns utilization over ``dt``."""
        if self._finished:
            return 0.0
        remaining = dt
        busy_total = 0.0
        # A rank can cross many segment boundaries inside one tick; a
        # zero-time segment (released barrier) must not loop forever, so
        # the loop exits when the program ends or the slice is used up.
        while remaining > 1e-12:
            if self._current is None and not self._next_segment():
                break
            assert self._current is not None
            consumed, busy, done = self._current.advance(remaining, frequency)
            remaining -= consumed
            busy_total += busy
            if done:
                self._current = None
            elif consumed <= 0.0:
                raise WorkloadError(
                    f"rank {self.name!r}: segment "
                    f"{type(self._current).__name__} made no progress"
                )
        if self._current is None and not self._finished:
            # Peek ahead so completion is detected the tick the last
            # segment ends, not one tick later (the pulled segment
            # becomes current for the next tick).
            self._next_segment()
        used = dt - remaining
        self._elapsed += dt
        self._busy += busy_total
        if self._finished and self.finish_time is None:
            # Completion is stamped by the job (which knows sim time);
            # _elapsed is a per-rank fallback.
            self.finish_time = self._elapsed
        return min(1.0, busy_total / dt) if dt > 0 else 0.0

    @property
    def finished(self) -> bool:
        """True once all segments have completed."""
        return self._finished

    @property
    def elapsed(self) -> float:
        """Wall time this rank has been advanced, seconds."""
        return self._elapsed

    @property
    def busy_seconds(self) -> float:
        """Cumulative busy time, seconds."""
        return self._busy


class Job:
    """A parallel job: one :class:`RankProgram` per node.

    Parameters
    ----------
    ranks:
        The rank programs, index-aligned with cluster nodes.
    name:
        Job identifier (used in events and reports).
    """

    def __init__(self, ranks: List[RankProgram], name: str = "job") -> None:
        if not ranks:
            raise ConfigurationError("a job needs at least one rank")
        self.ranks = list(ranks)
        self.name = name

    @property
    def n_ranks(self) -> int:
        """Number of ranks (== nodes the job spans)."""
        return len(self.ranks)

    @property
    def finished(self) -> bool:
        """True when every rank has completed."""
        return all(r.finished for r in self.ranks)

    def make_barriers(self, count: int, label_prefix: str = "b") -> List[Barrier]:
        """Create ``count`` barriers sized for this job's rank count."""
        return [
            Barrier(self.n_ranks, f"{label_prefix}{i}") for i in range(count)
        ]
