"""Target mode identification (paper §3.2.2, final paragraph).

Given the current slot index ``i`` in the thermal control array and the
predicted temperature variation ``Δt`` from the history window, the
next slot is

.. math::

    i' = i + c \\, \\Delta t, \\qquad c = \\frac{N - 1}{t_{max} - t_{min}}

so that a swing across the whole safe temperature band maps onto the
whole array.  The level-one variation is consulted first; only when it
produces *no index change* is the level-two (gradual) variation tried —
this ordering is what lets the controller respond to sudden events
immediately while still tracking slow drift, and it is one of the
design decisions the ablation experiment flips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..units import clamp
from .control_array import ThermalControlArray

__all__ = ["ModeSelector", "Selection"]


@dataclass(frozen=True)
class Selection:
    """Outcome of one target-mode identification.

    Attributes
    ----------
    slot:
        The chosen 0-based slot index.
    source:
        Which delta drove the choice: ``"l1"``, ``"l2"`` or ``"hold"``.
    """

    slot: int
    source: str


class ModeSelector:
    """Maps window deltas to control-array slots.

    Parameters
    ----------
    array:
        The thermal control array being indexed.
    l2_when_l1_silent:
        The paper's rule: consult Δt_l2 only when Δt_l1 yields no
        change.  Set ``False`` (ablation) to *always* prefer Δt_l1 and
        ignore Δt_l2 entirely.
    """

    def __init__(
        self, array: ThermalControlArray, l2_when_l1_silent: bool = True
    ) -> None:
        self.array = array
        self.l2_when_l1_silent = l2_when_l1_silent
        self.c = array.policy.scale_coefficient(len(array))

    def _candidate(self, slot: int, delta: float) -> int:
        """Apply ``i + c·Δt`` with rounding and clamping to [0, N-1]."""
        raw = slot + round(self.c * delta)
        return int(clamp(raw, 0, len(self.array) - 1))

    def select(
        self,
        current_slot: int,
        delta_l1: float,
        delta_l2: Optional[float],
    ) -> Selection:
        """Choose the next slot from the two window deltas.

        Parameters
        ----------
        current_slot:
            The controller's current 0-based slot.
        delta_l1:
            Level-one (sudden) variation, K.
        delta_l2:
            Level-two (gradual) variation, K, or ``None`` while the
            FIFO is filling.
        """
        cand = self._candidate(current_slot, delta_l1)
        if cand != current_slot:
            return Selection(slot=cand, source="l1")
        if self.l2_when_l1_silent and delta_l2 is not None:
            cand = self._candidate(current_slot, delta_l2)
            if cand != current_slot:
                return Selection(slot=cand, source="l2")
        return Selection(slot=current_slot, source="hold")
