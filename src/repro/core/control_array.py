"""The thermal control array (paper §3.2.2, Eq. 1).

The array is the unifying data structure of the paper: any thermal
control technique is represented as ``N`` slots holding mode values in
non-descending order of cooling effectiveness.  Slot 1 always holds the
least effective mode available, slot N the most effective, and the
slots in between are filled according to the user policy ``P_p``:

.. math::

    n_p = \\lfloor (P_p - P_{MIN})(N-1) / (P_{MAX} - P_{MIN}) \\rfloor + 1

Slots ``[n_p, N]`` (1-based) are pinned to the most effective mode;
slots ``[1, n_p-1]`` hold a subset of the physically available modes,
evenly extracted from the full set.  Consequently:

* small ``P_p`` → small ``n_p`` → most slots are "max cooling" and one
  index step sweeps several physical modes (aggressive);
* large ``P_p`` → long gentle ramp using (nearly) every physical mode
  (cost-oriented).

Duplicated values are permitted; an array in which *all* slots hold one
value represents a technique made insensitive to temperature changes
(the paper's degenerate case).

Internally slots are 0-based; the public accessors use 0-based indices,
and docstrings quote the paper's 1-based convention where relevant.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .policy import Policy

__all__ = ["ThermalControlArray", "DEFAULT_ARRAY_SIZE"]

#: Default slot count.  100 gives every technique the same index
#: geometry as the paper's 100-step fan ladder, so one ``P_p`` has the
#: same meaning across fan, DVFS and sleep-state actuators.
DEFAULT_ARRAY_SIZE = 100


class ThermalControlArray:
    """Eq.-(1)-filled array of thermal control modes.

    Parameters
    ----------
    modes:
        Physically available modes, **ascending in cooling
        effectiveness** (e.g. fan duties low→high, or CPU frequencies
        high→low).  Mode values are opaque to the array.
    policy:
        Supplies ``P_p`` and its bounds.
    size:
        Slot count ``N``.  Defaults to
        ``max(len(modes), DEFAULT_ARRAY_SIZE)`` — the paper allows N to
        be equal to or greater than the number of physical modes.
    """

    def __init__(
        self,
        modes: Sequence[Any],
        policy: Policy,
        size: Optional[int] = None,
    ) -> None:
        if len(modes) < 2:
            raise ConfigurationError(
                f"need at least 2 physical modes, got {len(modes)}"
            )
        self.modes: Tuple[Any, ...] = tuple(modes)
        self.policy = policy
        n = size if size is not None else max(len(modes), DEFAULT_ARRAY_SIZE)
        if n < len(modes):
            raise ConfigurationError(
                f"array size ({n}) must be >= number of physical modes "
                f"({len(modes)})"
            )
        if n < 2:
            raise ConfigurationError(f"array size must be >= 2, got {n}")
        self.size = n
        self.n_p = self._compute_np()
        # _slot_mode_pos[i] = index into self.modes of the value at slot i.
        self._slot_mode_pos: List[int] = self._fill()

    # -- construction ----------------------------------------------------

    def _compute_np(self) -> int:
        """Eq. (1): the pin boundary ``n_p`` (1-based)."""
        p = self.policy
        return (
            int(
                (p.pp - p.p_min) * (self.size - 1) // (p.p_max - p.p_min)
            )
            + 1
        )

    def _fill(self) -> List[int]:
        """Fill the slots per §3.2.2.

        0-based: slots ``[n_p-1, N-1]`` pin the most effective mode;
        slots ``[0, n_p-2]`` evenly extract from the physical set,
        starting at the least effective mode.
        """
        m = len(self.modes)
        top = m - 1
        positions = [top] * self.size
        ramp_len = self.n_p - 1  # number of non-pinned slots
        if ramp_len > 0:
            if ramp_len == 1:
                positions[0] = 0
            else:
                for k in range(ramp_len):
                    # Even extraction: slot k of the ramp maps to mode
                    # round(k * top / ramp_len); k = ramp_len would land
                    # exactly on `top`, which is the first pinned slot.
                    positions[k] = round(k * top / ramp_len)
        return positions

    # -- access ----------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, slot: int) -> Any:
        """Mode value at ``slot`` (0-based)."""
        if not 0 <= slot < self.size:
            raise IndexError(
                f"slot {slot} out of range [0, {self.size - 1}]"
            )
        return self.modes[self._slot_mode_pos[slot]]

    def mode_position(self, slot: int) -> int:
        """Index into the physical mode set of the value at ``slot``."""
        if not 0 <= slot < self.size:
            raise IndexError(
                f"slot {slot} out of range [0, {self.size - 1}]"
            )
        return self._slot_mode_pos[slot]

    def values(self) -> List[Any]:
        """All slot values, in slot order."""
        return [self.modes[p] for p in self._slot_mode_pos]

    @property
    def pinned_slots(self) -> int:
        """Number of slots pinned at the most effective mode."""
        return self.size - (self.n_p - 1)

    def slot_for_mode(self, mode: Any) -> int:
        """The lowest slot whose value is nearest to ``mode``.

        ``mode`` must be one of the physical modes.  When the exact
        mode was skipped by the even extraction, the slot holding the
        nearest (by position in the physical set) value is returned;
        ties resolve toward less effective.
        """
        try:
            target = self.modes.index(mode)
        except ValueError:
            raise ConfigurationError(
                f"{mode!r} is not one of the physical modes"
            ) from None
        best_slot = 0
        best_dist = abs(self._slot_mode_pos[0] - target)
        for slot in range(1, self.size):
            dist = abs(self._slot_mode_pos[slot] - target)
            if dist < best_dist:
                best_slot, best_dist = slot, dist
                if dist == 0:
                    break
        return best_slot

    def next_distinct_slot(self, slot: int) -> int:
        """Lowest slot above ``slot`` holding a *different* mode.

        Returns ``slot`` itself if no more-effective mode exists above
        it (already at or equivalent to the top).
        """
        if not 0 <= slot < self.size:
            raise IndexError(
                f"slot {slot} out of range [0, {self.size - 1}]"
            )
        current = self._slot_mode_pos[slot]
        for s in range(slot + 1, self.size):
            if self._slot_mode_pos[s] != current:
                return s
        return slot

    def is_monotone(self) -> bool:
        """True when slot values are non-descending in effectiveness.

        Holds by construction; exposed for the property-based tests.
        """
        pos = self._slot_mode_pos
        return all(a <= b for a, b in zip(pos, pos[1:]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThermalControlArray(N={self.size}, n_p={self.n_p}, "
            f"P_p={self.policy.pp}, modes={len(self.modes)})"
        )
