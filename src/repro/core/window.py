"""The two-level history window (paper §3.2.1, Figure 3).

**Level one** is a small array (paper: 4 entries) of the most recent
temperature samples.  When it fills, the controller computes

.. math::

    \\Delta t_{l1} = \\sum(\\text{second half}) - \\sum(\\text{first half})

— a sum difference, not a mean difference, exactly as the paper words
it.  A large |Δt_l1| marks a *sudden* sustained change; symmetric
jitter inside the window cancels out of the half-sums.  The window is
then cleared for the next round.

**Level two** is a fixed-size FIFO (paper: 5 entries) of level-one
averages.  Once full,

.. math::

    \\Delta t_{l2} = \\text{rear} - \\text{front}

(newest minus oldest average) tracks *gradual* drift across the longer
horizon.  The FIFO is maintained by enqueue/dequeue per round, so the
two deltas advance together: one :class:`WindowUpdate` is emitted per
level-one round.

Sizing guidance from the paper (§3.2.1): a window too small reacts to
jitter as if it were sudden; too large reacts sluggishly.  4 entries at
4 Hz (1 s rounds) was found sufficient — the ablation experiment
reproduces that finding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["WindowUpdate", "TwoLevelWindow"]


@dataclass(frozen=True)
class WindowUpdate:
    """Emitted every time the level-one window completes a round.

    Attributes
    ----------
    t:
        Time of the sample that completed the round, seconds.
    average:
        Mean of this round's level-one samples, °C.
    delta_l1:
        Second-half sum minus first-half sum of the round, K.
    delta_l2:
        Rear-minus-front of the level-two FIFO, K — ``None`` until the
        FIFO has filled.
    l2_average:
        Mean of the FIFO's current contents, °C.
    l2_full:
        Whether the FIFO holds its full complement.
    l2_values:
        FIFO contents, oldest first (front → rear).
    """

    t: float
    average: float
    delta_l1: float
    delta_l2: Optional[float]
    l2_average: float
    l2_full: bool
    l2_values: Tuple[float, ...]


class TwoLevelWindow:
    """The paper's two-level temperature history structure.

    Parameters
    ----------
    l1_size:
        Level-one array size; must be an even integer >= 2 so the
        half-sum split is exact (paper: 4).
    l2_size:
        Level-two FIFO depth, >= 2 (paper: 5).
    """

    def __init__(self, l1_size: int = 4, l2_size: int = 5) -> None:
        if l1_size < 2 or l1_size % 2 != 0:
            raise ConfigurationError(
                f"l1_size must be an even integer >= 2, got {l1_size}"
            )
        if l2_size < 2:
            raise ConfigurationError(f"l2_size must be >= 2, got {l2_size}")
        self.l1_size = l1_size
        self.l2_size = l2_size
        self._l1: List[float] = []
        self._l2: Deque[float] = deque(maxlen=l2_size)
        self._rounds = 0
        self._samples = 0

    @property
    def rounds(self) -> int:
        """Completed level-one rounds so far."""
        return self._rounds

    @property
    def samples(self) -> int:
        """Total samples pushed so far."""
        return self._samples

    @property
    def l1_fill(self) -> int:
        """Samples currently in the (partial) level-one array."""
        return len(self._l1)

    @property
    def l2_values(self) -> Tuple[float, ...]:
        """Current FIFO contents, oldest first."""
        return tuple(self._l2)

    def push(self, t: float, sample: float) -> Optional[WindowUpdate]:
        """Add one temperature sample; returns an update on round completion.

        Most pushes return ``None``; every ``l1_size``-th push completes
        a round, computes both deltas, rotates the FIFO, clears level
        one and returns the :class:`WindowUpdate`.
        """
        self._l1.append(float(sample))
        self._samples += 1
        if len(self._l1) < self.l1_size:
            return None

        half = self.l1_size // 2
        first = sum(self._l1[:half])
        second = sum(self._l1[half:])
        delta_l1 = second - first
        average = (first + second) / self.l1_size

        self._l2.append(average)  # deque(maxlen) dequeues the front itself
        l2_full = len(self._l2) == self.l2_size
        delta_l2 = (self._l2[-1] - self._l2[0]) if l2_full else None
        l2_average = sum(self._l2) / len(self._l2)

        self._l1.clear()
        self._rounds += 1
        return WindowUpdate(
            t=t,
            average=average,
            delta_l1=delta_l1,
            delta_l2=delta_l2,
            l2_average=l2_average,
            l2_full=l2_full,
            l2_values=tuple(self._l2),
        )

    def reset(self) -> None:
        """Discard all history (both levels)."""
        self._l1.clear()
        self._l2.clear()
