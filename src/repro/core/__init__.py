"""The paper's primary contribution: unified dynamic thermal control.

This package is hardware-free — it manipulates abstract *modes* through
the :class:`~repro.core.actuator.ModeActuator` protocol, which is
exactly the unification the paper proposes: fans, DVFS and sleep states
all become "an array of modes sorted by cooling effectiveness", and one
controller drives any of them.

* :mod:`repro.core.policy` — the user knob ``P_p`` and safe-range
  bounds.
* :mod:`repro.core.control_array` — the thermal control array and the
  Eq. (1) fill rule.
* :mod:`repro.core.window` — the two-level history window (Δt_l1,
  Δt_l2).
* :mod:`repro.core.classify` — sudden/gradual/jitter behaviour
  classification (§3.1).
* :mod:`repro.core.mode_select` — target-mode identification
  (``i + c·Δt``).
* :mod:`repro.core.actuator` — adapters wrapping the fan driver, DVFS
  and the sleep-state throttler as mode actuators.
* :mod:`repro.core.controller` — the unified controller tying window +
  array + selector + actuator together.
* :mod:`repro.core.coordinator` — multi-technique coordination under a
  shared policy.
"""

from .actuator import DvfsModeActuator, FanModeActuator, ModeActuator
from .classify import ThermalBehavior, classify_profile, classify_trace
from .control_array import ThermalControlArray
from .controller import ControllerState, UnifiedThermalController
from .coordinator import Coordinator
from .mode_select import ModeSelector
from .policy import Policy
from .window import TwoLevelWindow, WindowUpdate

__all__ = [
    "Policy",
    "ThermalControlArray",
    "TwoLevelWindow",
    "WindowUpdate",
    "ThermalBehavior",
    "classify_trace",
    "classify_profile",
    "ModeSelector",
    "ModeActuator",
    "FanModeActuator",
    "DvfsModeActuator",
    "UnifiedThermalController",
    "ControllerState",
    "Coordinator",
]
