"""The unified thermal controller (paper §3.2).

One :class:`UnifiedThermalController` ties the pieces together for one
technique on one node:

.. code-block:: text

    sensor samples ──▶ TwoLevelWindow ──(Δt_l1, Δt_l2)──▶ ModeSelector
                                                             │ slot
                              ThermalControlArray[slot] ◀────┘
                                       │ mode
                                       ▼
                                  ModeActuator

State between rounds is the current *slot index* (not the mode value):
because the array may hold duplicated values, index motion inside a
pinned region is remembered — the controller "knows" how deep into the
aggressive region it has pushed even when consecutive slots map to the
same physical mode.

An emergency override is layered on top (as every production thermal
stack has one): any single sample at/above the policy's ``t_max`` slams
the slot to the most effective end immediately, without waiting for a
window round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.events import EventLog
from ..telemetry.provenance import ProvenanceRecorder
from ..telemetry.registry import MetricsRegistry
from .actuator import ModeActuator
from .control_array import ThermalControlArray
from .mode_select import ModeSelector
from .policy import Policy
from .window import TwoLevelWindow, WindowUpdate

__all__ = ["ControllerState", "UnifiedThermalController"]


@dataclass
class ControllerState:
    """Mutable bookkeeping of one controller instance.

    Attributes
    ----------
    slot:
        Current 0-based slot in the control array.
    mode_changes:
        Number of times a new physical mode was actuated.
    emergencies:
        Number of emergency overrides taken.
    last_update:
        The most recent window update (None before the first round).
    """

    slot: int = 0
    mode_changes: int = 0
    emergencies: int = 0
    last_update: Optional[WindowUpdate] = None


class UnifiedThermalController:
    """History-based, context-aware controller for one technique.

    Parameters
    ----------
    actuator:
        The wrapped technique.
    policy:
        User policy (``P_p`` and the safe band).
    array_size:
        Slot count N of the control array (default: the shared
        100-slot geometry).
    l1_size / l2_size:
        Window geometry (paper: 4 and 5).
    l2_when_l1_silent:
        §3.2.2's ordering rule; ``False`` disables the level-two
        fallback (ablation).
    events:
        Optional event log; mode changes emit
        ``ctrl.mode`` and emergencies ``ctrl.emergency``.
    name:
        Event source name.
    telemetry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`;
        when enabled, every completed window round is published as a
        ``telemetry.decision.*`` provenance record (deltas, triggering
        level, slot/mode motion, the Eq.-(1) pin boundary).
    """

    def __init__(
        self,
        actuator: ModeActuator,
        policy: Policy,
        array_size: Optional[int] = None,
        l1_size: int = 4,
        l2_size: int = 5,
        l2_when_l1_silent: bool = True,
        events: Optional[EventLog] = None,
        name: str = "unified-ctrl",
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.actuator = actuator
        self.policy = policy
        self.array = ThermalControlArray(
            actuator.modes, policy, size=array_size
        )
        self.window = TwoLevelWindow(l1_size=l1_size, l2_size=l2_size)
        self.selector = ModeSelector(
            self.array, l2_when_l1_silent=l2_when_l1_silent
        )
        self.events = events
        self.name = name
        self.state = ControllerState(
            slot=self.array.slot_for_mode(actuator.current_mode())
        )
        self.provenance = ProvenanceRecorder(
            events, telemetry, name, actuator.technique
        )

    # -- the control loop --------------------------------------------------

    def push_sample(self, t: float, temperature: float) -> Optional[WindowUpdate]:
        """Feed one sensor sample; acts when a window round completes.

        Returns the :class:`~repro.core.window.WindowUpdate` on rounds,
        ``None`` otherwise.
        """
        if temperature >= self.policy.t_max:
            self._emergency(t, temperature)

        update = self.window.push(t, temperature)
        if update is None:
            return None
        self.state.last_update = update
        slot_before = self.state.slot
        mode_before = self.array[slot_before]
        selection = self.selector.select(
            self.state.slot, update.delta_l1, update.delta_l2
        )
        if selection.slot != self.state.slot:
            self._move_to(selection.slot, t, source=selection.source)
        self.provenance.control_round(
            t,
            delta_l1=update.delta_l1,
            delta_l2=update.delta_l2,
            via=selection.source,
            slot=slot_before,
            target_slot=self.state.slot,
            mode=mode_before,
            target_mode=self.array[self.state.slot],
            n_p=self.array.n_p,
            array_size=len(self.array),
        )
        return update

    def _move_to(self, slot: int, t: float, source: str) -> None:
        """Adopt ``slot``; actuate if the physical mode changed."""
        old_mode = self.array[self.state.slot]
        new_mode = self.array[slot]
        self.state.slot = slot
        if new_mode != old_mode:
            self.actuator.apply(new_mode, t)
            self.state.mode_changes += 1
            if self.events is not None:
                self.events.emit(
                    t,
                    f"ctrl.mode.{self.actuator.technique}",
                    self.name,
                    slot=slot,
                    mode=new_mode,
                    via=source,
                )

    def _emergency(self, t: float, temperature: float) -> None:
        """Slam to the most effective mode on a t_max excursion."""
        top = len(self.array) - 1
        if self.state.slot != top:
            self.state.emergencies += 1
            if self.events is not None:
                self.events.emit(
                    t,
                    f"ctrl.emergency.{self.actuator.technique}",
                    self.name,
                    temperature=temperature,
                )
            self._move_to(top, t, source="emergency")
            self.provenance.emergency(t, temperature, target_slot=top)

    # -- introspection ------------------------------------------------------

    @property
    def current_slot(self) -> int:
        """The controller's current 0-based slot."""
        return self.state.slot

    @property
    def current_mode(self):
        """The mode value at the current slot."""
        return self.array[self.state.slot]
