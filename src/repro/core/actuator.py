"""Mode actuator adapters.

The unification boundary: each physical technique is wrapped as a
:class:`ModeActuator` exposing its modes **ascending in cooling
effectiveness** plus apply/read methods.  The controller above this
line neither knows nor cares whether a mode is a PWM duty, a CPU
frequency, or a throttle level — which is precisely the paper's claim
that one framework can host in-band and out-of-band techniques alike.

* :class:`FanModeActuator` — out-of-band: duty fractions low→high over
  a :class:`~repro.fan.driver.FanDriver`.
* :class:`DvfsModeActuator` — in-band: P-state indices fast→slow over
  a :class:`~repro.cpu.dvfs.Dvfs` (note the order reversal: *lower*
  frequency is *more* effective at cooling).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..cpu.dvfs import Dvfs
from ..errors import ActuatorError
from ..fan.driver import FanDriver

__all__ = ["ModeActuator", "FanModeActuator", "DvfsModeActuator"]


class ModeActuator:
    """Protocol/base for technique adapters.

    Subclasses define :attr:`modes` (ascending effectiveness) and
    implement :meth:`apply` / :meth:`current_mode`.
    """

    #: Short technique tag used in events ("fan", "dvfs", "sleep").
    technique: str = "abstract"

    @property
    def modes(self) -> Sequence[Any]:
        """Physically available modes, ascending cooling effectiveness."""
        raise NotImplementedError

    def apply(self, mode: Any, t: float) -> None:
        """Actuate ``mode`` at simulation time ``t``."""
        raise NotImplementedError

    def current_mode(self) -> Any:
        """The mode currently in force."""
        raise NotImplementedError


class FanModeActuator(ModeActuator):
    """Out-of-band: PWM duty steps over the fan driver.

    Parameters
    ----------
    driver:
        The host-side fan driver.  Only duties within the driver's
        ``max_duty`` cap are exposed as modes, so a capped (weaker) fan
        presents a genuinely smaller mode set — Figure 7's setup.
    """

    technique = "fan"

    def __init__(self, driver: FanDriver) -> None:
        self.driver = driver
        usable = [d for d in driver.ladder.duties if d <= driver.max_duty + 1e-12]
        if len(usable) < 2:
            raise ActuatorError(
                f"fan cap {driver.max_duty} leaves fewer than 2 usable "
                "duty steps"
            )
        self._modes = tuple(usable)

    @property
    def modes(self) -> Sequence[float]:
        return self._modes

    def apply(self, mode: float, t: float) -> None:
        self.driver.set_duty(float(mode))

    def current_mode(self) -> float:
        duty = self.driver.get_duty()
        # Snap the register readback to the nearest exposed mode.
        return min(self._modes, key=lambda d: abs(d - duty))


class DvfsModeActuator(ModeActuator):
    """In-band: P-state indices over the DVFS actuator.

    Mode values are P-state indices; since the
    :class:`~repro.cpu.pstate.PStateTable` is fastest-first, ascending
    index *is* ascending cooling effectiveness, so the mode list is
    simply ``0..len(table)-1``.
    """

    technique = "dvfs"

    def __init__(self, dvfs: Dvfs) -> None:
        self.dvfs = dvfs
        self._modes = tuple(range(len(dvfs.table)))

    @property
    def modes(self) -> Sequence[int]:
        return self._modes

    def apply(self, mode: int, t: float) -> None:
        self.dvfs.set_index(int(mode), t)

    def current_mode(self) -> int:
        return self.dvfs.index
