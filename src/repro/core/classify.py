"""Thermal behaviour classification (paper §3.1, Figure 2).

The paper sorts the thermal behaviour of parallel applications into
three types — **sudden** (Type I), **gradual** (Type II) and **jitter**
(Type III) — and argues a controller must react to I and II while
refusing to chase III.  This module classifies a temperature series
into those types (plus **steady** for quiescent stretches) using the
same two-level window the controller itself runs, so the labels mean
exactly "what the controller would perceive":

* a round with a large ``|Δt_l1|`` is **sudden**;
* otherwise, a full FIFO with a large ``|Δt_l2|`` is **gradual**;
* otherwise, a round whose *internal* spread is large (the half-sums
  cancelled a real oscillation) is **jitter**;
* otherwise **steady**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .window import TwoLevelWindow

__all__ = ["ThermalBehavior", "ClassifierThresholds", "classify_trace", "classify_profile"]


class ThermalBehavior(enum.Enum):
    """The paper's thermal behaviour taxonomy (plus a quiescent label)."""

    SUDDEN = "sudden"    # Type I: drastic sustained change
    GRADUAL = "gradual"  # Type II: slow steady drift
    JITTER = "jitter"    # Type III: oscillation, no trend
    STEADY = "steady"    # no significant activity


@dataclass(frozen=True)
class ClassifierThresholds:
    """Decision thresholds in kelvin.

    Attributes
    ----------
    sudden_delta:
        Minimum ``|Δt_l1|`` (half-sum difference) to call a round
        sudden.  Note the units: for a 4-entry window this is a sum
        over 2 samples, so 1.5 K ≈ a 0.75 K/sample sustained move.
    gradual_delta:
        Minimum ``|Δt_l2|`` (rear-front of the FIFO) to call the longer
        horizon gradual.
    jitter_spread:
        Minimum within-round standard deviation to call a trendless
        round jitter.
    """

    sudden_delta: float = 1.5
    gradual_delta: float = 0.75
    jitter_spread: float = 0.35

    def __post_init__(self) -> None:
        for name in ("sudden_delta", "gradual_delta", "jitter_spread"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be > 0")


def classify_trace(
    times: Sequence[float],
    values: Sequence[float],
    l1_size: int = 4,
    l2_size: int = 5,
    thresholds: ClassifierThresholds | None = None,
) -> List[Tuple[float, ThermalBehavior]]:
    """Label each completed window round of a temperature series.

    Parameters
    ----------
    times, values:
        The temperature series (seconds, °C), equal length.
    l1_size, l2_size:
        Window geometry (paper defaults).
    thresholds:
        Decision thresholds.

    Returns
    -------
    list of (time, behaviour):
        One entry per completed level-one round.
    """
    t_arr = np.asarray(times, dtype=np.float64)
    v_arr = np.asarray(values, dtype=np.float64)
    if t_arr.shape != v_arr.shape or t_arr.ndim != 1:
        raise ConfigurationError("times and values must be 1-D, equal length")
    th = thresholds if thresholds is not None else ClassifierThresholds()
    window = TwoLevelWindow(l1_size=l1_size, l2_size=l2_size)

    labels: List[Tuple[float, ThermalBehavior]] = []
    round_samples: List[float] = []
    for t, v in zip(t_arr, v_arr):
        round_samples.append(float(v))
        update = window.push(float(t), float(v))
        if update is None:
            continue
        spread = float(np.std(round_samples))
        round_samples.clear()
        if abs(update.delta_l1) >= th.sudden_delta:
            label = ThermalBehavior.SUDDEN
        elif (
            update.delta_l2 is not None
            and abs(update.delta_l2) >= th.gradual_delta
        ):
            label = ThermalBehavior.GRADUAL
        elif spread >= th.jitter_spread:
            label = ThermalBehavior.JITTER
        else:
            label = ThermalBehavior.STEADY
        labels.append((update.t, label))
    return labels


def classify_profile(
    times: Sequence[float],
    values: Sequence[float],
    **kwargs,
) -> Dict[ThermalBehavior, float]:
    """Fraction of window rounds carrying each behaviour label.

    Convenience wrapper over :func:`classify_trace`; fractions sum to
    1.0 (or the dict is all-zeros for traces too short to complete a
    round).
    """
    labels = classify_trace(times, values, **kwargs)
    counts: Dict[ThermalBehavior, float] = {b: 0.0 for b in ThermalBehavior}
    if not labels:
        return counts
    for _, label in labels:
        counts[label] += 1.0
    total = float(len(labels))
    return {b: c / total for b, c in counts.items()}
