"""The user control policy: the aggressiveness parameter ``P_p``.

The paper's single knob (§3.2.2): ``P_p ∈ [P_MIN, P_MAX] = [1, 100]``.

* **Small ``P_p``** → temperature-oriented: most of the thermal control
  array is pinned at the most effective mode, and small index motions
  produce large cooling changes.
* **Large ``P_p``** → cost-oriented: the array holds a long, gentle
  ramp of modes and the controller trades temperature for power /
  performance.

The policy also carries the safe operating band ``[t_min, t_max]`` that
scales temperature deltas into index deltas via
``c = (N−1)/(t_max − t_min)`` (§3.2.2).  Defaults match the paper's
platform: 38–82 °C.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import PolicyError

__all__ = ["Policy"]


@dataclass(frozen=True)
class Policy:
    """An immutable, validated user control policy.

    Attributes
    ----------
    pp:
        Aggressiveness, integer in ``[p_min, p_max]``.  The paper
        evaluates 25 (aggressive), 50 (moderate) and 75 (weak).
    p_min / p_max:
        Bounds of the ``P_p`` scale (paper: 1 and 100).
    t_min / t_max:
        Safe operating temperature band, °C (paper platform: 38 / 82).
    """

    pp: int = 50
    p_min: int = 1
    p_max: int = 100
    t_min: float = 38.0
    t_max: float = 82.0

    def __post_init__(self) -> None:
        if self.p_min >= self.p_max:
            raise PolicyError(
                f"p_min ({self.p_min}) must be < p_max ({self.p_max})"
            )
        if not isinstance(self.pp, int):
            raise PolicyError(f"P_p must be an integer, got {self.pp!r}")
        if not self.p_min <= self.pp <= self.p_max:
            raise PolicyError(
                f"P_p must be in [{self.p_min}, {self.p_max}], got {self.pp}"
            )
        if not self.t_min < self.t_max:
            raise PolicyError(
                f"t_min ({self.t_min}) must be < t_max ({self.t_max})"
            )

    @property
    def aggressiveness(self) -> float:
        """Normalized aggressiveness in [0, 1]: 1 = most aggressive.

        (Inverse of the raw scale: small ``P_p`` is aggressive.)
        """
        return 1.0 - (self.pp - self.p_min) / (self.p_max - self.p_min)

    @property
    def temperature_span(self) -> float:
        """Width of the safe band, K."""
        return self.t_max - self.t_min

    def with_pp(self, pp: int) -> "Policy":
        """Same policy with a different aggressiveness value."""
        return replace(self, pp=pp)

    def scale_coefficient(self, array_size: int) -> float:
        """The paper's ``c = (N−1)/(t_max − t_min)`` for an N-slot array."""
        if array_size < 2:
            raise PolicyError(
                f"control array must have >= 2 slots, got {array_size}"
            )
        return (array_size - 1) / self.temperature_span
