"""Multi-technique coordination under one shared policy.

The paper's coordination model is deliberately simple: every technique
gets a control array filled from the *same* ``P_p`` ("we fill out the
arrays in a unified way"), and the techniques' natural cost ordering —
out-of-band first, in-band only when needed — emerges from their
trigger conditions rather than a central arbiter.  The
:class:`Coordinator` packages that: it owns a shared
:class:`~repro.core.policy.Policy`, registers techniques in cost order,
fans sensor samples out to all of them, and reports a combined
inventory (who changed what, when) that the hybrid experiments mine for
trigger-time analysis.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.events import EventLog
from .policy import Policy

__all__ = [
    "Coordinator",
    "SampleSink",
]

#: A technique: anything accepting (t, temperature) samples.
SampleSink = Callable[[float, float], object]


class Coordinator:
    """Shared-policy fan-out over several thermal control techniques.

    Parameters
    ----------
    policy:
        The single user policy all registered techniques must share.
    events:
        Optional shared event log.
    name:
        Source name for coordinator-level events.
    """

    def __init__(
        self,
        policy: Policy,
        events: Optional[EventLog] = None,
        name: str = "coordinator",
    ) -> None:
        self.policy = policy
        self.events = events
        self.name = name
        self._techniques: List[Tuple[str, SampleSink, int]] = []

    def register(
        self, label: str, sink: SampleSink, cost_rank: int
    ) -> None:
        """Register a technique.

        Parameters
        ----------
        label:
            Technique name ("fan", "dvfs", ...), unique.
        sink:
            Sample receiver, typically a bound
            ``UnifiedThermalController.push_sample`` or a governor's
            ``on_sample``.
        cost_rank:
            Performance cost ordering: 0 = free (out-of-band), higher =
            costlier (in-band).  Samples are delivered cheapest-first,
            mirroring the paper's "fan if possible, DVFS when
            necessary" strategy.
        """
        if any(lbl == label for lbl, _, _ in self._techniques):
            raise ConfigurationError(f"technique {label!r} registered twice")
        self._techniques.append((label, sink, cost_rank))
        self._techniques.sort(key=lambda item: item[2])

    @property
    def techniques(self) -> List[str]:
        """Registered technique labels, cheapest first."""
        return [label for label, _, _ in self._techniques]

    def on_sample(self, t: float, temperature: float) -> None:
        """Deliver one sensor sample to every technique, cheapest first."""
        for _, sink, _ in self._techniques:
            sink(t, temperature)

    def __len__(self) -> int:
        return len(self._techniques)
