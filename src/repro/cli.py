"""Command-line experiment runner.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig9 --quick --seed 7
    python -m repro run all --export results/
    python -m repro run fig7 --jobs 4 --cache-dir .repro-cache
    python -m repro run fig7 --fastpath
    python -m repro run fig5 --quick --telemetry=jsonl
    python -m repro telemetry fig5 --limit 20
    python -m repro serve --port 8080 --jobs 4 --cache-dir .repro-cache

Each experiment prints its paper-style table; ``all`` runs the whole
evaluation section in order (several minutes of simulated cluster
time, well under a minute of wall time each).  With ``--export DIR``
each experiment also writes ``<name>.txt`` (the rendered table) and
``<name>.json`` (the raw result object) into ``DIR`` for downstream
tooling.  ``--jobs N`` fans independent runs out over N worker
processes and ``--cache-dir DIR`` reuses cached results across
invocations; both are exact — output is byte-identical to a serial,
uncached run.
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import json
import sys
import time
from pathlib import Path
from typing import Any, List, Optional

from .experiments import REGISTRY
from .platform import PLATFORM_REGISTRY
from .runtime import DEFAULT_SEED, RunExecutor
from .telemetry import (
    EXPORTER_FORMATS,
    export_jsonl,
    export_prometheus,
    export_summary,
    render_decisions,
)

__all__ = ["main", "build_parser", "to_jsonable"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert experiment result objects to JSON-safe data.

    Handles dataclasses, enums (by value), dict keys that are enums or
    tuples, and falls back to ``str`` for anything exotic.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {
            str(to_jsonable(key)): to_jsonable(value)
            for key, value in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-thermal",
        description=(
            "Reproduce the evaluation of 'System-level, Unified In-band "
            "and Out-of-band Dynamic Thermal Control' (ICPP 2010) on a "
            "simulated power-aware cluster."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument(
        "experiment",
        choices=sorted(REGISTRY) + ["all"],
        help="experiment id (see 'list')",
    )
    run_p.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"platform seed (default {DEFAULT_SEED})",
    )
    run_p.add_argument(
        "--quick",
        action="store_true",
        help="shortened workloads (for smoke testing)",
    )
    run_p.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="write <name>.txt and <name>.json per experiment into DIR",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent runs (default 1: serial)",
    )
    run_p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed result cache directory (default: no cache)",
    )
    run_p.add_argument(
        "--telemetry",
        choices=EXPORTER_FORMATS,
        default=None,
        metavar="FMT",
        help=(
            "record decision provenance and metrics; print (or, with "
            f"--export, write) them in FMT ({'/'.join(EXPORTER_FORMATS)})"
        ),
    )
    run_p.add_argument(
        "--fastpath",
        action="store_true",
        help=(
            "run through the repro.fastpath step compiler "
            "(byte-identical results, roughly half the wall time)"
        ),
    )
    run_p.add_argument(
        "--batch",
        action="store_true",
        help=(
            "run batchable sweep groups in lockstep through the batched "
            "fastpath (implies --fastpath; per-run results stay "
            "byte-identical)"
        ),
    )
    run_p.add_argument(
        "--platform",
        choices=sorted(PLATFORM_REGISTRY),
        default=None,
        metavar="NAME",
        help=(
            "silicon to simulate (platform registry key; default: the "
            "paper's Athlon64 testbed via the exact historical path). "
            f"Choices: {', '.join(sorted(PLATFORM_REGISTRY))}"
        ),
    )

    tel_p = sub.add_parser(
        "telemetry",
        help="replay an experiment with telemetry and show its decisions",
    )
    tel_p.add_argument(
        "experiment",
        nargs="?",
        default="fig5",
        choices=sorted(REGISTRY),
        help="experiment to replay (default: fig5)",
    )
    tel_p.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="platform seed"
    )
    tel_p.add_argument(
        "--full",
        action="store_true",
        help="full-length workloads (default: quick replay)",
    )
    tel_p.add_argument(
        "--format",
        choices=("decisions",) + EXPORTER_FORMATS,
        default="decisions",
        help="output view (default: the per-tick decision table)",
    )
    tel_p.add_argument(
        "--limit",
        type=int,
        default=12,
        metavar="N",
        help="decision rows shown per run (0 = unlimited; default 12)",
    )
    tel_p.add_argument(
        "--export",
        metavar="FILE",
        default=None,
        help="write the output to FILE instead of stdout",
    )

    series_p = sub.add_parser(
        "series", help="regenerate a figure's raw curves as CSVs"
    )
    from .experiments.series import SERIES_REGISTRY

    series_p.add_argument(
        "figure",
        choices=sorted(SERIES_REGISTRY),
        help="figure whose curves to regenerate",
    )
    series_p.add_argument(
        "--seed", type=int, default=DEFAULT_SEED, help="platform seed"
    )
    series_p.add_argument(
        "--quick", action="store_true", help="shortened workloads"
    )
    series_p.add_argument(
        "--export",
        metavar="DIR",
        default="series_out",
        help="directory for the per-curve CSVs (default: series_out/)",
    )
    series_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent runs (default 1: serial)",
    )
    series_p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed result cache directory (default: no cache)",
    )
    series_p.add_argument(
        "--fastpath",
        action="store_true",
        help="run through the repro.fastpath step compiler",
    )
    series_p.add_argument(
        "--batch",
        action="store_true",
        help=(
            "run batchable sweep groups in lockstep through the batched "
            "fastpath (implies --fastpath)"
        ),
    )
    series_p.add_argument(
        "--platform",
        choices=sorted(PLATFORM_REGISTRY),
        default=None,
        metavar="NAME",
        help=(
            "silicon to simulate (platform registry key; default: the "
            "paper's Athlon64 testbed via the exact historical path)"
        ),
    )

    serve_p = sub.add_parser(
        "serve",
        help="serve simulations over HTTP (POST RunSpec JSON to /v1/runs)",
    )
    serve_p.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (default 8080; 0 picks an ephemeral port)",
    )
    serve_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cold runs (default 1: serial)",
    )
    serve_p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed result cache directory (default: no cache)",
    )
    serve_p.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="admission-control bound on queued runs (overflow -> 429; "
        "default 64)",
    )
    serve_p.add_argument(
        "--batch-window",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="coalescing window before dispatching queued runs, so "
        "compatible sweep traffic batches through the lockstep stepper "
        "(default 0.05)",
    )
    serve_p.add_argument(
        "--no-batch",
        action="store_true",
        help="never group queued fastpath specs into lockstep batches",
    )

    fleet_p = sub.add_parser(
        "fleet",
        help=(
            "simulate one coupled fleet (racks sharing a hot aisle) with "
            "the sharded deterministic engine"
        ),
    )
    fleet_p.add_argument(
        "--racks", type=int, default=4, metavar="R",
        help="racks in the hot-aisle row (default 4)",
    )
    fleet_p.add_argument(
        "--nodes-per-rack", type=int, default=8, metavar="M",
        help="nodes per rack (default 8)",
    )
    fleet_p.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help=(
            "worker processes; results are bitwise identical for every "
            "value (default 1: in-process)"
        ),
    )
    fleet_p.add_argument(
        "--epoch-ticks", type=int, default=40, metavar="E",
        help="physics ticks per synchronization epoch (default 40)",
    )
    fleet_p.add_argument(
        "--horizon", type=float, default=120.0, metavar="SECONDS",
        help="simulated seconds (default 120)",
    )
    fleet_p.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"workload phase seed (default {DEFAULT_SEED})",
    )
    fleet_p.add_argument(
        "--workload",
        choices=("uniform", "imbalance", "wave"),
        default="imbalance",
        help="fleet workload profile (default imbalance)",
    )
    fleet_p.add_argument(
        "--power-budget", type=float, default=None, metavar="WATTS",
        help="fleet-wide CPU power cap the coordinator tracks "
        "(default: uncapped)",
    )
    fleet_p.add_argument(
        "--recirculation", type=float, default=0.2, metavar="FRACTION",
        help="hot-aisle recirculated fraction of rack exhaust (default 0.2)",
    )
    fleet_p.add_argument(
        "--fault-at", type=float, default=None, metavar="SECONDS",
        help="inject a hot-aisle containment breach at this time "
        "(default: no fault)",
    )
    fleet_p.add_argument(
        "--fault-rack", type=int, default=0, metavar="R",
        help="victim rack of the containment breach (default 0)",
    )
    fleet_p.add_argument(
        "--platform",
        choices=sorted(PLATFORM_REGISTRY),
        default=None,
        metavar="NAME",
        help="silicon the nodes run (default: the paper's Athlon64 testbed)",
    )
    fleet_p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed fleet result cache (default: no cache)",
    )
    fleet_p.add_argument(
        "--quick", action="store_true", help="shortened horizon smoke mode"
    )
    fleet_p.add_argument(
        "--export",
        metavar="FILE",
        default=None,
        help="write the full result JSON to FILE",
    )

    sub.add_parser(
        "lint",
        help="run the repro.lint invariant checker (see 'repro-lint --help')",
        add_help=False,
    )
    return parser


#: Export filename per telemetry format (under ``--export DIR``).
_TELEMETRY_SUFFIX = {"jsonl": "jsonl", "prometheus": "prom", "summary": "txt"}


def _render_telemetry(
    fmt: str, executor: RunExecutor, limit: int = 12
) -> str:
    """Render the executor's collected telemetry in ``fmt``."""
    if fmt == "jsonl":
        return export_jsonl(executor.collected)
    if fmt == "prometheus":
        return export_prometheus(executor.telemetry_snapshot())
    if fmt == "summary":
        return export_summary(executor.telemetry_snapshot())
    return render_decisions(executor.collected, limit=limit)


def _run_one(
    name: str,
    seed: int,
    quick: bool,
    export: Optional[str] = None,
    executor: Optional[RunExecutor] = None,
) -> None:
    module, description = REGISTRY[name]
    t0 = time.perf_counter()
    result = module.run(seed=seed, quick=quick, executor=executor)
    elapsed = time.perf_counter() - t0
    rendered = module.render(result)
    print(f"== {name}: {description} ==")
    print(rendered)
    print(f"({elapsed:.1f}s wall time)\n")
    if export is not None:
        out_dir = Path(export)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(rendered + "\n")
        payload = {
            "experiment": name,
            "description": description,
            "seed": seed,
            "quick": quick,
            "wall_time_s": round(elapsed, 3),
            "result": to_jsonable(result),
        }
        (out_dir / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    # `lint` forwards its arguments verbatim (argparse.REMAINDER cannot:
    # it refuses option-looking tokens right after the subcommand).
    if argv[:1] == ["lint"]:
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])

    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(n) for n in REGISTRY)
        for name in REGISTRY:
            print(f"{name:<{width}}  {REGISTRY[name][1]}")
        return 0

    if args.command == "telemetry":
        executor = RunExecutor(telemetry=True)
        module, description = REGISTRY[args.experiment]
        print(
            f"== telemetry replay: {args.experiment} ({description}), "
            f"seed={args.seed}, {'full' if args.full else 'quick'} ==",
            file=sys.stderr,
        )
        module.run(seed=args.seed, quick=not args.full, executor=executor)
        text = _render_telemetry(args.format, executor, limit=args.limit)
        if args.export is not None:
            path = Path(args.export)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text if text.endswith("\n") else text + "\n")
            print(f"wrote {path}", file=sys.stderr)
        else:
            print(text)
        return 0

    if args.command == "serve":
        import asyncio

        from .serve import ServeConfig, serve_forever

        config = ServeConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            queue_depth=args.queue_depth,
            batch_window=args.batch_window,
            batch=not args.no_batch,
        )
        try:
            asyncio.run(serve_forever(config))
        except KeyboardInterrupt:
            print("repro.serve: shutting down")
        return 0

    if args.command == "fleet":
        from .fleet import FleetFaultSpec, FleetSpec, run_fleet

        fault = (
            None
            if args.fault_at is None
            else FleetFaultSpec(rack=args.fault_rack, at=args.fault_at)
        )
        spec = FleetSpec(
            racks=args.racks,
            nodes_per_rack=args.nodes_per_rack,
            horizon=args.horizon if not args.quick else min(args.horizon, 30.0),
            epoch_ticks=args.epoch_ticks,
            seed=args.seed,
            workload=args.workload,
            power_budget=args.power_budget,
            recirculation=args.recirculation,
            platform=args.platform,
            fault=fault,
            quick=args.quick,
        )
        t0 = time.perf_counter()
        result = run_fleet(spec, shards=args.shards, cache_dir=args.cache_dir)
        elapsed = time.perf_counter() - t0
        ticks = spec.total_ticks()
        print(f"== {spec.describe()} ==")
        print(
            f"digest {spec.digest()}  epochs {spec.epochs()}  "
            f"ticks {ticks}  shards {args.shards}"
        )
        print(
            f"peak die {result.peak_die_c():.2f} C  "
            f"cpu energy {result.total_cpu_energy_j() / 1e3:.1f} kJ  "
            f"fan energy {result.total_fan_energy_j() / 1e3:.1f} kJ  "
            f"throttles {result.total_throttles()}"
        )
        print("rack  inlet_C  duty   fan_kJ  throttles")
        throttles_by_rack = {r.rack: 0 for r in result.racks}
        for node in result.nodes:
            throttles_by_rack[node.rack] += node.throttles
        for rack in result.racks:
            print(
                f"{rack.rack:>4}  {rack.inlet_c:7.2f}  {rack.duty:.2f}  "
                f"{rack.fan_energy_j / 1e3:7.2f}  "
                f"{throttles_by_rack[rack.rack]:>9}"
            )
        rate = spec.total_nodes * ticks / elapsed if elapsed > 0 else 0.0
        print(
            f"({elapsed:.1f}s wall time, {rate:,.0f} node-ticks/s)"
        )
        if args.export is not None:
            path = Path(args.export)
            if path.parent != Path(""):
                path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(result.to_jsonable(), indent=2, sort_keys=True)
                + "\n"
            )
            print(f"wrote {path}")
        return 0

    if args.command == "series":
        import csv

        from .experiments.series import SERIES_REGISTRY

        executor = RunExecutor(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            fastpath=args.fastpath,
            batch=args.batch,
            platform=args.platform,
        )
        curves = SERIES_REGISTRY[args.figure](
            seed=args.seed, quick=args.quick, executor=executor
        )
        out_dir = Path(args.export)
        out_dir.mkdir(parents=True, exist_ok=True)
        for label, (times, values) in curves.items():
            path = out_dir / f"{args.figure}.{label}.csv"
            with path.open("w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["time_s", label])
                for t, v in zip(times, values):
                    writer.writerow([f"{t:.6f}", f"{v:.6f}"])
            print(f"wrote {path} ({len(times)} samples)")
        return 0

    executor = RunExecutor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        telemetry=args.telemetry is not None,
        fastpath=args.fastpath,
        batch=args.batch,
        platform=args.platform,
    )
    names = list(REGISTRY) if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_one(
            name,
            seed=args.seed,
            quick=args.quick,
            export=args.export,
            executor=executor,
        )
    if args.telemetry is not None:
        text = _render_telemetry(args.telemetry, executor)
        if args.export is not None:
            out_dir = Path(args.export)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"telemetry.{_TELEMETRY_SUFFIX[args.telemetry]}"
            path.write_text(text if text.endswith("\n") else text + "\n")
            print(f"wrote {path}")
        else:
            print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
