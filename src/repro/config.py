"""Platform configuration: everything needed to build a simulated node.

:class:`NodeConfig` aggregates the calibration constants of all
substrates into one validated object; :class:`ClusterConfig` scales it
to N nodes.  The defaults describe the paper's testbed (§4.1): AMD
Athlon64 4000+ processors, a 4300 RPM fan behind an ADT7467 controller
with the Figure-1 curve (PWM_min 10 %, T_min 38 °C, T_max 82 °C), and
lm-sensors sampling at 4 Hz.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .cpu.power import PowerParams
from .cpu.pstate import ATHLON64_4000, PStateTable
from .errors import ConfigurationError
from .fan.adt7467 import Adt7467Config
from .fan.aero import FanAero
from .fan.motor import MotorParams
from .thermal.convection import ConvectionModel
from .thermal.package import PackageParams
from .thermal.sensor import SensorParams
from .units import require_non_negative, require_positive

__all__ = ["CoreClassConfig", "FloorplanConfig", "NodeConfig", "ClusterConfig"]


@dataclass(frozen=True)
class CoreClassConfig:
    """One core class of a multicore floorplan, ready to instantiate.

    Attributes
    ----------
    name:
        Class label; becomes part of the per-class DVFS domain name
        (``node0.dvfs.perf``).
    count:
        Number of identical cores of this class.
    pstates:
        The class's validated DVFS ladder.
    power:
        The class's per-core power-model constants.
    """

    name: str
    count: int
    pstates: PStateTable
    power: PowerParams = field(default_factory=PowerParams)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"core class {self.name!r} needs count >= 1, got {self.count}"
            )


@dataclass(frozen=True)
class FloorplanConfig:
    """An N-core die floorplan: core classes plus thermal constants.

    When a :class:`NodeConfig` carries one, the cluster layer builds a
    :class:`~repro.cluster.multicore_node.MulticoreNode` around a
    :class:`~repro.thermal.multicore.MulticorePackage` instead of the
    classic single-core node.  Class 0 is the *lead* DVFS domain: the
    one governors actuate (follower classes track it proportionally —
    see :class:`~repro.cpu.dvfs.GangedDvfs`).

    Attributes
    ----------
    classes:
        The core classes, lead first; total core count must be ≥ 2
        (use a plain :class:`NodeConfig` for single-core parts).
    c_core / c_sink:
        Per-core and shared-heatsink thermal capacitance, J/K.
    r_core_sink / r_core_core:
        Core→sink and lateral ring conduction resistance, K/W.
    """

    classes: Tuple[CoreClassConfig, ...]
    c_core: float = 8.0
    c_sink: float = 200.0
    r_core_sink: float = 0.45
    r_core_core: float = 1.2

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError("floorplan needs at least one core class")
        if self.n_cores < 2:
            raise ConfigurationError(
                f"floorplan has {self.n_cores} core(s); a multicore "
                "floorplan needs >= 2 (use a plain NodeConfig otherwise)"
            )
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"floorplan has duplicate core class names: {names}"
            )
        require_positive(self.c_core, "c_core")
        require_positive(self.c_sink, "c_sink")
        require_positive(self.r_core_sink, "r_core_sink")
        require_positive(self.r_core_core, "r_core_core")

    @property
    def n_cores(self) -> int:
        """Total cores across all classes."""
        return sum(c.count for c in self.classes)


@dataclass(frozen=True)
class NodeConfig:
    """Full physical description of one cluster node.

    Attributes
    ----------
    pstates:
        The processor's DVFS ladder.
    power:
        CPU power model constants.
    package:
        Die/heatsink thermal constants.
    convection:
        Airflow → resistance calibration.
    motor:
        Fan motor constants.
    aero:
        Fan flow/power curves.
    fan_chip:
        ADT7467 power-on configuration.
    sensor:
        lm-sensors imperfection model.
    baseboard_power:
        Wall power of everything that is not CPU or fan (chipset,
        DRAM, disks, PSU loss), W.  Calibrated so a busy node draws
        ≈100 W at the wall, matching Table 1.
    ambient_celsius:
        Inlet air temperature, °C.
    sensor_period:
        Seconds between lm-sensors samples (paper: 0.25 s = 4 Hz).
    dvfs_latency:
        P-state transition stall, seconds.
    prochot_temp:
        Hardware thermal-throttle (PROCHOT#) assertion temperature, °C.
        Crossing it forces the slowest P-state until the die cools by
        ``prochot_hysteresis`` — the "system slowdowns" the paper's
        introduction warns about.
    prochot_hysteresis:
        PROCHOT de-assertion gap, K.
    shutdown_temp:
        THERMTRIP# temperature, °C: the node powers off and stays off —
        the "shutdowns ... loss of availability" failure mode.
    hw_protection:
        Master enable for both mechanisms (on, as on real silicon).
    floorplan:
        Optional N-core die floorplan.  When set, the cluster builds a
        multicore node and ``pstates``/``power`` must mirror the
        floorplan's lead class (they remain what single-domain readers
        of the config see).  Default None: the paper's single-core
        node.
    """

    pstates: PStateTable = field(default_factory=lambda: ATHLON64_4000)
    power: PowerParams = field(default_factory=PowerParams)
    package: PackageParams = field(default_factory=PackageParams)
    convection: ConvectionModel = field(default_factory=ConvectionModel)
    motor: MotorParams = field(default_factory=MotorParams)
    aero: FanAero = field(default_factory=FanAero)
    fan_chip: Adt7467Config = field(default_factory=Adt7467Config)
    sensor: SensorParams = field(default_factory=SensorParams)
    baseboard_power: float = 46.0
    ambient_celsius: float = 28.0
    sensor_period: float = 0.25
    dvfs_latency: float = 1.0e-4
    prochot_temp: float = 85.0
    prochot_hysteresis: float = 8.0
    shutdown_temp: float = 97.0
    hw_protection: bool = True
    floorplan: Optional[FloorplanConfig] = None

    def __post_init__(self) -> None:
        require_non_negative(self.baseboard_power, "baseboard_power")
        require_positive(self.sensor_period, "sensor_period")
        require_non_negative(self.dvfs_latency, "dvfs_latency")
        require_positive(self.prochot_hysteresis, "prochot_hysteresis")
        if self.prochot_temp >= self.shutdown_temp:
            raise ConfigurationError(
                f"prochot_temp ({self.prochot_temp}) must be below "
                f"shutdown_temp ({self.shutdown_temp})"
            )
        if abs(self.motor.rpm_max - self.aero.rpm_max) > 1e-9:
            raise ConfigurationError(
                "motor.rpm_max and aero.rpm_max disagree "
                f"({self.motor.rpm_max} vs {self.aero.rpm_max})"
            )
        if self.floorplan is not None:
            lead = self.floorplan.classes[0]
            if lead.pstates.frequencies_ghz() != self.pstates.frequencies_ghz():
                raise ConfigurationError(
                    "pstates must mirror the floorplan's lead class "
                    f"({self.pstates.frequencies_ghz()} vs lead "
                    f"{lead.pstates.frequencies_ghz()})"
                )

    def with_(self, **changes) -> "NodeConfig":
        """A copy with the given fields replaced (dataclass ``replace``)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ClusterConfig:
    """A homogeneous cluster of :class:`NodeConfig` nodes.

    Attributes
    ----------
    n_nodes:
        Node count (the paper's testbed runs 4).
    node:
        Per-node physical description.
    dt:
        Physics integration step, seconds.
    seed:
        Root seed for all stochastic elements.
    """

    n_nodes: int = 4
    node: NodeConfig = field(default_factory=NodeConfig)
    dt: float = 0.05
    seed: int = 20100913  # ICPP 2010 conference date

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        require_positive(self.dt, "dt")
        if self.dt > self.node.sensor_period:
            raise ConfigurationError(
                f"dt ({self.dt}s) must not exceed the sensor period "
                f"({self.node.sensor_period}s)"
            )

    def with_(self, **changes) -> "ClusterConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
