"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (why this module looks the way it does):

* **Hot-path cheap.**  Instruments are plain ``__slots__`` objects;
  the fast path of ``Counter.inc`` is one float add.  Callers that sit
  inside the per-tick loop obtain their instrument *once* at wiring
  time and keep the reference — ``registry.counter(...)`` itself does
  a dict lookup and is meant for setup code, not the tick loop.
* **True no-op when disabled.**  :data:`NULL_REGISTRY` (a shared
  :class:`NullRegistry`) hands out shared do-nothing instruments, so
  instrumented code is written unconditionally and costs one empty
  method call when telemetry is off.
* **Deterministic.**  Nothing in this module reads a clock of any
  kind (enforced by lint rule RPR008); every recorded value is
  supplied by the caller.  Wall-time-derived metrics exist only at
  the executor level and are namespaced ``host.*``
  (:mod:`repro.runtime.executor`).

Identity is ``(name, sorted label pairs)``; re-registering the same
identity returns the same instrument, re-registering a *name* as a
different metric type (or a histogram with different bounds) raises
:class:`~repro.errors.TelemetryError` — silent shadowing is precisely
the observability bug this subsystem exists to prevent.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TelemetryError
from .snapshot import LabelPairs, MetricSample, TelemetrySnapshot

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DELTA_BUCKETS",
    "SECONDS_BUCKETS",
]

#: Default histogram bounds for window deltas (K): symmetric around 0,
#: resolving the jitter band (|Δt| < 0.5 K) from genuine excursions.
DELTA_BUCKETS: Tuple[float, ...] = (
    -5.0, -2.0, -1.0, -0.5, -0.2, 0.0, 0.2, 0.5, 1.0, 2.0, 5.0,
)

#: Default histogram bounds for durations in seconds (host-side wall
#: times; sim-side code must derive durations from the sim clock).
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise TelemetryError(f"counter increment must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        """The accumulated total."""
        return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self._value = float(value)

    def add(self, amount: float) -> None:
        """Adjust the current value by ``amount`` (may be negative)."""
        self._value += amount

    @property
    def value(self) -> float:
        """The most recently recorded value."""
        return self._value


class Histogram:
    """Fixed-bound bucketed distribution of observed values.

    Parameters
    ----------
    bounds:
        Strictly ascending finite upper bounds.  An implicit ``+inf``
        overflow bucket is always appended; bounds are fixed at
        construction (Prometheus-style), so snapshots from different
        processes merge bucket-by-bucket.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Sequence[float] = SECONDS_BUCKETS) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned:
            raise TelemetryError("histogram needs at least one bucket bound")
        if any(a >= b for a, b in zip(cleaned, cleaned[1:])):
            raise TelemetryError(
                f"histogram bounds must be strictly ascending, got {cleaned}"
            )
        if cleaned[-1] == float("inf"):
            cleaned = cleaned[:-1]  # the overflow bucket is implicit
        self.bounds = cleaned
        self._counts: List[int] = [0] * (len(cleaned) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation (``value <= bound`` buckets leftward)."""
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    def buckets(self) -> Tuple[Tuple[float, int], ...]:
        """Non-cumulative ``(upper_bound, count)`` pairs, ``+inf`` last."""
        uppers = self.bounds + (float("inf"),)
        return tuple(zip(uppers, self._counts))


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


def _freeze_labels(labels: Dict[str, object]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Name+labels → instrument table with typed get-or-create access.

    The registry is deliberately not a singleton: each
    :class:`~repro.cluster.cluster.Cluster` owns one (sim-side) and
    each :class:`~repro.runtime.executor.RunExecutor` owns one
    (host-side); snapshots are merged explicitly where aggregation is
    wanted.
    """

    #: False only on :class:`NullRegistry` — the one branch hot paths
    #: may take before building event payloads.
    enabled: bool = True

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelPairs], object] = {}
        self._types: Dict[str, str] = {}
        self._bounds: Dict[str, Tuple[float, ...]] = {}

    # -- registration ----------------------------------------------------

    def _check_type(self, name: str, metric_type: str) -> None:
        known = self._types.setdefault(name, metric_type)
        if known != metric_type:
            raise TelemetryError(
                f"metric {name!r} already registered as {known}; "
                f"cannot re-register as {metric_type}"
            )

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter at ``(name, labels)``."""
        self._check_type(name, "counter")
        key = (name, _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = Counter()
        return instrument  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge at ``(name, labels)``."""
        self._check_type(name, "gauge")
        key = (name, _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = Gauge()
        return instrument  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        """Get or create the histogram at ``(name, labels)``.

        All label sets of one ``name`` share bucket bounds; the first
        registration fixes them and later disagreement raises.
        """
        self._check_type(name, "histogram")
        key = (name, _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(
                bounds=buckets if buckets is not None else SECONDS_BUCKETS
            )
            fixed = self._bounds.setdefault(name, instrument.bounds)
            if fixed != instrument.bounds:
                raise TelemetryError(
                    f"histogram {name!r} bounds fixed at {fixed}; "
                    f"got conflicting {instrument.bounds}"
                )
            self._instruments[key] = instrument
        elif buckets is not None and tuple(
            float(b) for b in buckets if b != float("inf")
        ) != self._bounds.get(name):
            raise TelemetryError(
                f"histogram {name!r} bounds fixed at {self._bounds[name]}; "
                f"got conflicting {tuple(buckets)}"
            )
        return instrument  # type: ignore[return-value]

    # -- snapshotting ----------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze current instrument state into a picklable snapshot."""
        samples: List[MetricSample] = []
        for (name, labels), instrument in self._instruments.items():
            metric_type = self._types[name]
            if metric_type == "histogram":
                assert isinstance(instrument, Histogram)
                samples.append(
                    MetricSample(
                        name=name,
                        type="histogram",
                        labels=labels,
                        sum=instrument.sum,
                        count=instrument.count,
                        buckets=instrument.buckets(),
                    )
                )
            else:
                samples.append(
                    MetricSample(
                        name=name,
                        type=metric_type,
                        labels=labels,
                        value=instrument.value,  # type: ignore[union-attr]
                    )
                )
        return TelemetrySnapshot(samples=tuple(samples))

    def merge_snapshot(self, snapshot: TelemetrySnapshot) -> None:
        """Fold a snapshot's samples into this registry's instruments.

        Counters and histogram buckets add; gauges adopt the snapshot
        value.  This is how executor processes fold worker-side and
        run-side telemetry into one host registry.
        """
        for sample in snapshot:
            labels = dict(sample.labels)
            if sample.type == "counter":
                self.counter(sample.name, **labels).inc(sample.value)
            elif sample.type == "gauge":
                self.gauge(sample.name, **labels).set(sample.value)
            else:
                bounds = tuple(b for b, _ in sample.buckets)
                histogram = self.histogram(sample.name, buckets=bounds, **labels)
                for (_, count), position in zip(
                    sample.buckets, range(len(histogram._counts))
                ):
                    histogram._counts[position] += count
                histogram._sum += sample.sum
                histogram._count += sample.count


class NullRegistry(MetricsRegistry):
    """The disabled registry: hands out shared no-op instruments.

    Every accessor returns the same do-nothing singleton, so wiring
    code runs identically whether telemetry is on or off and the
    per-tick cost when off is a single empty method call.
    """

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram(bounds=(1.0,))

    def counter(self, name: str, **labels: object) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._GAUGE

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot()

    def merge_snapshot(self, snapshot: TelemetrySnapshot) -> None:
        pass


#: The shared disabled registry — the default everywhere telemetry is
#: optional.  Never mutated (its instruments ignore writes).
NULL_REGISTRY = NullRegistry()
