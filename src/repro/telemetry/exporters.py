"""Pluggable telemetry exporters: JSONL, Prometheus text, summary table.

Three views over the same data, selected by ``repro run
--telemetry=<fmt>`` and the ``repro telemetry`` subcommand:

* :func:`export_jsonl` — the machine-readable event/metric stream.
  One JSON object per line, compact separators, sorted keys, sorted
  metrics, sim-clock timestamps only and ``host.*`` metrics excluded
  by construction — so two runs of the same spec and seed produce
  **byte-identical** output (the determinism contract the tests and
  CI enforce against ``docs/telemetry.schema.json``).
* :func:`export_prometheus` — a Prometheus text-format (version
  0.0.4) snapshot of any :class:`TelemetrySnapshot`, including
  ``host.*`` executor metrics.  This is a *scrape snapshot*: wall-time
  derived values are fine here and the output is not required to be
  run-stable.
* :func:`export_summary` — a human-readable table of the same
  snapshot for terminal use.

:func:`render_decisions` is the human view of decision provenance —
the "why did the fan jump to mode 7 at t=412 s?" answer — built from
``telemetry.decision.*`` events.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Sequence, Tuple

from .provenance import DECISION_CATEGORY
from .snapshot import MetricSample, TelemetrySnapshot

if TYPE_CHECKING:  # imported for annotations only: no runtime cycle
    from ..cluster.cluster import RunResult
    from ..runtime.spec import RunSpec

__all__ = [
    "EXPORTER_FORMATS",
    "JSONL_SCHEMA_VERSION",
    "export_jsonl",
    "export_prometheus",
    "export_summary",
    "jsonl_records",
    "render_decisions",
]

#: Formats understood by ``repro run --telemetry`` / ``repro telemetry``.
EXPORTER_FORMATS = ("jsonl", "prometheus", "summary")

#: Version stamped on every JSONL run header (bump on shape changes).
JSONL_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce event payload values to strict-JSON-safe equivalents."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def _bound_json(bound: float) -> Any:
    """Histogram upper bound as JSON (``+Inf`` for the overflow bucket)."""
    return "+Inf" if math.isinf(bound) else bound


def _metric_record(sample: MetricSample) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "kind": "metric",
        "name": sample.name,
        "type": sample.type,
        "labels": sample.label_dict(),
    }
    if sample.type == "histogram":
        record["sum"] = _jsonable(sample.sum)
        record["count"] = sample.count
        record["buckets"] = [
            [_bound_json(bound), count] for bound, count in sample.buckets
        ]
    else:
        record["value"] = _jsonable(sample.value)
    return record


def jsonl_records(
    runs: Sequence[Tuple["RunSpec", "RunResult"]],
) -> Iterator[Dict[str, Any]]:
    """The JSONL export as dict records (one run header, then its data).

    Only simulation-side data flows here: every ``t`` is the sim clock
    and ``host.*`` metrics are dropped, which is what makes the export
    a pure function of ``(spec, seed)``.
    """
    for spec, result in runs:
        yield {
            "kind": "run",
            "schema": JSONL_SCHEMA_VERSION,
            "digest": spec.digest(),
            "describe": spec.describe(),
            "workload": spec.workload,
            "seed": spec.seed,
            "n_nodes": spec.n_nodes,
            "quick": spec.quick,
        }
        for event in result.events:
            yield {
                "kind": "event",
                "t": _jsonable(event.time),
                "category": event.category,
                "source": event.source,
                "data": _jsonable(event.data),
            }
        snapshot = getattr(result, "telemetry", None)
        if snapshot is not None:
            for sample in snapshot.without("host."):
                yield _metric_record(sample)


def export_jsonl(runs: Sequence[Tuple["RunSpec", "RunResult"]]) -> str:
    """Render runs as the deterministic JSONL stream (trailing newline)."""
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in jsonl_records(runs)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- Prometheus text format --------------------------------------------------


def _prom_name(name: str, namespace: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{namespace}_{cleaned}" if namespace else cleaned


def _prom_label_value(value: str) -> str:
    escaped = value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    return f'"{escaped}"'


def _prom_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f"{k}={_prom_label_value(v)}" for k, v in pairs)
    return "{" + inner + "}"


def _prom_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def export_prometheus(
    snapshot: TelemetrySnapshot, namespace: str = "repro"
) -> str:
    """Render a snapshot in Prometheus text format 0.0.4.

    Counters get the conventional ``_total`` suffix; histograms expand
    to cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
    Output is sorted by metric name then labels, so equal snapshots
    render identically.
    """
    by_name: Dict[str, List[MetricSample]] = {}
    for sample in snapshot:
        by_name.setdefault(sample.name, []).append(sample)

    lines: List[str] = []
    for name in sorted(by_name):
        samples = sorted(by_name[name], key=lambda s: s.labels)
        metric_type = samples[0].type
        base = _prom_name(name, namespace)
        if metric_type == "counter" and not base.endswith("_total"):
            base += "_total"
        lines.append(f"# HELP {base} repro telemetry metric '{name}'")
        lines.append(f"# TYPE {base} {metric_type}")
        for sample in samples:
            if metric_type == "histogram":
                cumulative = 0
                for bound, count in sample.buckets:
                    cumulative += count
                    bucket_labels = tuple(sample.labels) + (
                        ("le", _prom_number(bound)),
                    )
                    lines.append(
                        f"{base}_bucket{_prom_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{base}_sum{_prom_labels(sample.labels)} "
                    f"{_prom_number(sample.sum)}"
                )
                lines.append(
                    f"{base}_count{_prom_labels(sample.labels)} {sample.count}"
                )
            else:
                lines.append(
                    f"{base}{_prom_labels(sample.labels)} "
                    f"{_prom_number(sample.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# -- human summary -----------------------------------------------------------


def export_summary(snapshot: TelemetrySnapshot) -> str:
    """A terminal-friendly table of every sample in the snapshot."""
    if not len(snapshot):
        return "(no telemetry recorded)"
    rows: List[Tuple[str, str, str]] = []
    for sample in snapshot:
        labels = ",".join(f"{k}={v}" for k, v in sample.labels) or "-"
        if sample.type == "histogram":
            mean = sample.sum / sample.count if sample.count else 0.0
            shown = f"n={sample.count} sum={sample.sum:.6g} mean={mean:.6g}"
        else:
            shown = f"{sample.value:.6g}"
        rows.append((f"{sample.name} ({sample.type})", labels, shown))
    name_w = max(len(r[0]) for r in rows)
    label_w = max(len(r[1]) for r in rows)
    header = f"{'metric':<{name_w}}  {'labels':<{label_w}}  value"
    ruler = "-" * len(header)
    body = [f"{n:<{name_w}}  {l:<{label_w}}  {v}" for n, l, v in rows]
    return "\n".join([header, ruler, *body])


# -- decision provenance view ------------------------------------------------


def _fmt_value(value: Any) -> str:
    """Short human rendering (floats trimmed of representation noise)."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_decisions(
    runs: Sequence[Tuple["RunSpec", "RunResult"]], limit: int = 12
) -> str:
    """Human table of ``telemetry.decision.*`` records, per run.

    Shows, for each recorded control tick, the two window deltas and
    which history level (or threshold action) selected the target mode
    — the paper's §3.2 decision path made visible.  ``limit`` bounds
    the rows printed per run (0 = unlimited); the total count is always
    reported so truncation is never silent.
    """
    out: List[str] = []
    for spec, result in runs:
        decisions = result.events.filter(category=DECISION_CATEGORY)
        out.append(f"== {spec.describe()} — {len(decisions)} decision records ==")
        if not decisions:
            out.append("  (telemetry was not enabled for this run)")
            continue
        out.append(
            f"  {'t(s)':>8}  {'source':<24} {'via/action':<10} "
            f"{'dt_l1':>8}  {'dt_l2':>8}  detail"
        )
        shown = decisions if limit <= 0 else decisions[:limit]
        for event in shown:
            data = event.data
            via = str(data.get("via", data.get("action", "?")))
            delta_l1 = data.get("delta_l1")
            delta_l2 = data.get("delta_l2")
            d1 = "-" if delta_l1 is None else f"{delta_l1:+.3f}"
            d2 = "-" if delta_l2 is None else f"{delta_l2:+.3f}"
            if "target_slot" in data and "slot" in data:
                detail = (
                    f"slot {data['slot']}->{data['target_slot']} "
                    f"mode {_fmt_value(data.get('mode'))}->"
                    f"{_fmt_value(data.get('target_mode'))} "
                    f"n_p={data.get('n_p')}"
                )
            elif "effective_threshold" in data:
                detail = (
                    f"l2_avg={_fmt_value(data.get('l2_average'))} "
                    f"thr={_fmt_value(data.get('effective_threshold'))} "
                    f"idx={data.get('index')} "
                    f"{_fmt_value(data.get('frequency_ghz'))}GHz"
                )
            else:
                detail = ", ".join(
                    f"{k}={_fmt_value(v)}" for k, v in sorted(data.items())
                    if k not in ("delta_l1", "delta_l2", "via", "action")
                )
            out.append(
                f"  {event.time:>8.2f}  {event.source:<24} {via:<10} "
                f"{d1:>8}  {d2:>8}  {detail}"
            )
        if limit > 0 and len(decisions) > limit:
            out.append(f"  ... {len(decisions) - limit} more (use --limit 0)")
    return "\n".join(out)
