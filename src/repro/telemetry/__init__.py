"""repro.telemetry — deterministic observability for the simulator.

The subsystem has three layers:

* :mod:`repro.telemetry.registry` — :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  keyed by ``(name, labels)``; :data:`NULL_REGISTRY` is the shared
  disabled registry (a true no-op in the per-tick hot path).
* :mod:`repro.telemetry.provenance` — :class:`ProvenanceRecorder`
  captures each control tick's decision inputs (Δt_l1/Δt_l2, the
  triggering history level, slot/mode motion, the Eq.-(1) pin boundary
  ``n_p``, tDVFS threshold state) into the run's event log and the
  registry.
* :mod:`repro.telemetry.exporters` — JSONL (deterministic,
  byte-identical per ``(spec, seed)``), Prometheus text format, and a
  human summary table, plus the ``repro telemetry`` decision view.

The determinism contract: simulation-side telemetry is timestamped by
the simulation clock only — lint rule RPR008 bans wall-clock reads in
this package.  Wall time is legal solely in executor-level metrics,
which live in :mod:`repro.runtime.executor` and are namespaced
``host.*`` (and excluded from JSONL exports).  See
``docs/observability.md``.
"""

from __future__ import annotations

from .exporters import (
    EXPORTER_FORMATS,
    export_jsonl,
    export_prometheus,
    export_summary,
    jsonl_records,
    render_decisions,
)
from .provenance import DECISION_CATEGORY, ProvenanceRecorder
from .registry import (
    DELTA_BUCKETS,
    NULL_REGISTRY,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .snapshot import LabelPairs, MetricSample, TelemetrySnapshot

__all__ = [
    "Counter",
    "DECISION_CATEGORY",
    "DELTA_BUCKETS",
    "EXPORTER_FORMATS",
    "Gauge",
    "Histogram",
    "LabelPairs",
    "MetricSample",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "ProvenanceRecorder",
    "SECONDS_BUCKETS",
    "TelemetrySnapshot",
    "export_jsonl",
    "export_prometheus",
    "export_summary",
    "jsonl_records",
    "render_decisions",
]
