"""Frozen, picklable views of a metrics registry.

A :class:`TelemetrySnapshot` is the currency telemetry moves in: the
live :class:`~repro.telemetry.registry.MetricsRegistry` stays inside
one cluster (or one executor), while snapshots cross process
boundaries on :class:`~repro.cluster.cluster.RunResult`, land in the
on-disk result cache, and feed the exporters.  Snapshots hold only
tuples of primitives, so equality, hashing, pickling and JSON
conversion are all trivial and deterministic.

Merging semantics (``TelemetrySnapshot.merge``) follow metric type:
counters and histograms are *additive* across snapshots, and a gauge
conflict resolves to the *largest* sample (ordered by value, then sum,
count and buckets).  Every per-key fold is commutative and
associative, so merging K snapshots is a pure function of the multiset
of samples — the result is independent of argument order and of how
the merge is parenthesized.  The fleet layer leans on exactly this:
per-shard snapshots reduce to the same fleet snapshot no matter which
shard reports first.  Callers merging snapshots from different runs
should still disambiguate them with
:meth:`TelemetrySnapshot.with_labels` (e.g. ``run=<spec digest>``), or
same-named gauges silently shadow each other.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Tuple

from ..errors import TelemetryError

__all__ = ["LabelPairs", "MetricSample", "TelemetrySnapshot"]

#: Frozen label set: sorted ``(key, value)`` string pairs.
LabelPairs = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class MetricSample:
    """One instrument's frozen state at snapshot time.

    Attributes
    ----------
    name:
        Dotted metric name (e.g. ``"ctrl.rounds"``, ``"host.cache.hits"``).
        The ``host.`` prefix is reserved for executor-level metrics that
        may legitimately derive from wall time; everything else is a
        pure function of the simulation.
    type:
        ``"counter"``, ``"gauge"`` or ``"histogram"``.
    labels:
        Sorted ``(key, value)`` pairs.
    value:
        Counter/gauge value (0.0 for histograms).
    sum / count:
        Histogram aggregate observation sum and count.
    buckets:
        Histogram ``(upper_bound, count)`` pairs, *non-cumulative*, in
        ascending bound order, ending with the ``+inf`` overflow bucket.
    """

    name: str
    type: str
    labels: LabelPairs = ()
    value: float = 0.0
    sum: float = 0.0
    count: int = 0
    buckets: Tuple[Tuple[float, int], ...] = ()

    @property
    def key(self) -> Tuple[str, LabelPairs]:
        """Identity of the instrument this sample came from."""
        return (self.name, self.labels)

    def label_dict(self) -> Dict[str, str]:
        """Labels as a plain dict (for JSON payloads)."""
        return dict(self.labels)


def _merge_pair(a: MetricSample, b: MetricSample) -> MetricSample:
    """Fold ``b`` into ``a`` (same key; type mismatch is an error)."""
    if a.type != b.type:
        raise TelemetryError(
            f"cannot merge metric {a.name!r}: type {a.type!r} vs {b.type!r}"
        )
    if a.type == "counter":
        return replace(a, value=a.value + b.value)
    if a.type == "gauge":
        # Largest sample wins — max is commutative and associative, so
        # a K-way merge never depends on snapshot arrival order (the
        # old last-writer-wins rule did, which made multi-shard reduces
        # racy).  Ties across every field are identical samples anyway.
        a_rank = (a.value, a.sum, a.count, a.buckets)
        b_rank = (b.value, b.sum, b.count, b.buckets)
        return a if a_rank >= b_rank else b
    bounds_a = tuple(bound for bound, _ in a.buckets)
    bounds_b = tuple(bound for bound, _ in b.buckets)
    if bounds_a != bounds_b:
        raise TelemetryError(
            f"cannot merge histogram {a.name!r}: bucket bounds differ "
            f"({bounds_a} vs {bounds_b})"
        )
    return replace(
        a,
        sum=a.sum + b.sum,
        count=a.count + b.count,
        buckets=tuple(
            (bound, ca + cb)
            for (bound, ca), (_, cb) in zip(a.buckets, b.buckets)
        ),
    )


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable bag of :class:`MetricSample` records.

    Samples are kept sorted by ``(name, labels)`` so two snapshots of
    identical registry state compare (and serialize) identically.
    """

    samples: Tuple[MetricSample, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.samples, key=lambda s: s.key))
        object.__setattr__(self, "samples", ordered)

    def __iter__(self) -> Iterator[MetricSample]:
        return iter(self.samples)

    def __len__(self) -> int:
        return len(self.samples)

    # -- lookups ---------------------------------------------------------

    def get(self, name: str, **labels: object) -> Optional[MetricSample]:
        """The sample with exactly ``name`` and ``labels``, or None."""
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        for sample in self.samples:
            if sample.key == key:
                return sample
        return None

    def value(self, name: str, **labels: object) -> float:
        """Counter/gauge value at ``(name, labels)`` (0.0 when absent)."""
        sample = self.get(name, **labels)
        return sample.value if sample is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of ``value`` across every label set of ``name``."""
        return sum(s.value for s in self.samples if s.name == name)

    # -- transformations -------------------------------------------------

    def filter(self, prefix: str) -> "TelemetrySnapshot":
        """Samples whose name starts with ``prefix``."""
        return TelemetrySnapshot(
            samples=tuple(s for s in self.samples if s.name.startswith(prefix))
        )

    def without(self, prefix: str) -> "TelemetrySnapshot":
        """Samples whose name does *not* start with ``prefix``."""
        return TelemetrySnapshot(
            samples=tuple(
                s for s in self.samples if not s.name.startswith(prefix)
            )
        )

    def with_labels(self, **extra: object) -> "TelemetrySnapshot":
        """A copy with ``extra`` labels added to every sample.

        Existing labels with the same key are overwritten — the caller
        is asserting a new identity axis (e.g. ``run=<digest>``).
        """
        frozen = {str(k): str(v) for k, v in extra.items()}

        def relabel(labels: LabelPairs) -> LabelPairs:
            merged: Dict[str, str] = dict(labels)
            merged.update(frozen)
            return tuple(sorted(merged.items()))

        return TelemetrySnapshot(
            samples=tuple(
                replace(s, labels=relabel(s.labels)) for s in self.samples
            )
        )

    @classmethod
    def merge(cls, *snapshots: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Fold many snapshots into one (see module docstring).

        Every sample from every snapshot is sorted into one canonical
        order — instrument key first, then full sample content — before
        the per-key fold, so the accumulation order (and hence every
        floating-point rounding) is a pure function of the multiset of
        samples, never of the argument order.  Shard reduces rely on
        this: K worker snapshots merge to bitwise the same result no
        matter which worker reported first.
        """
        ordered = sorted(
            (sample for snap in snapshots for sample in snap.samples),
            key=lambda s: (
                s.name, s.labels, s.type, s.value, s.sum, s.count, s.buckets,
            ),
        )
        folded: Dict[Tuple[str, LabelPairs], MetricSample] = {}
        for sample in ordered:
            existing = folded.get(sample.key)
            folded[sample.key] = (
                sample if existing is None else _merge_pair(existing, sample)
            )
        return cls(samples=tuple(folded.values()))
