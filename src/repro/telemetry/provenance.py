"""Decision provenance: why a controller did what it did, per tick.

The paper's controller is only explainable through its internals — the
two-level history deltas (Δt_l1 vs Δt_l2, §3.2.1), the pinned region of
the thermal control array (§3.2.2, Eq. 1) and the tDVFS threshold
machinery.  :class:`ProvenanceRecorder` captures exactly those values
at every completed control round and publishes them twice:

* as ``telemetry.decision.<technique>`` events in the run's shared
  :class:`~repro.sim.events.EventLog` (timestamped with the *simulation*
  clock, so the record is deterministic and exportable byte-for-byte);
* as registry metrics (round counters by triggering level, slot/mode
  gauges, Δt histograms) for aggregate views.

Recording is gated on the registry being enabled: with telemetry off
(the default), a run's event log is byte-identical to the pre-telemetry
code, and the per-round cost is one early-returning method call.
"""

from __future__ import annotations

from typing import Optional

from ..sim.events import EventLog
from .registry import DELTA_BUCKETS, NULL_REGISTRY, MetricsRegistry

__all__ = ["ProvenanceRecorder", "DECISION_CATEGORY"]

#: Event-category prefix of every provenance record.
DECISION_CATEGORY = "telemetry.decision"


class ProvenanceRecorder:
    """Per-controller sink for control-tick decision records.

    Parameters
    ----------
    events:
        The run's shared event log (may be None: metrics only).
    registry:
        The run's metrics registry; pass None (or a
        :class:`~repro.telemetry.registry.NullRegistry`) to disable
        recording entirely.
    name:
        Event source / ``ctrl`` label (e.g. ``"node0.fan-dynamic"``).
    technique:
        Technique tag folded into the event category
        (``"fan"``, ``"dvfs"``, ``"tdvfs"``).
    """

    __slots__ = (
        "events",
        "registry",
        "name",
        "technique",
        "enabled",
        "_category",
        "_slot_gauge",
        "_delta_l1",
        "_delta_l2",
        "_mode_changes",
        "_emergencies",
        "_round_counters",
        "_tdvfs_counters",
        "_tdvfs_threshold",
        "_tdvfs_index",
    )

    def __init__(
        self,
        events: Optional[EventLog],
        registry: Optional[MetricsRegistry],
        name: str,
        technique: str,
    ) -> None:
        self.events = events
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.name = name
        self.technique = technique
        self.enabled = self.registry.enabled
        self._category = f"{DECISION_CATEGORY}.{technique}"
        # Instruments are resolved once here, never in the tick path.
        self._slot_gauge = self.registry.gauge(
            "ctrl.slot", ctrl=name, technique=technique
        )
        self._delta_l1 = self.registry.histogram(
            "ctrl.delta_l1", buckets=DELTA_BUCKETS, ctrl=name
        )
        self._delta_l2 = self.registry.histogram(
            "ctrl.delta_l2", buckets=DELTA_BUCKETS, ctrl=name
        )
        self._mode_changes = self.registry.counter(
            "ctrl.mode_changes", ctrl=name, technique=technique
        )
        self._emergencies = self.registry.counter(
            "ctrl.emergencies", ctrl=name, technique=technique
        )
        # Per-label-value instrument handles, memoized on first use so
        # the round paths pay one dict hit instead of re-resolving a
        # counter (label-tuple build + registry lookup) every round.
        # Lazily filled — creating an instrument registers a zero-valued
        # sample, so eager creation would invent metrics the run never
        # touched.
        self._round_counters: dict = {}
        self._tdvfs_counters: dict = {}
        self._tdvfs_threshold = None
        self._tdvfs_index = None

    # -- unified-controller rounds ---------------------------------------

    def control_round(
        self,
        t: float,
        *,
        delta_l1: float,
        delta_l2: Optional[float],
        via: str,
        slot: int,
        target_slot: int,
        mode: object,
        target_mode: object,
        n_p: int,
        array_size: int,
    ) -> None:
        """Record one completed window round of a unified controller.

        ``via`` names the level that selected the target slot (``"l1"``,
        ``"l2"`` or ``"hold"``); ``slot``/``mode`` are pre-decision,
        ``target_slot``/``target_mode`` post-decision.  ``n_p`` is the
        Eq.-(1) pin boundary, carried on every record so exports are
        self-describing.
        """
        if not self.enabled:
            return
        counter = self._round_counters.get(via)
        if counter is None:
            counter = self._round_counters[via] = self.registry.counter(
                "ctrl.rounds", ctrl=self.name, technique=self.technique, via=via
            )
        counter.inc()
        self._slot_gauge.set(float(target_slot))
        self._delta_l1.observe(delta_l1)
        if delta_l2 is not None:
            self._delta_l2.observe(delta_l2)
        if target_mode != mode:
            self._mode_changes.inc()
        if self.events is not None:
            self.events.emit(
                t,
                self._category,
                self.name,
                delta_l1=round(delta_l1, 6),
                delta_l2=None if delta_l2 is None else round(delta_l2, 6),
                via=via,
                slot=slot,
                target_slot=target_slot,
                mode=mode,
                target_mode=target_mode,
                n_p=n_p,
                array_size=array_size,
            )

    def emergency(self, t: float, temperature: float, target_slot: int) -> None:
        """Record a t_max emergency override (out-of-round actuation)."""
        if not self.enabled:
            return
        self._emergencies.inc()
        self._slot_gauge.set(float(target_slot))
        if self.events is not None:
            self.events.emit(
                t,
                self._category,
                self.name,
                via="emergency",
                temperature=round(temperature, 6),
                target_slot=target_slot,
            )

    # -- tDVFS threshold rounds ------------------------------------------

    def tdvfs_round(
        self,
        t: float,
        *,
        delta_l1: float,
        delta_l2: Optional[float],
        action: str,
        l2_average: float,
        effective_threshold: float,
        consistently_above: bool,
        slot: int,
        index: int,
        frequency_ghz: float,
    ) -> None:
        """Record one tDVFS evaluation round and its threshold state.

        ``action`` is what the daemon actually did this round:
        ``"trigger"``, ``"restore"``, ``"hold"`` or ``"cooldown"``
        (evaluation suppressed by the action-rate limit).
        """
        if not self.enabled:
            return
        counter = self._tdvfs_counters.get(action)
        if counter is None:
            counter = self._tdvfs_counters[action] = self.registry.counter(
                "tdvfs.rounds", ctrl=self.name, action=action
            )
        counter.inc()
        if self._tdvfs_threshold is None:
            self._tdvfs_threshold = self.registry.gauge(
                "tdvfs.effective_threshold", ctrl=self.name
            )
            self._tdvfs_index = self.registry.gauge(
                "tdvfs.pstate_index", ctrl=self.name
            )
        self._tdvfs_threshold.set(effective_threshold)
        self._tdvfs_index.set(float(index))
        self._delta_l1.observe(delta_l1)
        if delta_l2 is not None:
            self._delta_l2.observe(delta_l2)
        if self.events is not None:
            self.events.emit(
                t,
                self._category,
                self.name,
                delta_l1=round(delta_l1, 6),
                delta_l2=None if delta_l2 is None else round(delta_l2, 6),
                action=action,
                l2_average=round(l2_average, 6),
                effective_threshold=round(effective_threshold, 6),
                consistently_above=consistently_above,
                slot=slot,
                index=index,
                frequency_ghz=frequency_ghz,
            )
