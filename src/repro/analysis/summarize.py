"""Run summaries and cross-run comparisons."""

from __future__ import annotations

from typing import Dict, Sequence

from ..cluster.cluster import RunResult
from ..errors import ConfigurationError
from .metrics import RunMetrics, compute_metrics
from .tables import Table

__all__ = ["summarize_run", "compare_runs"]


def summarize_run(result: RunResult, node: int = 0) -> str:
    """A human-readable one-run summary (what the CLI prints)."""
    m = compute_metrics(result, node=node)
    residency = ", ".join(
        f"{ghz:.1f}GHz:{frac * 100:.0f}%" for ghz, frac in sorted(m.residency.items(), reverse=True)
    )
    lines = [
        f"job               : {result.job_name}",
        f"execution time    : {m.execution_time:.1f} s",
        f"avg wall power    : {m.average_power:.2f} W (node{node})",
        f"energy            : {m.energy / 1000:.1f} kJ",
        f"power-delay prod. : {m.power_delay_product:.0f} W*s",
        f"freq changes      : {m.freq_changes}",
        f"temperature       : mean {m.mean_temperature:.1f} degC, "
        f"max {m.max_temperature:.1f} degC, final {m.final_temperature:.1f} degC",
        f"stabilized at     : {m.stabilization:.1f} s",
        f"mean fan duty     : {m.mean_duty * 100:.1f} %",
        f"freq residency    : {residency}",
    ]
    return "\n".join(lines)


def compare_runs(
    runs: Dict[str, RunResult],
    node: int = 0,
    title: str = "run comparison",
) -> Table:
    """Tabulate several labelled runs side by side (Table-1 style).

    Parameters
    ----------
    runs:
        Label → finished run.
    node:
        Node whose metrics are reported.
    title:
        Table caption.
    """
    if not runs:
        raise ConfigurationError("compare_runs needs at least one run")
    table = Table(
        headers=[
            "config",
            "# freq changes",
            "exec time (s)",
            "avg power (W)",
            "PDP (W*s)",
            "mean T (degC)",
            "max T (degC)",
        ],
        formats=[None, "d", ".1f", ".2f", ".0f", ".1f", ".1f"],
        title=title,
    )
    for label, result in runs.items():
        m: RunMetrics = compute_metrics(result, node=node)
        table.add_row(
            label,
            m.freq_changes,
            m.execution_time,
            m.average_power,
            m.power_delay_product,
            m.mean_temperature,
            m.max_temperature,
        )
    return table
