"""Measurement and evaluation utilities.

* :mod:`repro.analysis.metrics` — the quantities the paper reports:
  average/max temperature, stabilization time, average wall power,
  power-delay product, frequency-change counts, trigger times.
* :mod:`repro.analysis.summarize` — one-call summaries of a
  :class:`~repro.cluster.cluster.RunResult` and comparisons between
  runs.
* :mod:`repro.analysis.tables` — plain-text table rendering used by
  the benchmark harnesses to print paper-style rows.
* :mod:`repro.analysis.export` — CSV/JSON export of run artifacts for
  external plotting tools.
* :mod:`repro.analysis.rows` — keyed lookup over collected result
  rows (the shared replacement for per-experiment linear scans).
"""

from .export import export_run, export_trace_csv
from .metrics import (
    RunMetrics,
    compute_metrics,
    frequency_residency,
    stabilization_time,
)
from .rows import lookup_row
from .summarize import compare_runs, summarize_run
from .tables import Table

__all__ = [
    "RunMetrics",
    "compute_metrics",
    "stabilization_time",
    "frequency_residency",
    "summarize_run",
    "compare_runs",
    "Table",
    "export_trace_csv",
    "export_run",
    "lookup_row",
]
