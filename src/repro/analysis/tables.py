"""Plain-text table rendering.

The benchmark harnesses print paper-style tables to stdout (the
reproduction's equivalent of the paper's Table 1 and figure captions).
:class:`Table` is a minimal fixed-width renderer with no dependencies —
column widths auto-size to content, floats get per-column formats.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..errors import ConfigurationError

__all__ = ["Table"]


class Table:
    """A fixed-width text table.

    Parameters
    ----------
    headers:
        Column titles.
    formats:
        Optional per-column format specs (e.g. ``".1f"``); ``None``
        entries fall back to ``str``.
    title:
        Optional caption printed above the table.
    """

    def __init__(
        self,
        headers: Sequence[str],
        formats: Optional[Sequence[Optional[str]]] = None,
        title: str = "",
    ) -> None:
        if not headers:
            raise ConfigurationError("table needs at least one column")
        self.headers = list(headers)
        if formats is None:
            formats = [None] * len(headers)
        if len(formats) != len(headers):
            raise ConfigurationError(
                f"{len(formats)} formats for {len(headers)} columns"
            )
        self.formats = list(formats)
        self.title = title
        self._rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append a row; cell count must match the header."""
        if len(cells) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        rendered = []
        for cell, fmt in zip(cells, self.formats):
            if fmt is not None and isinstance(cell, (int, float)):
                rendered.append(format(cell, fmt))
            else:
                rendered.append(str(cell))
        self._rows.append(rendered)

    def render(self) -> str:
        """The formatted table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_line(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_line(self.headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt_line(row) for row in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    @property
    def n_rows(self) -> int:
        """Number of data rows added so far."""
        return len(self._rows)
