"""Export run artifacts to plain files (CSV / JSON / text).

Experiments often end in a plotting tool; this module writes the
standard :class:`~repro.cluster.cluster.RunResult` artifacts to a
directory in formats anything can ingest:

* one CSV per trace (``node0.temp.csv`` → ``time,value`` rows),
* ``events.txt`` — the event log, one line per event,
* ``summary.json`` — the per-node :class:`~repro.analysis.metrics.RunMetrics`.

No third-party dependencies: ``csv`` and ``json`` from the standard
library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..cluster.cluster import RunResult
from ..errors import ConfigurationError
from ..sim.trace import Trace
from .metrics import compute_metrics

__all__ = ["export_trace_csv", "export_run"]


def export_trace_csv(trace: Trace, path: Union[str, Path]) -> Path:
    """Write one trace as a two-column CSV; returns the path written."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", trace.name])
        for t, v in zip(trace.times, trace.values):
            writer.writerow([f"{t:.6f}", f"{v:.6f}"])
    return out


def export_run(
    result: RunResult,
    directory: Union[str, Path],
    traces: Optional[List[str]] = None,
) -> Dict[str, Path]:
    """Write a finished run's artifacts into ``directory``.

    Parameters
    ----------
    result:
        The finished run.
    directory:
        Target directory (created if missing).
    traces:
        Trace names to export; default: all recorded traces.

    Returns
    -------
    dict
        Artifact name → written path (``"summary"``, ``"events"``, and
        one entry per trace).
    """
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    names = traces if traces is not None else result.traces.names()
    for name in names:
        if name not in result.traces:
            raise ConfigurationError(f"no trace named {name!r} in the run")
        written[name] = export_trace_csv(
            result.traces[name], out_dir / f"{name}.csv"
        )

    events_path = out_dir / "events.txt"
    with events_path.open("w") as handle:
        for event in result.events:
            handle.write(str(event) + "\n")
    written["events"] = events_path

    summary = {
        "job": result.job_name,
        "execution_time_s": result.execution_time,
        "cluster_average_power_w": result.cluster_average_power,
        "cluster_energy_j": result.cluster_energy,
        "nodes": {},
    }
    for node_index in range(len(result.average_power)):
        metrics = compute_metrics(result, node=node_index)
        summary["nodes"][f"node{node_index}"] = {
            "average_power_w": metrics.average_power,
            "power_delay_product_ws": metrics.power_delay_product,
            "energy_j": metrics.energy,
            "freq_changes": metrics.freq_changes,
            "mean_temperature_c": metrics.mean_temperature,
            "max_temperature_c": metrics.max_temperature,
            "final_temperature_c": metrics.final_temperature,
            "mean_duty": metrics.mean_duty,
            "stabilization_s": metrics.stabilization,
            "residency": {f"{k:.1f}": v for k, v in metrics.residency.items()},
        }
    summary_path = out_dir / "summary.json"
    summary_path.write_text(json.dumps(summary, indent=2, sort_keys=True))
    written["summary"] = summary_path
    return written
