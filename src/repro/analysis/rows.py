"""Keyed lookup over lists of result-row dataclasses.

Every sweep experiment collects per-configuration row objects and then
needs "the row where max_duty == 0.50" while rendering.  Historically
each module carried its own copy-pasted linear scan with a bespoke
error message; :func:`lookup_row` is the one shared implementation.

Criteria compare with ``==`` except floats, which use an absolute
tolerance so callers can key on literals like ``0.1 + 0.2``.
"""

from __future__ import annotations

from typing import Iterable, List, TypeVar

__all__ = ["lookup_row"]

_FLOAT_TOL = 1e-9

_T = TypeVar("_T")


def _matches(actual: object, expected: object) -> bool:
    if isinstance(expected, float) or isinstance(actual, float):
        try:
            return abs(float(actual) - float(expected)) <= _FLOAT_TOL
        except (TypeError, ValueError):
            return False
    return actual == expected


def lookup_row(rows: Iterable[_T], **criteria: object) -> _T:
    """The unique row whose attributes match every keyword criterion.

    Raises
    ------
    KeyError
        If no row matches, listing the values available for each
        criterion so the failure is self-diagnosing.  (Sweeps key rows
        uniquely; the first match wins if a caller ever over-collects.)
    """
    if not criteria:
        raise KeyError("lookup_row needs at least one criterion")
    rows = list(rows)
    for row in rows:
        if all(_matches(getattr(row, k), v) for k, v in criteria.items()):
            return row
    available: List[str] = []
    for key in criteria:
        values = sorted({repr(getattr(r, key)) for r in rows})
        available.append(f"{key} in {{{', '.join(values)}}}")
    want = ", ".join(f"{k}={v!r}" for k, v in criteria.items())
    raise KeyError(f"no row with {want}; available: {'; '.join(available)}")
