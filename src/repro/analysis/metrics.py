"""Metrics the paper's evaluation reports.

All functions take the standard traces recorded by
:class:`~repro.cluster.cluster.Cluster` (``node{i}.temp``, ``.duty``,
``.freq_ghz``, ``.power``) and are pure — they never mutate the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cluster.cluster import RunResult
from ..errors import ConfigurationError
from ..sim.trace import Trace

__all__ = [
    "stabilization_time",
    "frequency_residency",
    "RunMetrics",
    "compute_metrics",
]


def stabilization_time(
    trace: Trace,
    band: float = 1.5,
    settle_window: float = 30.0,
) -> float:
    """Earliest time after which the trace stays within ``band`` of its
    final level.

    The final level is the mean of the last ``settle_window`` seconds.
    This is the "time to stabilize the temperature" criterion of the
    paper's Figure 6 discussion.  Returns the last sample time when the
    trace never settles.
    """
    if len(trace) == 0:
        raise ConfigurationError("cannot compute stabilization of empty trace")
    t = trace.times
    v = trace.values
    final = trace.window(float(t[-1]) - settle_window, float(t[-1])).mean()
    inside = np.abs(v - final) <= band
    # Find the earliest index from which `inside` holds to the end.
    outside_idx = np.where(~inside)[0]
    if outside_idx.size == 0:
        return float(t[0])
    last_outside = int(outside_idx[-1])
    if last_outside + 1 >= len(t):
        return float(t[-1])
    return float(t[last_outside + 1])


def frequency_residency(trace: Trace) -> Dict[float, float]:
    """Fraction of time spent at each frequency (GHz) in a freq trace.

    Uses holding-time weights (each sample holds until the next), so it
    is exact for the cluster's evenly-sampled ``freq_ghz`` traces.
    """
    if len(trace) == 0:
        return {}
    v = trace.values
    out: Dict[float, float] = {}
    total = float(len(v))
    for ghz in np.unique(v):
        out[float(ghz)] = float(np.sum(v == ghz)) / total
    return out


@dataclass(frozen=True)
class RunMetrics:
    """The paper's Table-1 row (plus thermal context) for one node.

    Attributes
    ----------
    execution_time:
        Job wall time, seconds.
    average_power:
        Mean wall power, W.
    power_delay_product:
        ``average_power × execution_time``, W·s.
    energy:
        Wall energy, J.
    freq_changes:
        DVFS transition count.
    mean_temperature / max_temperature / final_temperature:
        °C over the sensor trace (final = last 15 s mean).
    mean_duty:
        Mean PWM duty fraction.
    stabilization:
        :func:`stabilization_time` of the temperature trace, s.
    residency:
        Frequency residency map (GHz → fraction).
    """

    execution_time: float
    average_power: float
    power_delay_product: float
    energy: float
    freq_changes: int
    mean_temperature: float
    max_temperature: float
    final_temperature: float
    mean_duty: float
    stabilization: float
    residency: Dict[float, float]


def compute_metrics(result: RunResult, node: int = 0) -> RunMetrics:
    """Extract a :class:`RunMetrics` for one node of a finished run."""
    prefix = f"node{node}"
    temp = result.traces[f"{prefix}.temp"]
    duty = result.traces[f"{prefix}.duty"]
    freq = result.traces[f"{prefix}.freq_ghz"]
    t_end = float(temp.times[-1])
    return RunMetrics(
        execution_time=result.execution_time,
        average_power=result.average_power[node],
        power_delay_product=result.power_delay_product(node),
        energy=result.energy_joules[node],
        freq_changes=result.dvfs_change_count(node),
        mean_temperature=temp.mean(),
        max_temperature=temp.max(),
        final_temperature=temp.window(t_end - 15.0, t_end).mean(),
        mean_duty=duty.mean(),
        stabilization=stabilization_time(temp),
        residency=frequency_residency(freq),
    )
