"""Thermal-stress and reliability statistics.

The paper's case for thermal control is ultimately reliability:
*"higher temperatures can reduce system reliability and life
expectancy"* (§1).  These functions quantify that over a recorded
temperature trace:

* :func:`time_above` — seconds spent at/above a threshold (thermal
  emergency exposure).
* :func:`degree_seconds_above` — the ∫max(T−T₀, 0)dt stress integral
  (both *how long* and *how far* over).
* :func:`arrhenius_acceleration` — the mean Arrhenius aging
  acceleration relative to a reference temperature: failure mechanisms
  (electromigration, TDDB) accelerate as ``exp(Ea/k · (1/T_ref −
  1/T))``; a trace-averaged factor of 2 means the part aged twice as
  fast as it would have at the reference temperature.
* :func:`thermal_cycles` — count of excursions above a band, the
  fatigue-cycle driver for solder joints (the paper cites a solder
  reliability study [34] for good reason).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..sim.trace import Trace
from ..units import celsius_to_kelvin

__all__ = [
    "time_above",
    "degree_seconds_above",
    "arrhenius_acceleration",
    "thermal_cycles",
    "BOLTZMANN_EV",
]

#: Boltzmann constant in eV/K.
BOLTZMANN_EV = 8.617333262e-5


def _holding_weights(times: np.ndarray) -> np.ndarray:
    """Per-sample holding durations (last sample holds the mean dt)."""
    if times.size == 1:
        return np.ones(1)
    dt = np.diff(times)
    tail = float(np.mean(dt)) if dt.size else 1.0
    return np.concatenate([dt, [tail]])


def time_above(trace: Trace, threshold: float) -> float:
    """Seconds the trace spent at/above ``threshold`` °C."""
    if len(trace) == 0:
        return 0.0
    weights = _holding_weights(np.asarray(trace.times))
    mask = np.asarray(trace.values) >= threshold
    return float(np.sum(weights[mask]))


def degree_seconds_above(trace: Trace, threshold: float) -> float:
    """∫ max(T − threshold, 0) dt in kelvin-seconds."""
    if len(trace) == 0:
        return 0.0
    weights = _holding_weights(np.asarray(trace.times))
    excess = np.maximum(np.asarray(trace.values) - threshold, 0.0)
    return float(np.sum(excess * weights))


def arrhenius_acceleration(
    trace: Trace,
    reference_celsius: float = 45.0,
    activation_energy_ev: float = 0.7,
) -> float:
    """Mean Arrhenius aging acceleration vs ``reference_celsius``.

    Parameters
    ----------
    trace:
        Temperature trace, °C.
    reference_celsius:
        The baseline operating temperature.
    activation_energy_ev:
        Apparent activation energy; 0.7 eV is the JEDEC default for
        silicon wear-out mechanisms.

    Returns
    -------
    float
        Time-weighted mean of ``exp(Ea/k · (1/T_ref − 1/T))``; 1.0
        means "ages like the reference", 2.0 means twice as fast.
    """
    if activation_energy_ev <= 0:
        raise ConfigurationError(
            f"activation energy must be > 0 eV, got {activation_energy_ev!r}"
        )
    if len(trace) == 0:
        return 1.0
    t_ref_k = celsius_to_kelvin(reference_celsius)
    t_k = np.asarray([celsius_to_kelvin(v) for v in trace.values])
    factors = np.exp(
        (activation_energy_ev / BOLTZMANN_EV) * (1.0 / t_ref_k - 1.0 / t_k)
    )
    weights = _holding_weights(np.asarray(trace.times))
    return float(np.sum(factors * weights) / np.sum(weights))


def thermal_cycles(
    trace: Trace, threshold: float, hysteresis: float = 1.0
) -> int:
    """Number of excursions above ``threshold`` (with hysteresis).

    An excursion starts when the trace crosses up through ``threshold``
    and ends when it falls below ``threshold − hysteresis``; each
    completed or ongoing excursion counts one cycle.
    """
    if hysteresis <= 0:
        raise ConfigurationError(f"hysteresis must be > 0, got {hysteresis!r}")
    cycles = 0
    above = False
    for value in trace.values:
        if not above and value >= threshold:
            above = True
            cycles += 1
        elif above and value < threshold - hysteresis:
            above = False
    return cycles
