"""Terminal (ASCII) line charts for traces.

The reproduction has no plotting dependency; for a quick visual check
of a figure's shape straight in the terminal, :func:`ascii_chart`
renders one or more curves as a block-character plot:

.. code-block:: text

    58.0 |                                 ..····^^^^
         |                        ..··^^···
    48.0 |        ..··^^··further..
         |  ..··
    38.0 |··
         +--------------------------------------------
         0 s                                      230 s

It is intentionally simple — uniform x-resampling, shared y-axis,
one glyph per column per curve — but it is enough to eyeball the
"CPUSPEED climbs / tDVFS plateaus" shapes without leaving the shell.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ascii_chart",
    "GLYPHS",
]

#: Glyphs assigned to successive curves.
GLYPHS = "*o+x#@%&"


def _resample(times: np.ndarray, values: np.ndarray, columns: int, t0: float, t1: float) -> np.ndarray:
    """Mean value per column bin; NaN for empty bins."""
    edges = np.linspace(t0, t1, columns + 1)
    out = np.full(columns, np.nan)
    idx = np.clip(np.searchsorted(edges, times, side="right") - 1, 0, columns - 1)
    for col in range(columns):
        mask = idx == col
        if np.any(mask):
            out[col] = float(np.mean(values[mask]))
    return out


def ascii_chart(
    curves: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render curves as a text chart.

    Parameters
    ----------
    curves:
        Label → (times, values).  All curves share both axes.
    width:
        Plot columns (x resolution).
    height:
        Plot rows (y resolution).
    y_label:
        Optional unit string shown in the legend line.

    Returns
    -------
    str
        The chart, legend included, ready to print.
    """
    if not curves:
        raise ConfigurationError("ascii_chart needs at least one curve")
    if width < 8 or height < 4:
        raise ConfigurationError(
            f"chart too small ({width}x{height}); need >= 8x4"
        )
    if len(curves) > len(GLYPHS):
        raise ConfigurationError(
            f"at most {len(GLYPHS)} curves supported, got {len(curves)}"
        )

    arrays = {
        label: (np.asarray(t, dtype=float), np.asarray(v, dtype=float))
        for label, (t, v) in curves.items()
    }
    for label, (t, v) in arrays.items():
        if t.size == 0 or t.size != v.size:
            raise ConfigurationError(f"curve {label!r} is empty or ragged")

    t0 = min(float(t[0]) for t, _ in arrays.values())
    t1 = max(float(t[-1]) for t, _ in arrays.values())
    if t1 <= t0:
        t1 = t0 + 1.0
    y_lo = min(float(np.min(v)) for _, v in arrays.values())
    y_hi = max(float(np.max(v)) for _, v in arrays.values())
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    grid = [[" "] * width for _ in range(height)]
    for (label, (t, v)), glyph in zip(arrays.items(), GLYPHS):
        sampled = _resample(t, v, width, t0, t1)
        for col, value in enumerate(sampled):
            if np.isnan(value):
                continue
            row = int((y_hi - value) / (y_hi - y_lo) * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][col] = glyph

    margin = 8
    lines = []
    for row in range(height):
        if row == 0:
            tag = f"{y_hi:7.1f} "
        elif row == height - 1:
            tag = f"{y_lo:7.1f} "
        elif row == height // 2:
            tag = f"{(y_lo + y_hi) / 2:7.1f} "
        else:
            tag = " " * margin
        lines.append(tag + "|" + "".join(grid[row]))
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{t0:.0f} s".ljust(width - 10) + f"{t1:.0f} s"
    lines.append(" " * (margin + 1) + x_axis)
    legend = "  ".join(
        f"{glyph}={label}" for (label, _), glyph in zip(arrays.items(), GLYPHS)
    )
    if y_label:
        legend = f"[{y_label}]  " + legend
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
