"""IPMI / BMC out-of-band management substrate.

The paper's "out-of-band" techniques act outside the application's
critical path; on modern servers the canonical out-of-band path is the
**Baseboard Management Controller** reached via IPMI (``ipmitool sensor
list``, ``ipmitool raw`` fan overrides) — which is exactly how one
would script this paper's fan side today.

This package models that path:

* :mod:`repro.ipmi.sdr` — the Sensor Data Record repository: typed
  sensor records with thresholds, like ``ipmitool sdr`` shows.
* :mod:`repro.ipmi.bmc` — the BMC: sensor reads, threshold events into
  a System Event Log (SEL), and a fan override command that writes the
  ADT7467 through the node's i2c bus (the BMC is the other bus master).
* :mod:`repro.ipmi.actuator` — a
  :class:`~repro.core.actuator.ModeActuator` over the BMC fan override,
  so the paper's unified controller can drive the fan *entirely
  out-of-band* without touching the host OS.
"""

from .actuator import BmcFanActuator
from .bmc import BMC, SelEntry
from .sdr import SensorRecord, SensorType, ThresholdStatus

__all__ = [
    "SensorType",
    "ThresholdStatus",
    "SensorRecord",
    "SelEntry",
    "BMC",
    "BmcFanActuator",
]
