"""Sensor Data Records — the BMC's sensor inventory.

A :class:`SensorRecord` binds a name and type to a *reading source*
(any zero-argument callable) plus optional upper thresholds
(non-critical / critical / non-recoverable), mirroring the analog
threshold model of the IPMI specification's full sensor records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ConfigurationError

__all__ = ["SensorType", "ThresholdStatus", "SensorRecord"]


class SensorType(enum.Enum):
    """The sensor classes this BMC model carries."""

    TEMPERATURE = "degrees C"
    FAN = "RPM"
    POWER = "Watts"
    VOLTAGE = "Volts"


class ThresholdStatus(enum.Enum):
    """IPMI-style threshold comparison outcome, ordered by severity."""

    OK = 0
    UPPER_NON_CRITICAL = 1
    UPPER_CRITICAL = 2
    UPPER_NON_RECOVERABLE = 3

    def __lt__(self, other: "ThresholdStatus") -> bool:
        return self.value < other.value


@dataclass
class SensorRecord:
    """One SDR entry.

    Attributes
    ----------
    sensor_id:
        Numeric id unique within the repository.
    name:
        Display name (``"CPU Temp"``, ``"FAN1"``).
    sensor_type:
        Physical class (fixes the unit string).
    read:
        Zero-argument callable producing the current raw reading.
    unc / ucr / unr:
        Upper non-critical / critical / non-recoverable thresholds
        (``None`` disables each).  Must be non-decreasing where present.
    """

    sensor_id: int
    name: str
    sensor_type: SensorType
    read: Callable[[], float]
    unc: Optional[float] = None
    ucr: Optional[float] = None
    unr: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 <= self.sensor_id <= 0xFF:
            raise ConfigurationError(
                f"sensor id {self.sensor_id} outside the IPMI byte range"
            )
        present = [t for t in (self.unc, self.ucr, self.unr) if t is not None]
        if any(b < a for a, b in zip(present, present[1:])):
            raise ConfigurationError(
                f"sensor {self.name!r}: thresholds must be non-decreasing "
                f"(unc <= ucr <= unr), got {self.unc}/{self.ucr}/{self.unr}"
            )

    def status_of(self, value: float) -> ThresholdStatus:
        """Threshold status of a reading (most severe crossed level)."""
        if self.unr is not None and value >= self.unr:
            return ThresholdStatus.UPPER_NON_RECOVERABLE
        if self.ucr is not None and value >= self.ucr:
            return ThresholdStatus.UPPER_CRITICAL
        if self.unc is not None and value >= self.unc:
            return ThresholdStatus.UPPER_NON_CRITICAL
        return ThresholdStatus.OK
