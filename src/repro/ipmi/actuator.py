"""The BMC fan override as a unified-controller mode actuator.

Dropping :class:`BmcFanActuator` into
:class:`~repro.core.controller.UnifiedThermalController` runs the
paper's dynamic fan control **entirely out-of-band**: samples come from
the BMC's CPU temperature sensor and actuation goes through the BMC's
raw fan command — no host-OS driver involved.  This is the ipmitool
deployment path a practitioner would use to reproduce the paper on
hardware they cannot load kernel modules on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.actuator import ModeActuator
from ..errors import ActuatorError
from ..units import require_in_range
from .bmc import BMC

__all__ = ["BmcFanActuator"]


class BmcFanActuator(ModeActuator):
    """Out-of-band fan modes via the BMC override command.

    Parameters
    ----------
    bmc:
        The node's management controller.
    steps:
        Number of discrete duty modes (BMC raw commands usually take a
        byte; 100 matches the paper's discretization).
    min_duty / max_duty:
        Mode range; ``max_duty`` emulates a capped fan.
    """

    technique = "fan"

    def __init__(
        self,
        bmc: BMC,
        steps: int = 100,
        min_duty: float = 0.01,
        max_duty: float = 1.0,
    ) -> None:
        require_in_range(min_duty, 0.0, 1.0, "min_duty")
        require_in_range(max_duty, 0.0, 1.0, "max_duty")
        if steps < 2 or min_duty >= max_duty:
            raise ActuatorError(
                f"invalid BMC fan mode set: steps={steps}, "
                f"range=[{min_duty}, {max_duty}]"
            )
        self.bmc = bmc
        self._modes = tuple(
            float(d) for d in np.linspace(min_duty, max_duty, steps)
        )
        # take control immediately at the least effective mode
        self.bmc.set_fan_override(self._modes[0])

    @property
    def modes(self) -> Sequence[float]:
        return self._modes

    def apply(self, mode: float, t: float) -> None:
        self.bmc.set_fan_override(float(mode))

    def current_mode(self) -> float:
        duty = self.bmc.fan_override
        if duty is None:
            return self._modes[0]
        return min(self._modes, key=lambda d: abs(d - duty))
