"""The Baseboard Management Controller model.

The BMC is the second master on the node's i2c segment: it polls its
SDR sensors, logs threshold crossings into a System Event Log, and
exposes the management commands an ``ipmitool`` user scripts against:

* ``sensor_list()`` / ``get_sensor_reading(id)`` — like
  ``ipmitool sensor list``.
* ``set_fan_override(duty)`` / ``clear_fan_override()`` — the raw fan
  command path most vendors expose; writes the ADT7467's PWM register
  directly over the shared i2c bus, completely outside the host OS.
* ``sel_entries()`` — the System Event Log.

Construction wires a standard server SDR set (CPU temperature with
85/95 °C critical thresholds, fan tach, wall power) against a
:class:`~repro.cluster.node.Node`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..fan.adt7467 import CONFIG_MANUAL, REG_PWM1_CONFIG, REG_PWM1_DUTY
from ..units import clamp, require_in_range
from .sdr import SensorRecord, SensorType, ThresholdStatus

__all__ = [
    "SelEntry",
    "BMC",
    "SENSOR_CPU_TEMP",
    "SENSOR_FAN1",
    "SENSOR_WALL_POWER",
]

#: Standard sensor ids in the default SDR set.
SENSOR_CPU_TEMP = 0x01
SENSOR_FAN1 = 0x02
SENSOR_WALL_POWER = 0x03


@dataclass(frozen=True)
class SelEntry:
    """One System Event Log record."""

    time: float
    sensor_name: str
    status: ThresholdStatus
    reading: float

    def __str__(self) -> str:
        return (
            f"[{self.time:10.3f}s] SEL {self.sensor_name}: "
            f"{self.status.name} at {self.reading:.1f}"
        )


class BMC:
    """A node's management controller.

    Parameters
    ----------
    node:
        The managed :class:`~repro.cluster.node.Node`.
    poll_period:
        Sensor scan cadence, seconds (BMCs poll at ~1 Hz).
    cpu_temp_thresholds:
        (unc, ucr, unr) for the CPU temperature sensor.
    """

    def __init__(
        self,
        node,
        poll_period: float = 1.0,
        cpu_temp_thresholds: Tuple[float, float, float] = (75.0, 85.0, 95.0),
    ) -> None:
        if poll_period <= 0:
            raise ConfigurationError(
                f"poll_period must be > 0, got {poll_period!r}"
            )
        self.node = node
        self.poll_period = poll_period
        self._sel: List[SelEntry] = []
        self._last_status: Dict[int, ThresholdStatus] = {}
        self._override_duty: Optional[float] = None

        unc, ucr, unr = cpu_temp_thresholds
        self._sdr: Dict[int, SensorRecord] = {}
        for record in (
            SensorRecord(
                SENSOR_CPU_TEMP,
                "CPU Temp",
                SensorType.TEMPERATURE,
                # The BMC reads the fan chip's remote diode register —
                # the identical path lm-sensors uses, 1 degC resolution.
                read=lambda: float(round(node.package.die_temperature)),
                unc=unc,
                ucr=ucr,
                unr=unr,
            ),
            SensorRecord(
                SENSOR_FAN1,
                "FAN1",
                SensorType.FAN,
                read=lambda: node.fan_rpm,
            ),
            SensorRecord(
                SENSOR_WALL_POWER,
                "System Power",
                SensorType.POWER,
                read=lambda: node.wall_power,
            ),
        ):
            self._sdr[record.sensor_id] = record
            self._last_status[record.sensor_id] = ThresholdStatus.OK

    # -- sensor commands ----------------------------------------------------

    def sensor_list(self) -> List[Tuple[str, float, str, ThresholdStatus]]:
        """(name, reading, unit, status) per sensor — ``ipmitool sensor``."""
        out = []
        for record in self._sdr.values():
            value = record.read()
            out.append(
                (record.name, value, record.sensor_type.value, record.status_of(value))
            )
        return out

    def get_sensor_reading(self, sensor_id: int) -> Tuple[float, ThresholdStatus]:
        """Reading and threshold status of one sensor."""
        record = self._sdr.get(sensor_id)
        if record is None:
            raise ConfigurationError(
                f"no SDR record {sensor_id:#04x}; have {sorted(self._sdr)}"
            )
        value = record.read()
        return value, record.status_of(value)

    @property
    def cpu_temperature(self) -> float:
        """Shortcut: the CPU temperature sensor's current reading."""
        return self.get_sensor_reading(SENSOR_CPU_TEMP)[0]

    # -- fan override ------------------------------------------------------

    def set_fan_override(self, duty: float) -> None:
        """Force the fan PWM from the BMC (survives host wedges/panics).

        Puts the ADT7467 into manual mode and writes the duty register
        over the shared i2c bus — the raw-command fan path.
        """
        require_in_range(duty, 0.0, 1.0, "duty")
        self._override_duty = duty
        bus = self.node.bus
        address = self.node.fan_chip.address
        bus.write_byte_data(address, REG_PWM1_CONFIG, CONFIG_MANUAL)
        bus.write_byte_data(
            address, REG_PWM1_DUTY, int(round(clamp(duty, 0.0, 1.0) * 255))
        )

    def clear_fan_override(self) -> None:
        """Release the override (chip stays in its last mode/duty)."""
        self._override_duty = None

    @property
    def fan_override(self) -> Optional[float]:
        """The forced duty, or ``None`` when not overriding."""
        return self._override_duty

    # -- polling & SEL -----------------------------------------------------

    def poll(self, t: float) -> None:
        """One sensor scan: log SEL entries on threshold *transitions*."""
        for sensor_id, record in self._sdr.items():
            value = record.read()
            status = record.status_of(value)
            if status != self._last_status[sensor_id]:
                if status > self._last_status[sensor_id]:
                    # escalations are logged; de-escalations just clear
                    self._sel.append(
                        SelEntry(
                            time=t,
                            sensor_name=record.name,
                            status=status,
                            reading=value,
                        )
                    )
                self._last_status[sensor_id] = status

    def sel_entries(self) -> List[SelEntry]:
        """The System Event Log, oldest first."""
        return list(self._sel)

    def sel_count(self, at_least: ThresholdStatus) -> int:
        """SEL entries at or above a severity."""
        return sum(1 for e in self._sel if e.status.value >= at_least.value)
