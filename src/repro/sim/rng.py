"""Deterministic per-component random number streams.

Every stochastic element (sensor noise, workload burstiness, ambient
fluctuation) draws from its own named stream derived from a single root
seed.  This gives two properties experiments rely on:

* **Reproducibility** — a run is a pure function of (platform, seed).
* **Isolation** — adding a new noisy component does not perturb the
  random sequence seen by existing components, so calibrated experiment
  outputs stay stable as the library grows.

Streams are spawned with :class:`numpy.random.SeedSequence` keyed by the
stream name, which is the numpy-recommended way to build independent
generators.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RngStreams` with the same seed hand out
        identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The same name always returns the *same generator object*, so a
        component may call this repeatedly without resetting its
        sequence.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Hash the name to a stable integer (crc32 is deterministic
            # across processes, unlike hash()) and mix with the root seed.
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngStreams":
        """A new independent :class:`RngStreams` derived from this one.

        Used to give each node of a cluster its own family of streams.
        """
        return RngStreams(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)
