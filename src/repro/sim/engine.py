"""The fixed-step simulation engine.

The engine owns a :class:`~repro.sim.clock.SimClock`, a list of
:class:`Component` instances and any number of
:class:`~repro.sim.clock.PeriodicTask` callbacks.  Each tick it:

1. advances the clock by ``dt``;
2. calls every component's :meth:`Component.step` in registration
   order (physics first, then sensors, then controllers — the caller
   controls ordering by registration);
3. fires any periodic tasks whose period divides the current tick.

Runs terminate on a time horizon, on a stop predicate (e.g. "workload
finished"), or on an explicit :meth:`SimulationEngine.stop` from inside
a callback — whichever comes first.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..errors import ConfigurationError, SimulationError
from .clock import PeriodicTask, SimClock
from .events import EventLog
from .trace import TraceSet

__all__ = ["Component", "SimulationEngine"]


class Component:
    """Base class for anything advanced by the engine every tick.

    Subclasses override :meth:`step`; ``name`` is used in traces, events
    and error messages.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("component name must be non-empty")
        self.name = name

    def step(self, t: float, dt: float) -> None:
        """Advance internal state from ``t - dt`` to ``t``.

        ``t`` is the time *after* this tick; physical models should
        integrate over the interval ``[t - dt, t]``.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class SimulationEngine:
    """Fixed-step run loop over registered components and periodic tasks.

    Parameters
    ----------
    dt:
        Physics step in seconds.
    traces:
        Optional shared :class:`TraceSet`; created if omitted.
    events:
        Optional shared :class:`EventLog`; created if omitted.
    fastpath:
        When True, :meth:`run` executes through the
        :mod:`repro.fastpath` step compiler: components are fused into
        pre-bound step callables and physics microticks are batched
        between periodic-task boundaries.  The compiled loop is
        byte-identical to the reference loop (same floating-point
        operations in the same order); it is opt-in because it relies
        on the structural compiler recognising the registered
        components.
    """

    def __init__(
        self,
        dt: float = 0.05,
        traces: Optional[TraceSet] = None,
        events: Optional[EventLog] = None,
        fastpath: bool = False,
    ) -> None:
        self.clock = SimClock(dt)
        self.traces = traces if traces is not None else TraceSet()
        self.events = events if events is not None else EventLog()
        self.fastpath = bool(fastpath)
        self._components: List[Component] = []
        self._tasks: List[PeriodicTask] = []
        self._running = False
        self._stop_requested = False

    # -- wiring --------------------------------------------------------------

    def add_component(self, component: Component) -> Component:
        """Register a component; returns it for chaining.

        Components step in registration order, so register physical
        models before the sensors that read them and sensors before the
        controllers that react to them.
        """
        if self._running:
            raise SimulationError("cannot add components while running")
        if any(c is component for c in self._components):
            raise ConfigurationError(
                f"component {component.name!r} registered twice"
            )
        self._components.append(component)
        return component

    def add_components(self, components: Sequence[Component]) -> None:
        """Register several components in order."""
        for c in components:
            self.add_component(c)

    def add_task(self, task: PeriodicTask) -> PeriodicTask:
        """Register a periodic task; binds it to this engine's clock."""
        if self._running:
            raise SimulationError("cannot add tasks while running")
        task.bind(self.clock)
        self._tasks.append(task)
        return task

    def every(
        self, period: float, callback: Callable[[float], None], phase: float = 0.0
    ) -> PeriodicTask:
        """Convenience wrapper: schedule ``callback`` every ``period`` s."""
        return self.add_task(PeriodicTask(period=period, callback=callback, phase=phase))

    # -- running -------------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to exit after the current tick."""
        self._stop_requested = True

    def step(self) -> float:
        """Advance the simulation by exactly one tick; returns new time."""
        t = self.clock.advance()
        dt = self.clock.dt
        for component in self._components:
            component.step(t, dt)
        for task in self._tasks:
            task.maybe_fire(self.clock)
        return t

    def run(
        self,
        duration: Optional[float] = None,
        until: Optional[Callable[[], bool]] = None,
        max_ticks: Optional[int] = None,
    ) -> float:
        """Run the loop and return the final simulation time.

        Parameters
        ----------
        duration:
            Wall-clock horizon in simulated seconds (from *now*, so a
            second ``run`` continues where the first stopped).
        until:
            Stop predicate evaluated after every tick; the run ends on
            the first tick where it returns ``True``.
        max_ticks:
            Hard tick budget — a guard against accidentally unbounded
            runs when ``until`` never fires.

        Raises
        ------
        ConfigurationError
            If no stopping criterion at all was provided.
        SimulationError
            If ``max_ticks`` elapses before ``duration``/``until``
            stop the run (indicating a stuck stop predicate), or on
            re-entrant ``run`` calls.
        """
        if duration is None and until is None and max_ticks is None:
            raise ConfigurationError(
                "run() needs at least one of duration/until/max_ticks"
            )
        if self._running:
            raise SimulationError("run() is not re-entrant")

        deadline_tick: Optional[int] = None
        if duration is not None:
            if duration < 0:
                raise ConfigurationError(f"duration must be >= 0, got {duration!r}")
            deadline_tick = self.clock.ticks + self.clock.ticks_for(duration)
        budget = max_ticks if max_ticks is not None else None

        self._running = True
        self._stop_requested = False
        ticks_done = 0
        try:
            if self.fastpath:
                # Deferred import: the step compiler reaches back into
                # repro.cluster for the fused node step.
                from ..fastpath.loop import run_fused

                run_fused(self, deadline_tick, budget, until)
            else:
                while True:
                    if deadline_tick is not None and self.clock.ticks >= deadline_tick:
                        break
                    if budget is not None and ticks_done >= budget:
                        if deadline_tick is not None or until is not None:
                            raise SimulationError(
                                f"max_ticks={budget} exhausted before the stop "
                                "condition was reached"
                            )
                        break
                    self.step()
                    ticks_done += 1
                    if self._stop_requested:
                        break
                    if until is not None and until():
                        break
        finally:
            self._running = False
        return self.clock.now
