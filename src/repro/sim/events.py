"""Discrete event records.

Beyond dense traces, experiments need *sparse* events: "tDVFS scaled
2.4 GHz → 2.2 GHz at t=412 s", "fan mode changed", "workload iteration
finished".  Table 1 of the paper literally counts frequency-change
events, so the event log is a first-class artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """A single timestamped, categorized event.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    category:
        Machine-friendly category string, e.g. ``"dvfs.change"``,
        ``"fan.mode"``, ``"workload.phase"``.
    source:
        Name of the emitting component (e.g. ``"node0.tdvfs"``).
    data:
        Free-form payload (old/new mode, phase name, ...).
    """

    time: float
    category: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        payload = ", ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
        return f"[{self.time:10.3f}s] {self.category} ({self.source}) {payload}"


class EventLog:
    """Append-only, time-ordered list of :class:`Event` records."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def emit(
        self,
        time: float,
        category: str,
        source: str,
        **data: Any,
    ) -> Event:
        """Record and return a new event."""
        event = Event(time=time, category=category, source=source, data=data)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def filter(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        t0: float = float("-inf"),
        t1: float = float("inf"),
    ) -> List[Event]:
        """Events matching the given category/source prefix and time range.

        ``category`` and ``source`` match by *prefix*, so
        ``filter(category="dvfs")`` catches both ``dvfs.change`` and
        ``dvfs.clamp``.
        """
        out = []
        for e in self._events:
            if category is not None and not e.category.startswith(category):
                continue
            if source is not None and not e.source.startswith(source):
                continue
            if not (t0 <= e.time <= t1):
                continue
            out.append(e)
        return out

    def count(self, category: str, source: Optional[str] = None) -> int:
        """Number of events whose category starts with ``category``."""
        return len(self.filter(category=category, source=source))

    def first_time(self, category: str) -> Optional[float]:
        """Time of the first event in ``category`` (prefix match), or None."""
        matches = self.filter(category=category)
        return matches[0].time if matches else None
