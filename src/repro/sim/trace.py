"""Time-series trace recording.

Controllers and experiments need dense time series (temperature, PWM
duty, frequency, power) sampled over hundreds of thousands of steps.
:class:`Trace` is an append-only ``(time, value)`` series backed by
amortized-growth numpy buffers — appends are O(1) and the final arrays
are contiguous, so analysis code can vectorize over them directly (see
the scientific-python guidance on preferring array operations to Python
loops).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Trace", "TraceSet"]

_INITIAL_CAPACITY = 256


class Trace:
    """Append-only time series of scalar samples.

    Parameters
    ----------
    name:
        Identifier used in trace sets and rendered tables.
    """

    __slots__ = ("name", "_t", "_v", "_n", "_last_t")

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("trace name must be non-empty")
        self.name = name
        self._t = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._v = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0
        # Kept as a plain Python float so the per-append monotonicity
        # check never round-trips through a numpy scalar.
        self._last_t = float("-inf")

    def __len__(self) -> int:
        return self._n

    def append(self, t: float, value: float) -> None:
        """Record ``value`` at time ``t``.

        Times are expected to be non-decreasing; this is asserted cheaply
        against the previous sample.
        """
        n = self._n
        if t < self._last_t:
            raise ConfigurationError(
                f"trace {self.name!r}: time went backwards "
                f"({t} < {self._last_t})"
            )
        if n == self._t.shape[0]:
            self._grow()
        self._t[n] = t
        self._v[n] = value
        self._n = n + 1
        self._last_t = float(t)

    def extend(self, t_block: "np.ndarray", v_block: "np.ndarray") -> None:
        """Append a whole block of samples in one call.

        Equivalent to ``append``-ing each pair in order — including the
        monotonicity contract — but with one bounds check and two
        vectorized copies instead of per-sample numpy scalar writes.
        This is the API the fastpath recording layer uses to flush its
        sample buffers.
        """
        t_arr = np.asarray(t_block, dtype=np.float64)
        v_arr = np.asarray(v_block, dtype=np.float64)
        if t_arr.ndim != 1 or v_arr.ndim != 1 or t_arr.shape != v_arr.shape:
            raise ConfigurationError(
                f"trace {self.name!r}: extend needs two 1-d blocks of "
                f"equal length, got shapes {t_arr.shape} and {v_arr.shape}"
            )
        k = int(t_arr.shape[0])
        if k == 0:
            return
        first = float(t_arr[0])
        if first < self._last_t:
            raise ConfigurationError(
                f"trace {self.name!r}: time went backwards "
                f"({first} < {self._last_t})"
            )
        if k > 1:
            steps = np.diff(t_arr)
            if np.any(steps < 0.0):
                at = int(np.argmax(steps < 0.0))
                raise ConfigurationError(
                    f"trace {self.name!r}: time went backwards "
                    f"({float(t_arr[at + 1])} < {float(t_arr[at])})"
                )
        n = self._n
        self._reserve(n + k)
        self._t[n : n + k] = t_arr
        self._v[n : n + k] = v_arr
        self._n = n + k
        self._last_t = float(t_arr[-1])

    def __getstate__(self) -> Tuple[str, np.ndarray, np.ndarray]:
        """Pickle only the live prefix of the buffers.

        The amortized-growth buffers can be up to 2x over-allocated;
        trimming (and copying, so no writable view escapes) keeps the
        serialized form — the runtime layer's process-boundary and
        on-disk cache payload — as small as the data itself.
        """
        return (self.name, self._t[: self._n].copy(), self._v[: self._n].copy())

    def __setstate__(self, state: Tuple[str, np.ndarray, np.ndarray]) -> None:
        name, t, v = state
        self.name = name
        self._t = np.ascontiguousarray(t, dtype=np.float64)
        self._v = np.ascontiguousarray(v, dtype=np.float64)
        self._n = int(self._t.shape[0])
        self._last_t = float(self._t[-1]) if self._n else float("-inf")

    def _grow(self) -> None:
        self._reserve(max(self._t.shape[0] * 2, _INITIAL_CAPACITY))

    def _reserve(self, min_capacity: int) -> None:
        """Ensure the buffers can hold at least ``min_capacity`` samples."""
        cap = self._t.shape[0]
        if cap >= min_capacity:
            return
        new_cap = max(cap, _INITIAL_CAPACITY)
        while new_cap < min_capacity:
            new_cap *= 2
        t = np.empty(new_cap, dtype=np.float64)
        v = np.empty(new_cap, dtype=np.float64)
        t[: self._n] = self._t[: self._n]
        v[: self._n] = self._v[: self._n]
        self._t, self._v = t, v

    @property
    def times(self) -> np.ndarray:
        """Sample times (seconds) as a read-only numpy view."""
        view = self._t[: self._n]
        view.flags.writeable = False
        return view

    @property
    def values(self) -> np.ndarray:
        """Sample values as a read-only numpy view."""
        view = self._v[: self._n]
        view.flags.writeable = False
        return view

    # -- summary statistics -------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of all samples (nan when empty)."""
        return float(np.mean(self.values)) if self._n else float("nan")

    def max(self) -> float:
        """Maximum sample (nan when empty)."""
        return float(np.max(self.values)) if self._n else float("nan")

    def min(self) -> float:
        """Minimum sample (nan when empty)."""
        return float(np.min(self.values)) if self._n else float("nan")

    def last(self) -> float:
        """Most recent sample (nan when empty)."""
        return float(self._v[self._n - 1]) if self._n else float("nan")

    def time_weighted_mean(self) -> float:
        """Mean weighted by the holding time of each sample.

        Each sample is assumed to hold until the next sample; the final
        sample carries the mean of the preceding intervals.  For evenly
        sampled traces this equals :meth:`mean`.  Returns nan for empty
        traces and the sole value for singleton traces.
        """
        if self._n == 0:
            return float("nan")
        if self._n == 1:
            return float(self._v[0])
        t = self.times
        v = self.values
        dt = np.diff(t)
        tail = float(np.mean(dt)) if dt.size else 0.0
        weights = np.concatenate([dt, [tail]])
        total = float(np.sum(weights))
        if total <= 0.0:
            return float(np.mean(v))
        return float(np.sum(v * weights) / total)

    def integrate(self) -> float:
        """Trapezoidal integral of value over time.

        For a power trace in watts this yields energy in joules.
        Returns 0 for traces with fewer than two samples.
        """
        if self._n < 2:
            return 0.0
        return float(np.trapezoid(self.values, self.times))

    def window(self, t0: float, t1: float) -> "Trace":
        """Sub-trace restricted to samples with ``t0 <= t <= t1``."""
        if t1 < t0:
            raise ConfigurationError(f"window bounds reversed: [{t0}, {t1}]")
        mask = (self.times >= t0) & (self.times <= t1)
        sub = Trace(self.name)
        for t, v in zip(self.times[mask], self.values[mask]):
            sub.append(float(t), float(v))
        return sub

    def resample(self, period: float) -> "Trace":
        """Downsample to one point per ``period`` via block averaging.

        Used to emulate the paper's plots (e.g. "sample points" on the x
        axis) from high-rate internal traces.
        """
        if period <= 0:
            raise ConfigurationError(f"period must be > 0, got {period!r}")
        out = Trace(self.name)
        if self._n == 0:
            return out
        t = self.times
        v = self.values
        bins = np.floor((t - t[0]) / period).astype(np.int64)
        for b in np.unique(bins):
            mask = bins == b
            out.append(float(t[0] + (b + 0.5) * period), float(np.mean(v[mask])))
        return out

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return zip(self.times.tolist(), self.values.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r}, n={self._n})"


class TraceSet:
    """A named collection of :class:`Trace` objects.

    Provides dict-like access and auto-creation, so recording code can
    simply write ``traces.record('temp', t, value)``.
    """

    def __init__(self) -> None:
        self._traces: Dict[str, Trace] = {}

    def trace(self, name: str) -> Trace:
        """Get (or create empty) the trace called ``name``.

        Lets recording code resolve the trace handle once instead of
        paying the name lookup per sample — the fastpath recording
        layer wires its block writers through this.
        """
        trace = self._traces.get(name)
        if trace is None:
            trace = Trace(name)
            self._traces[name] = trace
        return trace

    def record(self, name: str, t: float, value: float) -> None:
        """Append to the trace called ``name``, creating it on first use."""
        self.trace(name).append(t, value)

    def __getitem__(self, name: str) -> Trace:
        try:
            return self._traces[name]
        except KeyError:
            raise KeyError(
                f"no trace named {name!r}; available: {sorted(self._traces)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def __iter__(self) -> Iterator[str]:
        return iter(self._traces)

    def __len__(self) -> int:
        return len(self._traces)

    def names(self) -> list[str]:
        """Sorted list of trace names."""
        return sorted(self._traces)
