"""Discrete-time simulation substrate.

The whole reproduction runs on a fixed-step simulation loop: physics
(thermal RC networks, fan motors) integrate every step, while sensors,
controllers and workload phase logic fire on their own periods via
:class:`~repro.sim.clock.PeriodicTask` scheduling.

Public surface:

* :class:`~repro.sim.clock.SimClock` — simulation time.
* :class:`~repro.sim.clock.PeriodicTask` — fixed-period callbacks.
* :class:`~repro.sim.engine.Component` — protocol for simulated parts.
* :class:`~repro.sim.engine.SimulationEngine` — the run loop.
* :class:`~repro.sim.trace.Trace` / :class:`~repro.sim.trace.TraceSet` —
  time-series recording.
* :class:`~repro.sim.events.EventLog` — discrete event records.
* :class:`~repro.sim.rng.RngStreams` — per-component seeded randomness.
"""

from .clock import PeriodicTask, SimClock
from .engine import Component, SimulationEngine
from .events import Event, EventLog
from .rng import RngStreams
from .trace import Trace, TraceSet

__all__ = [
    "SimClock",
    "PeriodicTask",
    "Component",
    "SimulationEngine",
    "Event",
    "EventLog",
    "Trace",
    "TraceSet",
    "RngStreams",
]
