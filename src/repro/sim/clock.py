"""Simulation clock and periodic-task scheduling.

The simulation is *fixed step*: the engine advances a
:class:`SimClock` by a constant ``dt`` each tick.  Components that must
run at a coarser cadence (a 4 Hz sensor, a 1 s controller) wrap their
callback in a :class:`PeriodicTask`, which fires whenever its period has
elapsed.  Using integer tick arithmetic (not accumulated floats) keeps
firing times exact over arbitrarily long runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ConfigurationError, SimulationError
from ..units import require_positive

__all__ = ["SimClock", "PeriodicTask"]


class SimClock:
    """Fixed-step simulation clock.

    Parameters
    ----------
    dt:
        Step size in seconds.  Must be strictly positive.

    Notes
    -----
    Time is tracked as an integer tick count; :attr:`now` is derived as
    ``ticks * dt`` so that repeated stepping accumulates no floating
    point drift.
    """

    def __init__(self, dt: float = 0.05) -> None:
        self._dt = require_positive(dt, "dt")
        self._ticks = 0

    @property
    def dt(self) -> float:
        """Step size in seconds."""
        return self._dt

    @property
    def ticks(self) -> int:
        """Number of steps taken since construction (or :meth:`reset`)."""
        return self._ticks

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._ticks * self._dt

    def advance(self) -> float:
        """Advance by one step and return the new time."""
        self._ticks += 1
        return self.now

    def reset(self) -> None:
        """Rewind the clock to time zero."""
        self._ticks = 0

    def ticks_for(self, seconds: float) -> int:
        """Number of whole steps that cover ``seconds`` of simulated time.

        Rounds to the nearest tick, so ``ticks_for(1.0)`` with
        ``dt=0.25`` is exactly 4.
        """
        if seconds < 0:
            raise ConfigurationError(f"duration must be >= 0, got {seconds!r}")
        return round(seconds / self._dt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(dt={self._dt}, now={self.now:.3f}s)"


@dataclass
class PeriodicTask:
    """Invoke a callback every ``period`` seconds of simulation time.

    Parameters
    ----------
    period:
        Firing period in seconds.  Must be an (approximate) integer
        multiple of the engine step; this is validated when the task is
        bound to a clock via :meth:`bind`.
    callback:
        Called with the current simulation time whenever the task fires.
    phase:
        Offset of the first firing in seconds (default 0 fires on the
        first eligible tick *after* time zero).

    Notes
    -----
    Firing is computed from integer tick counts, so a task with a 0.25 s
    period on a 0.05 s clock fires exactly every 5 ticks, forever.
    """

    period: float
    callback: Callable[[float], None]
    phase: float = 0.0
    _period_ticks: int = field(default=0, init=False, repr=False)
    _phase_ticks: int = field(default=0, init=False, repr=False)
    _bound: bool = field(default=False, init=False, repr=False)
    fire_count: int = field(default=0, init=False)

    def bind(self, clock: SimClock) -> None:
        """Resolve the period into ticks of ``clock``.

        Raises
        ------
        ConfigurationError
            If the period is not a positive integer multiple of the
            clock step (within 1e-9 relative tolerance).
        """
        require_positive(self.period, "period")
        ratio = self.period / clock.dt
        ticks = round(ratio)
        if ticks < 1 or abs(ratio - ticks) > 1e-6 * max(1.0, ratio):
            raise ConfigurationError(
                f"period {self.period}s is not a multiple of dt {clock.dt}s"
            )
        self._period_ticks = ticks
        self._phase_ticks = round(self.phase / clock.dt)
        self._bound = True

    def maybe_fire(self, clock: SimClock) -> bool:
        """Fire the callback if the current tick is a firing tick.

        Returns ``True`` when the callback ran.

        Raises
        ------
        SimulationError
            If the task was never bound to a clock.
        """
        if not self._bound:
            raise SimulationError("PeriodicTask.maybe_fire before bind()")
        offset = clock.ticks - self._phase_ticks
        if offset >= 0 and offset % self._period_ticks == 0:
            self.callback(clock.now)
            self.fire_count += 1
            return True
        return False
