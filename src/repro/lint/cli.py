"""``repro-lint`` — command-line front end of the invariant checker.

Usage::

    repro-lint src/repro               # or: python -m repro.lint src/repro
    repro-lint --list-rules
    repro-lint --select RPR001,RPR004 src/repro
    repro-lint --no-config tests/lint_fixtures/rpr001_determinism.py
    repro-lint --format sarif src/repro > lint.sarif
    repro-lint --graph dot src/repro | dot -Tsvg > imports.svg
    repro-lint --jobs 4 src/repro

Exit status: 0 — clean; 1 — findings; 2 — usage or configuration error.

Results are cached under ``.repro-lint-cache/`` (next to the resolved
``pyproject.toml``), keyed by file content hash — warm runs re-analyse
only changed files.  ``--no-cache`` disables the cache for one run;
``--cache-dir`` relocates it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .cache import DEFAULT_CACHE_DIR, LintCache, cache_key
from .config import LintConfig, find_pyproject, load_config
from .engine import PARSE_ERROR_CODE, analyze_paths, lint_paths
from .graph.dump import dump_dot, dump_json
from .graph.program import ProgramGraph
from .rules import ALL_RULES, RULES_BY_CODE
from .sarif import render_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro simulator: "
            "determinism, unit safety and control-loop contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="explicit pyproject.toml (default: nearest one above cwd)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore pyproject.toml; run with built-in defaults",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--disable",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to switch off",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--graph",
        choices=("dot", "json"),
        default=None,
        help="dump the whole-program import/call graph and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=1,
        help="analyse files with N worker processes (default: serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash result cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR} next to "
        "pyproject.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings still print)",
    )
    return parser


def _split_codes(raw: Optional[str]) -> frozenset:
    if raw is None:
        return frozenset()
    return frozenset(code.strip() for code in raw.split(",") if code.strip())


def _build_cache(
    args: argparse.Namespace,
    config: LintConfig,
    pyproject: Optional[Path],
) -> Optional[LintCache]:
    if args.no_cache:
        return None
    if args.cache_dir is not None:
        directory = Path(args.cache_dir)
    else:
        anchor = pyproject.parent if pyproject is not None else Path.cwd()
        directory = anchor / DEFAULT_CACHE_DIR
    key = cache_key(config.digest(), sorted(RULES_BY_CODE))
    return LintCache(directory, key)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        width = max(len(cls.name) for cls in ALL_RULES)
        for cls in ALL_RULES:
            print(f"{cls.code}  {cls.name:<{width}}  {cls.description}")
        return 0

    if args.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    pyproject: Optional[Path] = None
    try:
        if args.no_config:
            config = LintConfig()
        else:
            pyproject = Path(args.config) if args.config else find_pyproject()
            config = load_config(pyproject)
    except (ValueError, OSError) as exc:
        print(f"repro-lint: configuration error: {exc}", file=sys.stderr)
        return 2

    select = _split_codes(args.select)
    disable = _split_codes(args.disable)
    known = set(RULES_BY_CODE) | {PARSE_ERROR_CODE}
    unknown = (select | disable) - known
    if unknown:
        # A typo'd code silently linting nothing is the exact failure
        # mode this tool exists to prevent — reject it loudly.
        print(
            f"repro-lint: unknown rule code(s): "
            f"{', '.join(sorted(unknown))} (see --list-rules)",
            file=sys.stderr,
        )
        return 2
    if select or disable:
        config = LintConfig(
            select=select or config.select,
            disable=config.disable | disable,
            exclude=config.exclude,
            per_file_ignores=config.per_file_ignores,
        )

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
        return 2

    cache = _build_cache(args, config, pyproject)

    if args.graph is not None:
        analyses = analyze_paths(
            paths, config=config, jobs=args.jobs, cache=cache
        )
        summaries = [a.summary for a in analyses if a.summary is not None]
        graph = ProgramGraph(summaries)
        render = dump_dot if args.graph == "dot" else dump_json
        sys.stdout.write(render(graph))
        return 0

    findings = lint_paths(paths, config=config, jobs=args.jobs, cache=cache)
    if args.format == "sarif":
        sys.stdout.write(render_sarif(findings))
        return 1 if findings else 0
    for finding in findings:
        print(finding.render())
    if not args.quiet:
        noun = "issue" if len(findings) == 1 else "issues"
        print(
            f"repro-lint: {len(findings)} {noun} found"
            if findings
            else "repro-lint: clean"
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro.lint
    sys.exit(main())
