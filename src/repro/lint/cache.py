"""Content-addressed result cache for the lint engine.

One JSON document under ``.repro-lint-cache/`` holds, per analysed
file, the per-file findings, the :class:`ModuleSummary` the graph rules
consume and the parsed suppression directives — keyed by the sha256 of
the file's bytes.  A warm run therefore re-parses only files whose
bytes changed; the whole-program graph is rebuilt from cached summaries
in microseconds.

Validity is all-or-nothing per entry and global per store:

* an entry is a hit only when the stored sha matches the current bytes;
* the whole store is discarded when the cache schema version, the
  registered rule set, the resolved configuration digest or the working
  directory (display paths are cwd-relative) differ from the run that
  wrote it.

Writes are atomic (``tmp`` + ``os.replace``) so a crashed or
interrupted run can never leave a torn cache; a corrupt or unreadable
cache degrades to a cold run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .base import Finding
from .graph.summary import ModuleSummary
from .suppressions import Suppressions

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "FileAnalysis",
    "LintCache",
    "cache_key",
]

#: Bump when the entry schema or any rule's semantics change.
CACHE_VERSION = 1

#: Default cache directory name, created next to ``pyproject.toml``/cwd.
DEFAULT_CACHE_DIR = ".repro-lint-cache"


@dataclass
class FileAnalysis:
    """Everything one file contributes to a lint run.

    ``summary``/``suppressions`` are ``None`` for files that failed to
    read or parse (their ``findings`` then carry the ``RPR000``
    diagnostic).
    """

    display: str
    findings: List[Finding] = field(default_factory=list)
    summary: Optional[ModuleSummary] = None
    suppressions: Optional[Suppressions] = None

    def to_json(self) -> dict:
        return {
            "display": self.display,
            "findings": [
                [f.path, f.line, f.col, f.code, f.message]
                for f in self.findings
            ],
            "summary": self.summary.to_json() if self.summary else None,
            "suppressions": (
                self.suppressions.to_json() if self.suppressions else None
            ),
        }

    @staticmethod
    def from_json(raw: dict) -> "FileAnalysis":
        return FileAnalysis(
            display=raw["display"],
            findings=[
                Finding(path=p, line=ln, col=c, code=code, message=m)
                for p, ln, c, code, m in raw["findings"]
            ],
            summary=(
                ModuleSummary.from_json(raw["summary"])
                if raw["summary"] is not None
                else None
            ),
            suppressions=(
                Suppressions.from_json(raw["suppressions"])
                if raw["suppressions"] is not None
                else None
            ),
        )


def cache_key(config_digest: str, rule_codes: List[str]) -> str:
    """Global validity fingerprint: schema + rule set + configuration."""
    blob = f"v{CACHE_VERSION}|{','.join(sorted(rule_codes))}|{config_digest}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class LintCache:
    """The on-disk store. One instance per lint run."""

    def __init__(self, directory: Path, key: str) -> None:
        self.directory = directory
        self.key = key
        self.path = directory / "cache.json"
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("key") != self.key:
            return
        if raw.get("cwd") != Path.cwd().as_posix():
            return
        entries = raw.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, display: str, sha: str) -> Optional[FileAnalysis]:
        """Cached analysis for ``display`` at content ``sha``, if valid."""
        entry = self._entries.get(display)
        if entry is None or entry.get("sha") != sha:
            self.misses += 1
            return None
        try:
            analysis = FileAnalysis.from_json(entry["analysis"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return analysis

    def put(self, display: str, sha: str, analysis: FileAnalysis) -> None:
        self._entries[display] = {"sha": sha, "analysis": analysis.to_json()}
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the store (no-op when nothing changed)."""
        if not self._dirty:
            return
        document = {
            "key": self.key,
            "cwd": Path.cwd().as_posix(),
            "files": self._entries,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(f".cache.{os.getpid()}.tmp")
            tmp.write_text(
                json.dumps(document, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, self.path)
        except OSError:
            return  # caching is best-effort; never fail the lint run
        self._dirty = False
