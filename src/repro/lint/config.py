"""Configuration for ``repro.lint``.

Configuration lives in ``pyproject.toml`` under ``[tool.repro-lint]``::

    [tool.repro-lint]
    exclude = ["tests/lint_fixtures/*", "*.egg-info/*"]
    disable = []                # codes switched off everywhere
    select  = []                # when non-empty: ONLY these codes run

    [tool.repro-lint.per-file-ignores]
    "sim/rng.py" = ["RPR001"]   # globs match path suffixes too

``tomllib`` ships with Python 3.11+; on 3.10 (where neither ``tomllib``
nor third-party ``tomli`` may be importable) the loader degrades to the
built-in defaults with a warning instead of failing — the defaults
already carry the repository's essential exemptions so lint results
stay identical across interpreter versions.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from .base import CODE_PATTERN

__all__ = [
    "LintConfig",
    "DEFAULT_PER_FILE_IGNORES",
    "DEFAULT_EXCLUDE",
    "find_pyproject",
    "load_config",
]

#: Exemptions that hold regardless of ``pyproject.toml`` availability.
#: ``sim/rng.py`` is the one sanctioned home of seedless entropy.
DEFAULT_PER_FILE_IGNORES: Mapping[str, FrozenSet[str]] = {
    "sim/rng.py": frozenset({"RPR001"}),
}

#: Directory/file globs never walked when linting directories.
DEFAULT_EXCLUDE: Tuple[str, ...] = (
    "__pycache__/*",
    "*.egg-info/*",
    ".git/*",
    ".repro-lint-cache/*",
)


def _match(path: Path, pattern: str) -> bool:
    """Glob-match ``pattern`` against ``path`` or any suffix of it.

    ``"sim/rng.py"`` matches ``src/repro/sim/rng.py``; absolute patterns
    still match absolutely.  Backslash separators (Windows-style paths,
    or strings that arrived pre-joined) are normalised to ``/`` so the
    same glob table works on every platform.
    """
    posix = path.as_posix().replace("\\", "/")
    return fnmatch(posix, pattern) or fnmatch(posix, "*/" + pattern)


@dataclass(frozen=True)
class LintConfig:
    """Immutable, resolved lint configuration."""

    select: FrozenSet[str] = frozenset()
    disable: FrozenSet[str] = frozenset()
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE
    per_file_ignores: Mapping[str, FrozenSet[str]] = field(
        default_factory=lambda: dict(DEFAULT_PER_FILE_IGNORES)
    )

    def rule_enabled(self, code: str) -> bool:
        """Is ``code`` globally enabled by select/disable?"""
        if self.select and code not in self.select:
            return False
        return code not in self.disable

    def is_excluded(self, path: Path) -> bool:
        """Should ``path`` be skipped during directory discovery?"""
        return any(_match(path, pattern) for pattern in self.exclude)

    def ignored_codes(self, path: Path) -> FrozenSet[str]:
        """Union of per-file-ignore codes whose glob matches ``path``."""
        codes: set = set()
        for pattern, pattern_codes in self.per_file_ignores.items():
            if _match(path, pattern):
                codes |= pattern_codes
        return frozenset(codes)

    def is_ignored(self, path: Path, code: str) -> bool:
        """True when ``code`` findings in ``path`` are configured away."""
        ignored = self.ignored_codes(path)
        return "all" in ignored or code in ignored

    def digest(self) -> str:
        """Stable fingerprint of everything that affects lint results.

        Cached per-file findings are only valid under the configuration
        that produced them; the engine's result cache keys on this.
        """
        parts = [
            "select=" + ",".join(sorted(self.select)),
            "disable=" + ",".join(sorted(self.disable)),
            "exclude=" + ",".join(self.exclude),
            "per_file_ignores="
            + ";".join(
                f"{glob}:{','.join(sorted(codes))}"
                for glob, codes in sorted(self.per_file_ignores.items())
            ),
        ]
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def find_pyproject(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start`` (default: cwd)."""
    here = (start or Path.cwd()).resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _load_toml(path: Path) -> Mapping[str, object]:
    try:
        import tomllib
    except ImportError:  # Python 3.10 without tomli
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            print(
                f"repro-lint: warning: no TOML parser available on "
                f"{sys.version.split()[0]}; ignoring {path} and using "
                f"built-in defaults",
                file=sys.stderr,
            )
            return {}
    with path.open("rb") as handle:
        return tomllib.load(handle)


def _as_code_set(raw: object, where: str) -> FrozenSet[str]:
    if not isinstance(raw, (list, tuple)) or not all(
        isinstance(item, str) for item in raw
    ):
        raise ValueError(f"[tool.repro-lint] {where} must be a list of strings")
    # A typo'd code ("RPR1", "rpr001") silently matching nothing is the
    # failure mode this linter exists to prevent — reject the shape here
    # (the CLI separately rejects well-shaped but unregistered codes).
    bad = sorted(
        item
        for item in raw
        if item != "all" and not CODE_PATTERN.match(item)
    )
    if bad:
        raise ValueError(
            f"[tool.repro-lint] {where} contains invalid rule code(s): "
            f"{', '.join(bad)} (expected RPRnnn or 'all')"
        )
    return frozenset(raw)


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``pyproject`` (or defaults).

    Unknown keys are rejected loudly — a typo like ``per_file_ignores``
    silently doing nothing is exactly the failure mode this linter
    exists to prevent.
    """
    if pyproject is None:
        return LintConfig()
    data = _load_toml(pyproject)
    tool = data.get("tool", {})
    section = tool.get("repro-lint", {}) if isinstance(tool, Mapping) else {}
    if not isinstance(section, Mapping):
        raise ValueError("[tool.repro-lint] must be a TOML table")

    known = {"select", "disable", "ignore", "exclude", "per-file-ignores"}
    unknown = set(section) - known
    if unknown:
        raise ValueError(
            f"[tool.repro-lint] unknown keys: {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )

    select = _as_code_set(section.get("select", ()), "select")
    # "disable" and ruff-style "ignore" are synonyms.
    disable = _as_code_set(section.get("disable", ()), "disable") | _as_code_set(
        section.get("ignore", ()), "ignore"
    )
    exclude_raw = section.get("exclude", ())
    if not isinstance(exclude_raw, (list, tuple)) or not all(
        isinstance(item, str) for item in exclude_raw
    ):
        raise ValueError("[tool.repro-lint] exclude must be a list of strings")
    exclude = tuple(DEFAULT_EXCLUDE) + tuple(exclude_raw)

    pfi_raw = section.get("per-file-ignores", {})
    if not isinstance(pfi_raw, Mapping):
        raise ValueError("[tool.repro-lint] per-file-ignores must be a table")
    per_file: Dict[str, FrozenSet[str]] = {
        glob: codes for glob, codes in DEFAULT_PER_FILE_IGNORES.items()
    }
    for glob, codes in pfi_raw.items():
        per_file[str(glob)] = _as_code_set(codes, f'per-file-ignores."{glob}"')

    return LintConfig(
        select=select,
        disable=disable,
        exclude=exclude,
        per_file_ignores=per_file,
    )
