"""``repro.lint`` — AST-based invariant checker for the simulator.

The reproduction's credibility rests on two machine-checkable promises:
a run is a pure function of ``(platform, seed)`` (see
:mod:`repro.sim.rng`) and every quantity crossing a module boundary is
in the canonical units of :mod:`repro.units`.  This package enforces
them — plus the control-loop contracts that keep governor comparisons
honest — as a stdlib-only static analysis pass:

=======  ===========================  =======================================
code     name                         enforces
=======  ===========================  =======================================
RPR001   determinism                  no wall clock / stdlib random /
                                      seedless numpy RNG outside sim/rng.py
RPR002   unit-boundary                duty literals are fractions, ``*_hz``
                                      literals are hertz
RPR003   governor-purity              governors never write attributes on
                                      received plant objects
RPR004   all-consistency              ``__all__`` is complete and truthful
RPR005   hygiene                      no ``import *`` / mutable defaults
RPR006   experiment-reproducibility   experiment ``run()`` threads ``seed``
=======  ===========================  =======================================

Run it with ``repro-lint src/repro``, ``python -m repro.lint src/repro``
or ``python -m repro lint``; configure it under ``[tool.repro-lint]``
in ``pyproject.toml``; silence single lines with
``# repro-lint: disable=RPRxxx``.  See ``docs/static_analysis.md``.
"""

from __future__ import annotations

from .base import Finding, GraphRule, Rule, RuleContext
from .cache import FileAnalysis, LintCache, cache_key
from .cli import main
from .config import LintConfig, find_pyproject, load_config
from .engine import (
    PARSE_ERROR_CODE,
    analyze_paths,
    iter_python_files,
    lint_file,
    lint_paths,
)
from .rules import ALL_RULES, RULES_BY_CODE, make_rules
from .sarif import render_sarif
from .suppressions import Suppressions, scan_suppressions

__all__ = [
    "Finding",
    "Rule",
    "GraphRule",
    "RuleContext",
    "LintConfig",
    "find_pyproject",
    "load_config",
    "lint_file",
    "lint_paths",
    "analyze_paths",
    "iter_python_files",
    "PARSE_ERROR_CODE",
    "ALL_RULES",
    "RULES_BY_CODE",
    "make_rules",
    "FileAnalysis",
    "LintCache",
    "cache_key",
    "render_sarif",
    "Suppressions",
    "scan_suppressions",
    "main",
]
