"""RPR008 — telemetry and serving code is clock-disciplined.

The telemetry subsystem's determinism contract (``docs/observability.md``)
is that every sim-side record is a pure function of ``(spec, seed)`` —
two identical runs must export **byte-identical** JSONL.  RPR001 already
bans ``time.time`` everywhere, but it deliberately tolerates
``perf_counter``/``monotonic`` for harmless wall-time *reporting*.
Inside ``telemetry/`` that tolerance is wrong: any clock read that leaks
into an emitted record silently breaks byte-identity, and there is no
legitimate reporting use either — wall-time metrics belong to the
executor layer (:mod:`repro.runtime.executor`), which publishes them
under the reserved ``host.*`` namespace.

So this rule is blunt by design: within any ``telemetry/`` directory,
*importing* ``time`` or ``datetime`` (or any submodule/name from them)
is a finding.  Every timestamp a telemetry module handles must arrive
as a caller-supplied simulation-clock value.

The serving layer (``docs/serving.md``) extends the same discipline
with one explicit exemption: within any ``serve/`` directory the same
imports are findings **except** in the sanctioned clock shim module
(``clockshim.py``), which is the single seam every host-clock read of
the request path flows through.  A served result summary must be
byte-identical to a local ``repro run`` of the same spec; funnelling
the serving layer's clocks through one exempted file keeps "could a
timestamp leak into a response body?" answerable by inspection.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Finding, Rule, RuleContext

__all__ = ["TelemetryClockRule"]

#: Modules whose import (or from-import) is banned in clock-disciplined code.
_BANNED_MODULES = frozenset({"time", "datetime"})

#: The one module under ``serve/`` allowed to import the banned modules.
_SERVE_CLOCK_SHIM = "clockshim"


class TelemetryClockRule(Rule):
    """telemetry/ and serve/ modules must not import time/datetime."""

    code = "RPR008"
    name = "telemetry-clock"
    description = (
        "telemetry/ and serve/ modules are clock-disciplined: no 'time' or "
        "'datetime' imports (wall time lives in runtime/executor host.* "
        "metrics; the serving layer's one seam is serve/clockshim.py)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if ctx.path_has_part("telemetry"):
            where = "telemetry"
        elif ctx.path_has_part("serve") and ctx.path.stem != _SERVE_CLOCK_SHIM:
            where = "serve"
        else:
            return
        hint = (
            "sim-side records must use caller-supplied sim time (wall time "
            "is host.*-only, in runtime/executor)"
            if where == "telemetry"
            else "serving code must read host clocks through the sanctioned "
            "serve/clockshim.py seam only"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} in {where} code: "
                            f"{hint}",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level != 0 or node.module is None:
                    continue
                root = node.module.split(".")[0]
                if root in _BANNED_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"from-import of {node.module!r} in {where} code: "
                        f"{hint}",
                    )
