"""RPR008 — telemetry is sim-clock only: no wall-clock access at all.

The telemetry subsystem's determinism contract (``docs/observability.md``)
is that every sim-side record is a pure function of ``(spec, seed)`` —
two identical runs must export **byte-identical** JSONL.  RPR001 already
bans ``time.time`` everywhere, but it deliberately tolerates
``perf_counter``/``monotonic`` for harmless wall-time *reporting*.
Inside ``telemetry/`` that tolerance is wrong: any clock read that leaks
into an emitted record silently breaks byte-identity, and there is no
legitimate reporting use either — wall-time metrics belong to the
executor layer (:mod:`repro.runtime.executor`), which publishes them
under the reserved ``host.*`` namespace.

So this rule is blunt by design: within any ``telemetry/`` directory,
*importing* ``time`` or ``datetime`` (or any submodule/name from them)
is a finding.  Every timestamp a telemetry module handles must arrive
as a caller-supplied simulation-clock value.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Finding, Rule, RuleContext

__all__ = ["TelemetryClockRule"]

#: Modules whose import (or from-import) is banned in telemetry code.
_BANNED_MODULES = frozenset({"time", "datetime"})


class TelemetryClockRule(Rule):
    """Telemetry modules must not import time/datetime at all."""

    code = "RPR008"
    name = "telemetry-clock"
    description = (
        "telemetry/ modules are sim-clock only: no 'time' or 'datetime' "
        "imports (wall time lives in runtime/executor host.* metrics)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.path_has_part("telemetry"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} in telemetry code: "
                            "sim-side records must use caller-supplied sim "
                            "time (wall time is host.*-only, in "
                            "runtime/executor)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level != 0 or node.module is None:
                    continue
                root = node.module.split(".")[0]
                if root in _BANNED_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"from-import of {node.module!r} in telemetry code: "
                        "sim-side records must use caller-supplied sim time "
                        "(wall time is host.*-only, in runtime/executor)",
                    )
