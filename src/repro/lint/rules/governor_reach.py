"""RPR012 — governor purity holds across the whole call graph.

RPR003 bans a governor from writing attributes on objects it receives,
but only looks inside ``governors/`` files.  The loophole is a wrapper:
the governor hands its sensor package to a helper in another module and
the helper does the mutation.  Comparable-governor guarantees (the
point of the governor zoo) die the moment that compiles.

This rule closes the loophole with reachability: starting from every
function defined in a ``governors`` module, walk the call graph and
flag any *reached* function — wherever it lives — that performs an
RPR003-style attribute write rooted at one of its own parameters.
Functions inside ``governors`` modules are skipped here because RPR003
already owns them; ``self``/``cls`` roots are never flagged (mutating
your own object is fine).

Like every graph rule this is conservative: helpers reached through
opaque call shapes escape, helpers that mutate locally-constructed
objects passed onward do not trip it.  Presence of an edge plus a
parameter write is always a genuine purity leak.
"""

from __future__ import annotations

from typing import Iterator, List

from ..base import Finding, GraphRule
from ..graph.program import Node, ProgramGraph

__all__ = ["GovernorReachRule"]


class GovernorReachRule(GraphRule):
    """Helpers reachable from governors must not mutate their arguments."""

    code = "RPR012"
    name = "governor-reach-purity"
    description = (
        "functions reachable from governor code must not write "
        "attributes on their parameters (closes the RPR003 wrapper "
        "loophole)"
    )

    def check_program(self, graph: ProgramGraph) -> Iterator[Finding]:
        roots: List[Node] = []
        governor_keys = set()
        for summary in graph.summaries:
            if summary.component != "governors":
                continue
            key = summary.module or summary.path
            governor_keys.add(key)
            roots.extend((key, fn.qname) for fn in summary.functions)
        if not roots:
            return
        parents = graph.reachable(roots)
        findings: List[Finding] = []
        for node in sorted(parents):
            if node[0] in governor_keys:  # RPR003's jurisdiction
                continue
            fn = graph.functions.get(node)
            if fn is None or not fn.param_writes:
                continue
            summary = graph.modules.get(node[0]) or graph.by_path.get(node[0])
            if summary is None:
                continue
            chain = graph.call_chain(parents, node)
            rendered = " -> ".join(f"{m}:{q}" for m, q in chain)
            for line, col, param, target in fn.param_writes:
                findings.append(
                    self.graph_finding(
                        summary.path,
                        line,
                        col,
                        f"'{fn.qname}' writes '{target}' on its parameter "
                        f"'{param}' and is reachable from governor code via "
                        f"{rendered}; governors must stay pure through "
                        "every helper they call",
                    )
                )
        yield from sorted(findings)
