"""Rule registry.

Each module under this package contributes one :class:`~repro.lint.base.Rule`
subclass; :data:`ALL_RULES` is the ordered plugin table the engine and
CLI iterate.  Adding a check means adding a module here and one line to
the registry — nothing else in the linter changes.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..base import Rule
from .allocation import HotpathAllocationRule
from .determinism import DeterminismRule
from .exports import ExportsRule
from .fleet_isolation import FleetIsolationRule
from .governor_purity import GovernorPurityRule
from .governor_reach import GovernorReachRule
from .hotpath_transitive import HotpathTransitiveRule
from .hygiene import HygieneRule
from .layering import LayeringRule
from .reproducibility import ReproducibilityRule
from .runtime_boundary import RuntimeBoundaryRule
from .telemetry_clock import TelemetryClockRule
from .unit_safety import UnitSafetyRule
from .worker_state import WorkerStateRule

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "make_rules",
    "DeterminismRule",
    "UnitSafetyRule",
    "GovernorPurityRule",
    "ExportsRule",
    "HygieneRule",
    "ReproducibilityRule",
    "RuntimeBoundaryRule",
    "TelemetryClockRule",
    "HotpathAllocationRule",
    "HotpathTransitiveRule",
    "LayeringRule",
    "GovernorReachRule",
    "WorkerStateRule",
    "FleetIsolationRule",
]

#: Ordered rule plugin table (report order follows registration order).
ALL_RULES: List[Type[Rule]] = [
    DeterminismRule,
    UnitSafetyRule,
    GovernorPurityRule,
    ExportsRule,
    HygieneRule,
    ReproducibilityRule,
    RuntimeBoundaryRule,
    TelemetryClockRule,
    HotpathAllocationRule,
    HotpathTransitiveRule,
    LayeringRule,
    GovernorReachRule,
    WorkerStateRule,
    FleetIsolationRule,
]

#: Code → rule class lookup.
RULES_BY_CODE: Dict[str, Type[Rule]] = {cls.code: cls for cls in ALL_RULES}

if len(RULES_BY_CODE) != len(ALL_RULES):  # pragma: no cover - registry bug
    raise RuntimeError("duplicate rule codes in repro.lint.rules registry")


def make_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in ALL_RULES]
