"""RPR004 — ``__all__`` is the module's public contract, kept honest.

Two directions are checked for any module that declares ``__all__``:

* **no phantoms** — every string in ``__all__`` must be bound at module
  level (def/class/assignment/import), otherwise ``from m import *``
  and re-export chains raise at a distance from the typo;
* **no leaks** — every underscore-free name *defined* at module level
  (functions, classes, assignments — imports are exempt, they are
  implementation plumbing by convention) must appear in ``__all__``,
  so the public surface cannot drift silently.

Bindings inside top-level ``if``/``try`` blocks (version fallbacks,
``TYPE_CHECKING``) count as module-level.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from ..base import Finding, Rule, RuleContext

__all__ = ["ExportsRule"]


def _binding_names(target: ast.expr) -> Iterable[str]:
    """Names bound by one assignment target (handles tuple unpacking)."""
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            yield node.id


def _collect(
    body: Iterable[ast.stmt],
    defined: Set[str],
    imported: Set[str],
    assigns: List[Tuple[str, ast.stmt]],
) -> None:
    """Collect module-level bindings, descending into if/try/with blocks."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
            assigns.append((node.name, node))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                imported.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    imported.add(alias.asname or alias.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for name in _binding_names(target):
                    defined.add(name)
                    assigns.append((name, node))
        elif isinstance(node, ast.If):
            _collect(node.body, defined, imported, assigns)
            _collect(node.orelse, defined, imported, assigns)
        elif isinstance(node, ast.Try):
            _collect(node.body, defined, imported, assigns)
            for handler in node.handlers:
                _collect(handler.body, defined, imported, assigns)
            _collect(node.orelse, defined, imported, assigns)
            _collect(node.finalbody, defined, imported, assigns)
        elif isinstance(node, ast.With):
            _collect(node.body, defined, imported, assigns)


def _find_all(tree: ast.Module) -> Optional[Tuple[ast.stmt, List[str]]]:
    """The module's ``__all__`` statement and its string entries, if any."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(el, ast.Constant) and isinstance(el.value, str)
            for el in value.elts
        ):
            return node, [el.value for el in value.elts]
        return node, []
    return None


class ExportsRule(Rule):
    """``__all__`` entries must exist; public definitions must be listed."""

    code = "RPR004"
    name = "all-consistency"
    description = (
        "__all__ names must be defined, and public module-level definitions "
        "must be listed in __all__"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        found = _find_all(ctx.tree)
        if found is None:
            return
        all_node, exported = found

        defined: Set[str] = set()
        imported: Set[str] = set()
        assigns: List[Tuple[str, ast.stmt]] = []
        _collect(ctx.tree.body, defined, imported, assigns)

        findings: List[Finding] = []
        bound = defined | imported
        for name in exported:
            if name not in bound:
                findings.append(
                    self.finding(
                        ctx,
                        all_node,
                        f"__all__ lists '{name}' which is not defined or "
                        "imported at module level",
                    )
                )

        listed = set(exported)
        seen: Set[str] = set()
        for name, node in assigns:
            if (
                name.startswith("_")
                or name in listed
                or name in seen
                or name in imported
            ):
                continue
            seen.add(name)
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"public name '{name}' is defined but missing from "
                    "__all__ (export it or prefix with '_')",
                )
            )
        yield from sorted(findings)
