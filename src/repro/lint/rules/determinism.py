"""RPR001 — a run must be a pure function of (platform, seed).

Any ambient-entropy source reachable from the simulator would silently
decalibrate every figure the benchmarks reproduce, so this rule bans:

* wall-clock reads: ``time.time`` / ``time.time_ns`` (monotonic and
  ``perf_counter`` reads are fine — they may only ever feed *reporting*,
  and banning them would outlaw harmless wall-time printouts);
* ``datetime.datetime.now/utcnow/today`` and ``datetime.date.today``;
* the stdlib ``random`` module in its entirety (import or call) — all
  simulator noise must come from :class:`repro.sim.rng.RngStreams`;
* seedless ``numpy.random.default_rng()`` (and the legacy global
  ``numpy.random.seed`` / ``numpy.random.<dist>`` calls), which pull
  entropy from the OS.

``sim/rng.py`` is exempted via the default per-file ignores — it is the
single sanctioned place where named deterministic streams are built.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..base import Finding, Rule, RuleContext, dotted_name

__all__ = ["DeterminismRule"]

_BANNED_CALLS = {
    "time.time": "wall-clock read breaks determinism; thread sim time instead",
    "time.time_ns": "wall-clock read breaks determinism; thread sim time instead",
    "datetime.datetime.now": "ambient timestamp breaks determinism",
    "datetime.datetime.utcnow": "ambient timestamp breaks determinism",
    "datetime.datetime.today": "ambient timestamp breaks determinism",
    "datetime.date.today": "ambient timestamp breaks determinism",
}


class DeterminismRule(Rule):
    """Ban ambient entropy (wall clock, stdlib random, seedless numpy RNG)."""

    code = "RPR001"
    name = "determinism"
    description = (
        "no time.time/datetime.now/stdlib random/seedless np.random.default_rng;"
        " all noise flows from sim/rng.py"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        # alias -> canonical dotted module ("np" -> "numpy")
        module_aliases: Dict[str, str] = {}
        # local name -> "module.attr" it was imported from
        from_imports: Dict[str, str] = {}
        findings = []

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "stdlib 'random' is banned; draw from a named "
                                "RngStreams stream (sim/rng.py)",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "stdlib 'random' is banned; draw from a named "
                            "RngStreams stream (sim/rng.py)",
                        )
                    )
                if node.module is not None and node.level == 0:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        from_imports[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = self._canonical(node.func, module_aliases, from_imports)
            if not dotted:
                continue
            if dotted in _BANNED_CALLS:
                findings.append(
                    self.finding(ctx, node, f"{dotted}(): {_BANNED_CALLS[dotted]}")
                )
            elif dotted.startswith("random."):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{dotted}(): stdlib 'random' is banned; draw from a "
                        "named RngStreams stream (sim/rng.py)",
                    )
                )
            elif dotted == "numpy.random.default_rng" and not (
                node.args or node.keywords
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "seedless np.random.default_rng() pulls OS entropy; "
                        "pass a seed or use RngStreams.stream()",
                    )
                )
            elif dotted == "numpy.random.seed" or (
                dotted.startswith("numpy.random.")
                and dotted.count(".") == 2
                and dotted.rsplit(".", 1)[1]
                not in {"default_rng", "Generator", "SeedSequence", "PCG64"}
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"legacy global numpy RNG call {dotted}() is "
                        "process-global state; use RngStreams.stream()",
                    )
                )

        yield from sorted(findings)

    @staticmethod
    def _canonical(
        func: ast.expr,
        module_aliases: Dict[str, str],
        from_imports: Dict[str, str],
    ) -> str:
        """Resolve a call target to a canonical dotted name.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when
        ``np`` aliases numpy; ``default_rng`` -> its ``from``-import
        origin; unknown roots resolve to their literal spelling.
        """
        dotted = dotted_name(func)
        if not dotted:
            return ""
        root, _, rest = dotted.partition(".")
        if root in from_imports:
            origin = from_imports[root]
            return f"{origin}.{rest}" if rest else origin
        if root in module_aliases:
            canonical_root = module_aliases[root]
            return f"{canonical_root}.{rest}" if rest else canonical_root
        return dotted
