"""RPR003 — governors actuate, they do not reach into the plant.

A governor (``src/repro/governors/``) receives sensor samples and
handles to actuation APIs (fan driver, DVFS ladder).  The control-loop
contract is that it influences the plant *only* through those APIs —
method calls like ``driver.set_duty(...)``.  Directly assigning
attributes on objects it was handed (``package.die_temperature = 40``,
``sensor.value = ...``) would bypass quantization, event logging and
physics, and makes controller comparisons meaningless.

Concretely: inside any function defined in a governors module, an
assignment whose target is an attribute rooted at a *parameter* of that
function (other than ``self``/``cls``) is flagged.  Attributes on
``self`` and on locally-constructed objects remain fair game.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..base import Finding, Rule, RuleContext, function_params

__all__ = ["GovernorPurityRule"]


def _attribute_root(node: ast.expr) -> str:
    """Name at the base of an attribute/subscript chain (else ``""``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


class GovernorPurityRule(Rule):
    """Governors must not write attributes on objects they receive."""

    code = "RPR003"
    name = "governor-purity"
    description = (
        "governors may only actuate through APIs; no attribute writes on "
        "received sensor/thermal/plant objects"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.path_has_part("governors"):
            return
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(ctx, node))
        yield from sorted(findings)

    def _check_function(
        self, ctx: RuleContext, func: ast.FunctionDef
    ) -> List[Finding]:
        params: Set[str] = set(function_params(func))
        params.discard("self")
        params.discard("cls")
        if not params:
            return []
        findings: List[Finding] = []
        for node in ast.walk(func):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                # Tuple/starred unpacking can hide attribute targets too;
                # only Store-context attributes are writes (the inner
                # `a.b` of `a.b.c = x` is a Load).
                for leaf in ast.walk(target):
                    if not isinstance(leaf, ast.Attribute) or not isinstance(
                        leaf.ctx, ast.Store
                    ):
                        continue
                    root = _attribute_root(leaf)
                    if root in params:
                        findings.append(
                            self.finding(
                                ctx,
                                leaf,
                                f"governor writes '{ast.unparse(leaf)}' on "
                                f"received object '{root}'; actuate through "
                                "its API instead",
                            )
                        )
        return findings
