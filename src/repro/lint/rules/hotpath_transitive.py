"""RPR010 — the hot-path allocation ban propagates through calls.

RPR009 bans per-tick allocation *inside* functions marked ``@hotpath``,
but a fused step that calls ``self._refresh(dt)`` has merely moved the
allocation one frame down the stack — the cost per tick is identical
and the per-file rule is blind to it.  This rule walks the program call
graph from every ``@hotpath`` root and holds each *reachable* helper to
the same allocation bans.

Two sanctioned stops keep the rule honest about cold paths:

* functions marked ``@coldpath`` (:mod:`repro.fastpath.marker`) are the
  explicit contract that a callee runs rarely (divergence bailouts,
  telemetry flushes) — reachability does not propagate through them;
* raise-only helpers (every statement a ``raise``) are cold by
  construction and exempt, matching the ``_raise_diverged`` idiom
  RPR009's docs point at.

The call graph is conservative: calls through closure-bound locals are
opaque, so this rule under-approximates (documented in
``docs/static_analysis.md``).  What it *does* flag is real.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from ..base import Finding, GraphRule
from ..graph.program import Node, ProgramGraph

__all__ = ["HotpathTransitiveRule"]


class HotpathTransitiveRule(GraphRule):
    """Helpers reachable from ``@hotpath`` code must not allocate."""

    code = "RPR010"
    name = "hotpath-transitive-allocation"
    description = (
        "functions reachable from @hotpath code inherit the RPR009 "
        "allocation bans; mark genuinely cold callees @coldpath"
    )

    def check_program(self, graph: ProgramGraph) -> Iterator[Finding]:
        roots: List[Node] = [
            node
            for node, fn in graph.functions.items()
            if fn.is_hotpath and not fn.is_coldpath
        ]
        if not roots:
            return
        stop: Set[Node] = {
            node
            for node, fn in graph.functions.items()
            if fn.is_coldpath or fn.raises_only
        }
        parents = graph.reachable(roots, stop=stop)
        findings: List[Finding] = []
        for node in sorted(parents):
            fn = graph.functions.get(node)
            if fn is None:
                continue
            if fn.is_hotpath:  # roots are RPR009's job
                continue
            if fn.is_coldpath or fn.raises_only:
                continue
            if not fn.allocations:
                continue
            summary = graph.modules.get(node[0]) or graph.by_path.get(node[0])
            if summary is None:
                continue
            chain = graph.call_chain(parents, node)
            rendered = " -> ".join(f"{m}:{q}" for m, q in chain)
            for line, col, label in fn.allocations:
                findings.append(
                    self.graph_finding(
                        summary.path,
                        line,
                        col,
                        f"{label} in '{fn.qname}', reachable from @hotpath "
                        f"via {rendered}; hoist it to compile time or mark "
                        "the callee @coldpath if it is genuinely cold",
                    )
                )
        yield from sorted(findings)
