"""RPR013 — no mutable module globals in the worker entrypoint's closure.

The runtime layer fans :func:`repro.runtime.execute.execute_spec` out
across ``ProcessPoolExecutor`` workers.  Each worker re-imports the
module tree from scratch, so any *mutable* module-level global a worker
can see is a fork in determinism waiting to happen: mutate it in the
parent before fan-out (or in one worker mid-run) and identical RunSpecs
stop producing identical artifacts, silently invalidating the result
cache's content-address.

The rule computes the worker's world: every module containing a
function call-reachable from an ``execute_spec`` root, expanded through
the *import closure* (eager **and** lazy imports — a lazy import still
executes inside the worker; parent packages too, since importing
``a.b.c`` runs ``a`` and ``a.b``).  Any module-level binding of a
mutable container (``dict``/``list``/``set`` displays or constructors,
``bytearray``, ``collections`` mutables) in that world is a finding.

The fix is to freeze: ``tuple`` for sequences,
``types.MappingProxyType`` for registries, ``frozenset`` for sets.
Dunder bindings (``__all__``) are exempt by convention.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from ..base import Finding, GraphRule
from ..graph.program import Node, ProgramGraph

__all__ = ["WorkerStateRule"]


class WorkerStateRule(GraphRule):
    """Worker-visible module state must be frozen."""

    code = "RPR013"
    name = "worker-state-safety"
    description = (
        "mutable module-level globals importable from the execute_spec "
        "worker entrypoint must be frozen (tuple / MappingProxyType / "
        "frozenset) to keep process fan-out deterministic"
    )

    #: Top-level function names treated as worker entrypoints.
    ROOT_FUNCTIONS: Tuple[str, ...] = ("execute_spec",)

    def check_program(self, graph: ProgramGraph) -> Iterator[Finding]:
        roots: List[Node] = []
        root_modules: List[str] = []
        for summary in graph.summaries:
            key = summary.module or summary.path
            for fn in summary.functions:
                if fn.qname in self.ROOT_FUNCTIONS:
                    roots.append((key, fn.qname))
                    root_modules.append(key)
        if not roots:
            return
        # The worker's world: modules of call-reachable functions,
        # closed over eager + lazy imports and parent packages.
        parents = graph.reachable(roots)
        seeds: Set[str] = set(root_modules)
        seeds.update(node[0] for node in parents)
        world = graph.import_closure(sorted(seeds), kinds=("top", "lazy"))
        world.update(seeds)  # anonymous (path-keyed) modules stay in
        entry = ", ".join(
            sorted({f"{m}:{q}" for m, q in roots})
        )
        findings: List[Finding] = []
        for key in sorted(world):
            summary = graph.modules.get(key) or graph.by_path.get(key)
            if summary is None:
                continue
            for line, col, name, label in summary.mutable_globals:
                findings.append(
                    self.graph_finding(
                        summary.path,
                        line,
                        col,
                        f"mutable module-level global '{name}' ({label}) "
                        f"is importable from worker entrypoint {entry}; "
                        "freeze it (tuple / types.MappingProxyType / "
                        "frozenset) so process fan-out stays deterministic",
                    )
                )
        yield from sorted(findings)
