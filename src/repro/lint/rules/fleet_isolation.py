"""RPR014 — fleet shard isolation.

The fleet engine's determinism gate (``docs/fleet.md``) rests on two
structural properties of everything under a ``fleet/`` directory:

* **No cluster imports.**  Shard workers rebuild their world from the
  spec's JSON wire form alone.  The cluster layer is the one place live
  single-node simulations are orchestrated from mutable host-side
  state; a fleet module importing ``repro.cluster`` (or pulling
  ``Cluster`` out of anywhere) would let a shard's trajectory depend on
  objects the parent configured — exactly the channel that breaks the
  ``shards=1 == shards=K`` bitwise contract.  Rack physics must flow
  through the spec-driven model layer instead.
* **No module-scope mutable state.**  A mutable container at module
  scope is shared by every rack a worker hosts and — under the fork
  start method — snapshotted from the parent at an arbitrary point, so
  its contents silently vary with the shard layout.  Frozen module
  state (tuples, ``frozenset``, ``MappingProxyType``, scalars) is fine;
  per-run mutable state belongs on instances built from the spec.

Dunder assignments (``__all__`` and friends) are exempt: they are
import-protocol metadata, not simulation state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Finding, Rule, RuleContext

__all__ = ["FleetIsolationRule"]

#: Dotted-path component whose import is banned under ``fleet/``.
_BANNED_COMPONENT = "cluster"

#: Symbol that must not be pulled out of any module under ``fleet/``.
_BANNED_SYMBOL = "Cluster"

#: Constructors whose module-scope call creates shared mutable state.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)

#: AST display/comprehension nodes that build a mutable container.
_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_dunder_target(target: ast.expr) -> bool:
    return (
        isinstance(target, ast.Name)
        and target.id.startswith("__")
        and target.id.endswith("__")
    )


def _mutable_value_kind(value: ast.expr) -> str:
    """Why ``value`` is a mutable container ('' when it is not one)."""
    if isinstance(value, _MUTABLE_DISPLAYS):
        return type(value).__name__.lower().replace("comp", " comprehension")
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _MUTABLE_CALLS:
            return f"{name}() call"
    return ""


class FleetIsolationRule(Rule):
    """fleet/ modules: no cluster imports, no module-scope mutable state."""

    code = "RPR014"
    name = "fleet-isolation"
    description = (
        "fleet/ modules must not import the cluster layer (shards rebuild "
        "from the spec wire form) or bind mutable containers at module "
        "scope (shared cross-shard state breaks the shards=1 == shards=K "
        "bitwise contract); dunder metadata is exempt"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.path_has_part("fleet"):
            return
        yield from self._check_imports(ctx)
        yield from self._check_module_state(ctx)

    # -- cluster imports ---------------------------------------------------

    def _check_imports(self, ctx: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _BANNED_COMPONENT in alias.name.split("."):
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name!r} in fleet code: shards "
                            "must rebuild from the spec wire form, never "
                            "from cluster-layer objects",
                        )
            elif isinstance(node, ast.ImportFrom):
                module_parts = (
                    node.module.split(".") if node.module is not None else []
                )
                if _BANNED_COMPONENT in module_parts:
                    yield self.finding(
                        ctx,
                        node,
                        f"from-import of {node.module!r} in fleet code: "
                        "shards must rebuild from the spec wire form, never "
                        "from cluster-layer objects",
                    )
                    continue
                for alias in node.names:
                    if alias.name == _BANNED_COMPONENT:
                        yield self.finding(
                            ctx,
                            node,
                            f"from-import of the {_BANNED_COMPONENT!r} "
                            "component in fleet code: shards must rebuild "
                            "from the spec wire form, never from "
                            "cluster-layer objects",
                        )
                    elif alias.name == _BANNED_SYMBOL:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {_BANNED_SYMBOL!r} in fleet code: "
                            "the cluster orchestrator must not reach shard "
                            "workers",
                        )

    # -- module-scope mutable state ---------------------------------------

    def _check_module_state(self, ctx: RuleContext) -> Iterator[Finding]:
        for stmt in self._module_statements(ctx.tree):
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if all(_is_dunder_target(t) for t in targets):
                continue
            kind = _mutable_value_kind(value)
            if not kind:
                continue
            names = ", ".join(
                t.id for t in targets if isinstance(t, ast.Name)
            ) or "<target>"
            yield self.finding(
                ctx,
                stmt,
                f"module-scope mutable state in fleet code: {names} is "
                f"bound to a {kind}; shard workers must share nothing "
                "mutable — freeze it (tuple/frozenset/MappingProxyType) or "
                "move it onto a per-run instance",
            )

    @staticmethod
    def _module_statements(tree: ast.Module):
        """Module-scope statements, descending into top-level if/try arms."""
        stack = list(tree.body)
        while stack:
            stmt = stack.pop(0)
            yield stmt
            if isinstance(stmt, ast.If):
                stack.extend(stmt.body)
                stack.extend(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                stack.extend(stmt.body)
                stack.extend(stmt.orelse)
                stack.extend(stmt.finalbody)
                for handler in stmt.handlers:
                    stack.extend(handler.body)
