"""RPR002 — canonical units at call boundaries.

The library's unit contract (:mod:`repro.units`) is *fractions* for PWM
duty cycles and *hertz* for CPU frequency.  The two historically common
mistakes are passing datasheet-style percentages (``set_duty(75)``) and
paper-style gigahertz (``hz=2.4``).  Both are detectable statically
whenever the offending value is a literal:

* a numeric literal **> 1** bound to a duty/PWM-shaped parameter
  (keyword ``duty=``, ``max_duty=`` … or the first positional argument
  of ``set_duty``-shaped calls) is almost certainly a percentage —
  route it through :func:`repro.units.duty_from_percent`;
* a numeric literal **< 1000** bound to a hertz-shaped keyword
  (``hz=``, ``freq_hz=``…) is almost certainly GHz — route it through
  :func:`repro.units.ghz`.

Only literals are flagged; runtime values are the job of the validators
in :mod:`repro.units`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..base import Finding, Rule, RuleContext, dotted_name

__all__ = ["UnitSafetyRule"]

#: Keyword parameter names that carry fractional duty cycles.
_DUTY_KEYWORD = re.compile(
    r"^(?:max_|min_|initial_|target_|)?(?:duty|pwm)(?:_cycle|_fraction|_duty)?$"
)
#: Callables whose first positional argument is a fractional duty.
_DUTY_CALL = re.compile(r"^set_(?:duty|pwm|fan_override)$")
#: Keyword parameter names that carry frequencies in hertz.
_HZ_KEYWORD = re.compile(r"^(?:hz|[a-z0-9_]*_hz)$")
#: units.py boundary helpers — literals inside these are the fix, not a bug.
_UNIT_HELPERS = {"duty_from_percent", "duty_to_percent", "ghz", "to_ghz"}


def _numeric_literal(node: ast.expr) -> Optional[float]:
    """The value of an int/float literal (bools excluded), else None."""
    if isinstance(node, ast.Constant) and type(node.value) in (int, float):
        return float(node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and type(node.operand.value) in (int, float)
    ):
        return -float(node.operand.value)
    return None


class UnitSafetyRule(Rule):
    """Flag percent-vs-fraction duty and GHz-vs-Hz frequency literals."""

    code = "RPR002"
    name = "unit-boundary"
    description = (
        "duty literals must be fractions in [0, 1] and *_hz literals must be "
        "hertz; convert with units.duty_from_percent()/units.ghz()"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            tail = callee.rsplit(".", 1)[-1] if callee else ""
            if tail in _UNIT_HELPERS:
                continue

            if _DUTY_CALL.match(tail) and node.args:
                value = _numeric_literal(node.args[0])
                if value is not None and value > 1.0:
                    findings.append(
                        self.finding(
                            ctx,
                            node.args[0],
                            f"{tail}({value:g}) looks like a percent duty "
                            "cycle; duty is a fraction in [0, 1] — use "
                            "units.duty_from_percent()",
                        )
                    )

            for kw in node.keywords:
                if kw.arg is None:
                    continue
                value = _numeric_literal(kw.value)
                if value is None:
                    continue
                if _DUTY_KEYWORD.match(kw.arg) and value > 1.0:
                    findings.append(
                        self.finding(
                            ctx,
                            kw.value,
                            f"{kw.arg}={value:g} looks like a percent duty "
                            "cycle; duty is a fraction in [0, 1] — use "
                            "units.duty_from_percent()",
                        )
                    )
                elif _HZ_KEYWORD.match(kw.arg) and 0.0 < value < 1e3:
                    findings.append(
                        self.finding(
                            ctx,
                            kw.value,
                            f"{kw.arg}={value:g} looks like GHz passed to a "
                            "hertz parameter — use units.ghz()",
                        )
                    )
        yield from sorted(findings)
