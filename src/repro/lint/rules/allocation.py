"""RPR009 — no per-tick allocation inside ``@hotpath`` functions.

The :mod:`repro.fastpath` step compiler exists to make the per-tick
inner loop cheap; its contract (``docs/performance.md``) is that the
compiled step functions do no avoidable allocation.  Everything a step
needs — buffers, handles, label strings — is built once at compile
time and closed over, so the tick path is attribute loads, arithmetic
and pre-bound calls.

A ``dict``/``list``/``set``/``str`` construction, a comprehension, an
f-string or a nested function definition inside a tick function
allocates on **every physics tick** (tens of thousands of times per
run), and such regressions are invisible to the equivalence suite —
the results stay byte-identical while the speedup quietly erodes.
Fastpath code marks its tick functions with
:func:`repro.fastpath.marker.hotpath`; this rule flags allocating
constructs inside any function so marked, within any ``fastpath/``
directory.

Cold paths reachable from hot code (error raises, flushes) belong in
plain helper functions — see ``_raise_diverged`` in
:mod:`repro.fastpath.rc` for the idiom.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from ..base import Finding, Rule, RuleContext, dotted_name

__all__ = ["HotpathAllocationRule"]

#: Builtin constructors whose call in a hot function is an allocation.
_ALLOCATING_CALLS = frozenset({"dict", "list", "set", "str"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_hotpath_decorator(node: ast.expr) -> bool:
    """True for ``@hotpath`` / ``@marker.hotpath`` style decorators."""
    name = dotted_name(node)
    return name == "hotpath" or name.endswith(".hotpath")


class HotpathAllocationRule(Rule):
    """``@hotpath`` functions must not allocate per call."""

    code = "RPR009"
    name = "hotpath-allocation"
    description = (
        "fastpath/ functions marked @hotpath must not build dicts, "
        "lists, sets, strings, f-strings, comprehensions or closures "
        "per tick (hoist them to compile time)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.path_has_part("fastpath"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(_is_hotpath_decorator(d) for d in node.decorator_list):
                    yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: RuleContext, func: _FunctionNode
    ) -> Iterator[Finding]:
        where = f"in @hotpath function {func.name!r}"
        for stmt in func.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Dict, ast.DictComp)):
                    yield self.finding(
                        ctx, node, f"dict built per tick {where}"
                    )
                elif isinstance(node, (ast.List, ast.ListComp)):
                    yield self.finding(
                        ctx, node, f"list built per tick {where}"
                    )
                elif isinstance(node, (ast.Set, ast.SetComp)):
                    yield self.finding(
                        ctx, node, f"set built per tick {where}"
                    )
                elif isinstance(node, ast.GeneratorExp):
                    yield self.finding(
                        ctx, node, f"generator built per tick {where}"
                    )
                elif isinstance(node, ast.JoinedStr):
                    yield self.finding(
                        ctx,
                        node,
                        f"f-string built per tick {where} (cold "
                        "messages belong in a plain helper function)",
                    )
                elif isinstance(node, ast.Call):
                    callee = dotted_name(node.func)
                    if callee in _ALLOCATING_CALLS:
                        yield self.finding(
                            ctx,
                            node,
                            f"{callee}() allocation per tick {where}",
                        )
                elif isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    label = (
                        "lambda"
                        if isinstance(node, ast.Lambda)
                        else f"nested function {node.name!r}"
                    )
                    yield self.finding(
                        ctx,
                        node,
                        f"{label} creates a closure per tick {where}",
                    )
