"""RPR009 — no per-tick allocation inside ``@hotpath`` functions.

The :mod:`repro.fastpath` step compiler exists to make the per-tick
inner loop cheap; its contract (``docs/performance.md``) is that the
compiled step functions do no avoidable allocation.  Everything a step
needs — buffers, handles, label strings — is built once at compile
time and closed over, so the tick path is attribute loads, arithmetic
and pre-bound calls.

A ``dict``/``list``/``set``/``str`` construction, a comprehension, an
f-string or a nested function definition inside a tick function
allocates on **every physics tick** (tens of thousands of times per
run), and such regressions are invisible to the equivalence suite —
the results stay byte-identical while the speedup quietly erodes.
Fastpath code marks its tick functions with
:func:`repro.fastpath.marker.hotpath`; this rule flags allocating
constructs inside any function so marked, within any ``fastpath/``
directory.

Cold paths reachable from hot code (error raises, flushes) belong in
plain helper functions — see ``_raise_diverged`` in
:mod:`repro.fastpath.rc` for the idiom.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from ..base import Finding, Rule, RuleContext, dotted_name
from ..graph.summary import classify_allocation

__all__ = ["HotpathAllocationRule"]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_CLOSURE_SUFFIX = " closure created"


def _per_tick_message(label: str, where: str) -> str:
    """RPR009 wording for a shared-classifier allocation label."""
    if label.endswith(_CLOSURE_SUFFIX):
        subject = label[: -len(_CLOSURE_SUFFIX)]
        return f"{subject} creates a closure per tick {where}"
    if label == "f-string built":
        return (
            f"f-string built per tick {where} (cold "
            "messages belong in a plain helper function)"
        )
    return f"{label} per tick {where}"


def _is_hotpath_decorator(node: ast.expr) -> bool:
    """True for ``@hotpath`` / ``@marker.hotpath`` style decorators."""
    name = dotted_name(node)
    return name == "hotpath" or name.endswith(".hotpath")


class HotpathAllocationRule(Rule):
    """``@hotpath`` functions must not allocate per call."""

    code = "RPR009"
    name = "hotpath-allocation"
    description = (
        "fastpath/ functions marked @hotpath must not build dicts, "
        "lists, sets, strings, f-strings, comprehensions or closures "
        "per tick (hoist them to compile time)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.path_has_part("fastpath"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(_is_hotpath_decorator(d) for d in node.decorator_list):
                    yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: RuleContext, func: _FunctionNode
    ) -> Iterator[Finding]:
        where = f"in @hotpath function {func.name!r}"
        for stmt in func.body:
            for node in ast.walk(stmt):
                # The ban list itself lives in one place —
                # ``repro.lint.graph.summary.classify_allocation`` —
                # shared with the transitive RPR010 rule.
                label = classify_allocation(node)
                if label is not None:
                    yield self.finding(ctx, node, _per_tick_message(label, where))
