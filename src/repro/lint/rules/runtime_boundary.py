"""RPR007 — experiments go through the runtime layer, not the cluster.

Experiment modules (``src/repro/experiments/``) describe *what* to run
as declarative :class:`~repro.runtime.RunSpec` lists and hand them to a
:class:`~repro.runtime.RunExecutor`.  Building a ``Cluster(...)`` or
driving it with ``cluster.run_job(...)`` / ``cluster.run_for(...)``
inside an experiment bypasses the executor — the run can no longer be
parallelised, cached or deduplicated, and its configuration escapes the
spec hash that makes results content-addressable.

``experiments/platform.py`` is the one sanctioned home for cluster
construction (it hosts the rig/workload registries the runtime resolves
names against), so it is exempt; modules outside ``experiments/`` —
including ``repro.runtime`` itself — are out of scope entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Finding, Rule, RuleContext, dotted_name

__all__ = ["RuntimeBoundaryRule"]

#: Cluster-driving methods experiments must not call directly.
_DRIVE_METHODS = frozenset({"run_job", "run_for"})


class RuntimeBoundaryRule(Rule):
    """Experiments must not construct or drive a Cluster directly."""

    code = "RPR007"
    name = "runtime-boundary"
    description = (
        "experiment modules must not call Cluster(...) or run_job()/"
        "run_for() directly; build RunSpecs and use a RunExecutor "
        "(platform.py exempt)"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.path_has_part("experiments"):
            return
        if ctx.path.name == "platform.py":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = dotted_name(func)
            if name.rpartition(".")[2] == "Cluster":
                yield self.finding(
                    ctx,
                    node,
                    f"experiment constructs '{name}(...)' directly; "
                    "declare a RunSpec and run it through a RunExecutor",
                )
            elif isinstance(func, ast.Attribute) and func.attr in _DRIVE_METHODS:
                yield self.finding(
                    ctx,
                    node,
                    f"experiment drives the cluster via '.{func.attr}(...)'; "
                    "declare a RunSpec and run it through a RunExecutor",
                )
