"""RPR011 — eager imports must respect the declared layer DAG.

The reproduction's components form a layered architecture (declared in
:mod:`repro.lint.graph.layers`, diagrammed in
``docs/static_analysis.md``): errors/units at the bottom, the plant
models above them, orchestration above those, and the CLI at the top.
An *eager* (module-level, non-``TYPE_CHECKING``) import that points
upward couples a lower layer's import time to everything above it —
exactly the erosion that made PR 1's export audit necessary, and the
failure mode that would let the RunSpec registry grow cycles.

Function-scoped lazy imports are exempt by design: they are the
sanctioned idiom for intentional upward hops (``sim.engine`` lazily
pulling the fastpath compiler, ``runtime.execute`` lazily pulling the
experiment registries) because they execute at call time, after every
layer is importable.  ``TYPE_CHECKING`` imports never execute at all.

Components absent from the declared table are exempt — the rule
enforces the contract, it does not invent one.
"""

from __future__ import annotations

from typing import Iterator, List

from ..base import Finding, GraphRule
from ..graph.layers import component_layer
from ..graph.program import ProgramGraph

__all__ = ["LayeringRule"]


def _target_component(target: str) -> str:
    """Component a dotted import target lives in (``""`` if not repro)."""
    parts = target.split(".")
    if parts[0] != "repro":
        return ""
    return parts[1] if len(parts) > 1 else "<root>"


class LayeringRule(GraphRule):
    """Module-level imports may only point sideways or down the DAG."""

    code = "RPR011"
    name = "architecture-layering"
    description = (
        "eager module-level imports must not point upward in the "
        "declared component layer DAG (lazy function-scoped imports "
        "are the sanctioned escape hatch)"
    )

    def check_program(self, graph: ProgramGraph) -> Iterator[Finding]:
        findings: List[Finding] = []
        for summary in graph.summaries:
            source_layer = component_layer(summary.component)
            if source_layer is None:
                continue
            for imp in summary.imports:
                if imp.kind != "top":
                    continue
                # ``from pkg import sub`` depends on the named
                # submodules when they exist in the program; on the
                # bare target otherwise.
                submodules = {
                    f"{imp.target}.{name}"
                    for name, _ in imp.names
                    if f"{imp.target}.{name}" in graph.modules
                }
                targets = submodules or {imp.target}
                for target in sorted(targets):
                    component = _target_component(target)
                    if not component or component == summary.component:
                        continue
                    target_layer = component_layer(component)
                    if target_layer is None or target_layer <= source_layer:
                        continue
                    findings.append(
                        self.graph_finding(
                            summary.path,
                            imp.line,
                            imp.col,
                            f"eager import of '{target}' (layer "
                            f"{target_layer}, {component}) from layer "
                            f"{source_layer} ({summary.component}) points "
                            "upward in the declared layer DAG; move it "
                            "into the function that needs it or fix the "
                            "dependency direction",
                        )
                    )
        yield from sorted(findings)
