"""RPR006 — every experiment entry point threads its seed.

Experiment modules (``src/repro/experiments/``) are the reproduction's
public record: each exposes ``run(...)`` returning the data behind one
paper table or figure.  A ``run()`` without an explicit ``seed`` (or
``rng``) parameter has no way to be replayed, so the rule requires one
on every module-level ``run`` definition in an experiments module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Finding, Rule, RuleContext, function_params

__all__ = ["ReproducibilityRule"]


class ReproducibilityRule(Rule):
    """Experiment ``run()`` must accept an explicit ``seed`` or ``rng``."""

    code = "RPR006"
    name = "experiment-reproducibility"
    description = (
        "module-level run() in experiments/ must take an explicit seed= or "
        "rng= parameter"
    )

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        if not ctx.path_has_part("experiments"):
            return
        for node in ctx.tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == "run"
            ):
                params = set(function_params(node))
                if not params & {"seed", "rng"}:
                    yield self.finding(
                        ctx,
                        node,
                        "experiment run() has no seed=/rng= parameter; the "
                        "run cannot be replayed deterministically",
                    )
