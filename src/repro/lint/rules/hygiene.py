"""RPR005 — no wildcard imports, no mutable default arguments.

Two classic Python foot-guns with outsized blast radius in a simulator:

* ``from m import *`` destroys the static import graph the other rules
  (and human readers) rely on, and can silently rebind names like
  ``clamp`` or ``ghz`` between modules;
* a mutable default (``def f(history=[])``) is shared across *calls and
  nodes*, which in this codebase means cross-node state bleeding —
  exactly the isolation RngStreams exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..base import Finding, Rule, RuleContext

__all__ = ["HygieneRule"]

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


class HygieneRule(Rule):
    """Flag ``import *`` and mutable default argument values."""

    code = "RPR005"
    name = "hygiene"
    description = "no wildcard imports; no mutable default argument values"

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if any(alias.name == "*" for alias in node.names):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"wildcard import from '{node.module or '.'}' "
                            "hides the import graph; import names explicitly",
                        )
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_literal(default):
                        label = (
                            "<lambda>"
                            if isinstance(node, ast.Lambda)
                            else node.name
                        )
                        findings.append(
                            self.finding(
                                ctx,
                                default,
                                f"mutable default argument in '{label}' is "
                                "shared across calls; default to None and "
                                "construct inside the function",
                            )
                        )
        yield from sorted(findings)
