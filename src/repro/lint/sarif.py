"""SARIF 2.1.0 serialisation of lint findings.

SARIF (Static Analysis Results Interchange Format) is what code
scanning UIs ingest — GitHub's ``upload-sarif`` action turns the
document this module emits into inline PR annotations.  The output is
deterministic: rules sorted by code, results in :class:`Finding` order,
no timestamps and no absolute paths, so two runs over the same tree
produce byte-identical documents.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from .base import Finding
from .engine import PARSE_ERROR_CODE
from .rules import ALL_RULES

__all__ = ["render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_table() -> List[dict]:
    rules = [
        {
            "id": PARSE_ERROR_CODE,
            "name": "parse-error",
            "shortDescription": {"text": "file failed to read or parse"},
        }
    ]
    for cls in ALL_RULES:
        rules.append(
            {
                "id": cls.code,
                "name": cls.name,
                "shortDescription": {"text": cls.description},
            }
        )
    return sorted(rules, key=lambda rule: rule["id"])


def render_sarif(findings: Sequence[Finding]) -> str:
    """One-run SARIF document for ``findings`` (already sorted)."""
    rule_ids = [rule["id"] for rule in _rule_table()]
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": (
                rule_ids.index(finding.code)
                if finding.code in rule_ids
                else -1
            ),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rule_table(),
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
