"""Inline suppression directives.

Two comment forms are recognised, mirroring ``# noqa`` semantics:

* ``# repro-lint: disable=RPR001,RPR004`` — suppress those codes for
  findings anchored on the *same physical line* as the comment.
  ``disable`` with no code list (or ``disable=all``) suppresses every
  rule on that line.
* ``# repro-lint: disable-file=RPR004`` — suppress the listed codes for
  the whole file, wherever the comment appears.  Useful for module-
  level diagnostics (``__all__`` checks) whose anchor line may be far
  from the explanation.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Set

from .base import Finding

__all__ = ["Suppressions", "scan_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-file|disable)"
    r"(?:\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+?))?\s*(?:#|$)"
)


class Suppressions:
    """Parsed suppression directives of one file."""

    def __init__(
        self,
        by_line: Dict[int, FrozenSet[str]],
        file_wide: FrozenSet[str],
    ) -> None:
        self._by_line = by_line
        self._file_wide = file_wide

    @staticmethod
    def _covers(codes: FrozenSet[str], code: str) -> bool:
        # An empty code set means "everything" (bare `disable`).
        return not codes or "all" in codes or code in codes

    def suppresses(self, finding: Finding) -> bool:
        """Is ``finding`` silenced by an inline directive?"""
        if self._file_wide and self._covers(self._file_wide, finding.code):
            return True
        line_codes = self._by_line.get(finding.line)
        if line_codes is None:
            return False
        return self._covers(line_codes, finding.code)

    def to_json(self) -> dict:
        """JSON-serialisable form (for the engine's result cache).

        An *empty* code list is meaningful (bare ``disable`` = suppress
        everything on that line), so presence of a line key must
        round-trip even when its list is empty.
        """
        return {
            "by_line": {
                str(line): sorted(codes)
                for line, codes in self._by_line.items()
            },
            "file_wide": sorted(self._file_wide),
        }

    @staticmethod
    def from_json(raw: dict) -> "Suppressions":
        return Suppressions(
            by_line={
                int(line): frozenset(codes)
                for line, codes in raw["by_line"].items()
            },
            file_wide=frozenset(raw["file_wide"]),
        )


def _parse_codes(raw: str) -> FrozenSet[str]:
    return frozenset(
        token.strip() for token in raw.split(",") if token.strip()
    )


def scan_suppressions(source: str) -> Suppressions:
    """Extract all suppression directives from ``source``.

    The scan is line-based on purpose: directives live in comments, and
    a comment inside a string literal that *looks* like a directive is
    an acceptable (and vanishingly rare) false suppression compared to
    the cost of a full tokenizer pass per file.
    """
    by_line: Dict[int, FrozenSet[str]] = {}
    file_wide: Set[str] = set()
    file_wide_all = False
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in text:
            continue
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        codes = _parse_codes(match.group("codes") or "")
        if match.group("kind") == "disable-file":
            if not codes or "all" in codes:
                file_wide_all = True
            file_wide |= codes
        else:
            existing = by_line.get(lineno)
            if existing is not None and (not existing or not codes):
                by_line[lineno] = frozenset()
            else:
                by_line[lineno] = (existing or frozenset()) | codes
    wide: FrozenSet[str] = (
        frozenset({"all"}) if file_wide_all else frozenset(file_wide)
    )
    return Suppressions(by_line, wide)
