"""Core types of the ``repro.lint`` static analysis pass.

The linter is a deliberately small, stdlib-only machine: every check is
a :class:`Rule` subclass that walks one parsed module
(:class:`RuleContext`) and yields :class:`Finding` records.  Rules are
registered in :mod:`repro.lint.rules` and discovered by code
(``RPR001`` …), so configuration, suppression and the CLI never need to
know about individual checks.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple

__all__ = [
    "Finding",
    "GraphRule",
    "Rule",
    "RuleContext",
    "CODE_PATTERN",
    "dotted_name",
    "function_params",
    "iter_assign_targets",
]

#: Shape of a valid rule code (``RPR`` + three digits).
CODE_PATTERN = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violation anchored to a source location.

    Orders by ``(path, line, col, code)`` so reports are stable.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line report: ``file:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class RuleContext:
    """Everything a rule may inspect about one module.

    Parameters
    ----------
    path:
        Path of the file as it should appear in findings (normally the
        path the user passed, kept relative when possible).
    tree:
        The parsed :class:`ast.Module`.
    source:
        Raw source text (rules rarely need it; suppression scanning
        happens in the engine).
    """

    path: Path
    tree: ast.Module
    source: str
    _lines: Tuple[str, ...] = field(default=(), repr=False)

    @property
    def display_path(self) -> str:
        """Path string used in findings."""
        return self.path.as_posix()

    @property
    def lines(self) -> Tuple[str, ...]:
        """Source split into physical lines (lazily cached)."""
        if not self._lines:
            self._lines = tuple(self.source.splitlines())
        return self._lines

    def path_has_part(self, part: str) -> bool:
        """True when ``part`` is one of the path's directory components."""
        return part in self.path.parts


class Rule:
    """Base class of every lint check.

    Subclasses set :attr:`code`, :attr:`name` and :attr:`description`
    and implement :meth:`check`.  A rule instance is stateless across
    files; :meth:`check` receives one :class:`RuleContext` per module
    and yields findings.
    """

    #: Unique diagnostic code, e.g. ``"RPR001"``.
    code: str = ""
    #: Short kebab-case identifier, e.g. ``"determinism"``.
    name: str = ""
    #: One-line human description shown by ``repro-lint --list-rules``.
    description: str = ""

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.code and not CODE_PATTERN.match(cls.code):
            raise ValueError(f"invalid rule code {cls.code!r} on {cls.__name__}")

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Yield findings for one module (subclass responsibility)."""
        raise NotImplementedError

    def finding(self, ctx: RuleContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )

    def run(self, ctx: RuleContext) -> List[Finding]:
        """Materialise :meth:`check` into a list (engine convenience)."""
        return list(self.check(ctx))


class GraphRule(Rule):
    """A rule that needs the whole program, not one module.

    Graph rules run after every file has been summarised: the engine
    builds one :class:`~repro.lint.graph.program.ProgramGraph` per run
    and calls :meth:`check_program` instead of :meth:`check`.  Findings
    still anchor to a concrete file/line, so per-file ignores and inline
    suppressions apply exactly as they do for per-file rules.
    """

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        """Graph rules have no per-file pass."""
        return iter(())

    def check_program(self, graph: "object") -> Iterator[Finding]:
        """Yield findings over a ``ProgramGraph`` (subclass responsibility)."""
        raise NotImplementedError

    def run_program(self, graph: "object") -> List[Finding]:
        """Materialise :meth:`check_program` (engine convenience)."""
        return list(self.check_program(graph))

    def graph_finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """Build a :class:`Finding` from raw coordinates."""
        return Finding(
            path=path, line=line, col=col, code=self.code, message=message
        )


def dotted_name(node: ast.AST) -> str:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (else ``""``).

    Chains containing anything but names/attributes (calls, subscripts)
    flatten to ``""`` — rules treat those as opaque.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def function_params(node: ast.AST) -> List[str]:
    """All parameter names of a function definition node."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return []
    a = node.args
    names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
    if a.vararg is not None:
        names.append(a.vararg.arg)
    if a.kwarg is not None:
        names.append(a.kwarg.arg)
    return names


def iter_assign_targets(node: ast.stmt) -> Iterable[ast.expr]:
    """Assignment-target expressions of an assign-like statement."""
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        yield node.target
