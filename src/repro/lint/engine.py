"""File discovery and the lint driver loop.

The engine is rule-agnostic: it finds Python files, parses each once,
runs every enabled :class:`~repro.lint.base.Rule` over the tree, then
filters findings through per-file ignores and inline suppressions.
Syntax errors are reported as ``RPR000`` findings rather than crashing
the run — an unparseable file in a determinism-audited tree is itself a
finding.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .base import Finding, Rule, RuleContext
from .config import LintConfig
from .rules import make_rules
from .suppressions import scan_suppressions

__all__ = ["iter_python_files", "lint_file", "lint_paths", "PARSE_ERROR_CODE"]

#: Pseudo-code attached to files that fail to parse.
PARSE_ERROR_CODE = "RPR000"


def iter_python_files(
    paths: Sequence[Path], config: LintConfig
) -> Iterable[Path]:
    """Yield the ``.py`` files named by ``paths``, in sorted order.

    Directories are walked recursively with ``config.exclude`` globs
    applied; files passed explicitly are always yielded (mirroring
    ruff's default), so ``repro-lint tests/lint_fixtures/bad.py`` works
    even when fixtures are excluded from tree-wide runs.  A file
    reachable through several arguments is yielded once.
    """
    seen = set()

    def emit(candidate: Path) -> Iterable[Path]:
        key = candidate.resolve()
        if key not in seen:
            seen.add(key)
            yield candidate

    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if not config.is_excluded(child):
                    yield from emit(child)
        else:
            yield from emit(path)


def _display_path(path: Path) -> Path:
    """Prefer a cwd-relative spelling for readable, stable reports."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        return path


def lint_file(
    path: Path,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one file; returns surviving findings sorted by location."""
    config = config if config is not None else LintConfig()
    rules = rules if rules is not None else make_rules()
    display = _display_path(path)

    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [
            Finding(
                path=display.as_posix(),
                line=1,
                col=1,
                code=PARSE_ERROR_CODE,
                message=f"cannot read file: {exc}",
            )
        ]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=display.as_posix(),
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                code=PARSE_ERROR_CODE,
                message=f"syntax error: {exc.msg}",
            )
        ]

    ctx = RuleContext(path=display, tree=tree, source=source)
    suppressions = scan_suppressions(source)
    findings: List[Finding] = []
    for rule in rules:
        if not config.rule_enabled(rule.code):
            continue
        if config.is_ignored(path, rule.code):
            continue
        for finding in rule.run(ctx):
            if not suppressions.suppresses(finding):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint files and directories; returns all findings sorted."""
    config = config if config is not None else LintConfig()
    rules = rules if rules is not None else make_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths, config):
        findings.extend(lint_file(path, config=config, rules=rules))
    return sorted(findings)
