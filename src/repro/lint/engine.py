"""File discovery and the lint driver loop.

The engine is rule-agnostic and runs in two stages.  Stage one analyses
each file independently: read bytes (hashed for the result cache),
parse once, run every enabled per-file :class:`~repro.lint.base.Rule`,
scan suppressions, and distil a
:class:`~repro.lint.graph.summary.ModuleSummary`.  Stage two builds one
:class:`~repro.lint.graph.program.ProgramGraph` over all summaries and
runs the :class:`~repro.lint.base.GraphRule` checks, filtering their
findings through the same per-file ignores and inline suppressions as
everything else.

Stage one is embarrassingly parallel: with ``jobs > 1`` the cache
misses fan out over a ``ProcessPoolExecutor`` and merge back in input
order, so the report is byte-identical to a serial run.  Syntax errors
are reported as ``RPR000`` findings rather than crashing the run — an
unparseable file in a determinism-audited tree is itself a finding.

Files are read as *bytes* and parsed with their declared encoding:
``ast.parse`` honours PEP 263 cookies and BOMs, and the source handed
to rules is decoded via :func:`tokenize.detect_encoding`, so a latin-1
module with an encoding comment lints instead of crashing the driver.
"""

from __future__ import annotations

import ast
import hashlib
import io
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .base import Finding, GraphRule, Rule, RuleContext
from .cache import FileAnalysis, LintCache
from .config import LintConfig
from .graph.program import ProgramGraph
from .graph.summary import summarize_module
from .rules import make_rules
from .suppressions import scan_suppressions

__all__ = [
    "analyze_paths",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "PARSE_ERROR_CODE",
]

#: Pseudo-code attached to files that fail to parse.
PARSE_ERROR_CODE = "RPR000"


def iter_python_files(
    paths: Sequence[Path], config: LintConfig
) -> Iterable[Path]:
    """Yield the ``.py`` files named by ``paths``, in sorted order.

    Directories are walked recursively with ``config.exclude`` globs
    applied; files passed explicitly are always yielded (mirroring
    ruff's default), so ``repro-lint tests/lint_fixtures/bad.py`` works
    even when fixtures are excluded from tree-wide runs.  A file
    reachable through several arguments is yielded once.
    """
    seen = set()

    def emit(candidate: Path) -> Iterable[Path]:
        key = candidate.resolve()
        if key not in seen:
            seen.add(key)
            yield candidate

    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if not config.is_excluded(child):
                    yield from emit(child)
        else:
            yield from emit(path)


def _display_path(path: Path) -> Path:
    """Prefer a cwd-relative spelling for readable, stable reports."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        return path


def _decode_source(data: bytes) -> str:
    """Decode source bytes honouring PEP 263 cookies and BOMs.

    Falls back to UTF-8 with replacement rather than raising — by the
    time this runs the bytes have already parsed, so the decoded text
    is only used for suppression scanning and rule context.
    """
    try:
        encoding, _ = tokenize.detect_encoding(io.BytesIO(data).readline)
    except (SyntaxError, UnicodeDecodeError):
        encoding = "utf-8"
    try:
        return data.decode(encoding)
    except (UnicodeDecodeError, LookupError):
        return data.decode("utf-8", errors="replace")


def _analyze_source(
    display: str,
    data: bytes,
    config: LintConfig,
    rules: Sequence[Rule],
) -> FileAnalysis:
    """Stage-one analysis of one file's bytes (pure; pool-safe)."""
    path = Path(display)
    try:
        tree = ast.parse(data, filename=display)
    except SyntaxError as exc:
        return FileAnalysis(
            display=display,
            findings=[
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=exc.offset or 1,
                    code=PARSE_ERROR_CODE,
                    message=f"syntax error: {exc.msg}",
                )
            ],
        )
    except ValueError as exc:  # e.g. null bytes in source
        return FileAnalysis(
            display=display,
            findings=[
                Finding(
                    path=display,
                    line=1,
                    col=1,
                    code=PARSE_ERROR_CODE,
                    message=f"cannot parse file: {exc}",
                )
            ],
        )

    source = _decode_source(data)
    ctx = RuleContext(path=path, tree=tree, source=source)
    suppressions = scan_suppressions(source)
    findings: List[Finding] = []
    for rule in rules:
        if isinstance(rule, GraphRule):
            continue
        if not config.rule_enabled(rule.code):
            continue
        if config.is_ignored(path, rule.code):
            continue
        for finding in rule.run(ctx):
            if not suppressions.suppresses(finding):
                findings.append(finding)
    return FileAnalysis(
        display=display,
        findings=sorted(findings),
        summary=summarize_module(path, tree),
        suppressions=suppressions,
    )


def _pool_worker(payload: Tuple[str, bytes, LintConfig]) -> FileAnalysis:
    """Top-level (picklable) entry for ``--jobs`` worker processes.

    Workers rebuild the default rule set from the registry they import
    themselves — rule instances never cross process boundaries.
    """
    display, data, config = payload
    return _analyze_source(display, data, config, make_rules())


def _read_error(display: str, exc: OSError) -> FileAnalysis:
    return FileAnalysis(
        display=display,
        findings=[
            Finding(
                path=display,
                line=1,
                col=1,
                code=PARSE_ERROR_CODE,
                message=f"cannot read file: {exc}",
            )
        ],
    )


def _run_graph_rules(
    analyses: Sequence[FileAnalysis],
    config: LintConfig,
    rules: Sequence[Rule],
) -> List[Finding]:
    """Stage two: whole-program rules over the per-file summaries."""
    graph_rules = [
        rule
        for rule in rules
        if isinstance(rule, GraphRule) and config.rule_enabled(rule.code)
    ]
    if not graph_rules:
        return []
    summaries = [a.summary for a in analyses if a.summary is not None]
    if not summaries:
        return []
    graph = ProgramGraph(summaries)
    suppressions_by_path: Dict[str, object] = {
        a.display: a.suppressions
        for a in analyses
        if a.suppressions is not None
    }
    findings: List[Finding] = []
    for rule in graph_rules:
        for finding in rule.run_program(graph):
            path = Path(finding.path)
            if config.is_ignored(path, finding.code):
                continue
            suppressions = suppressions_by_path.get(finding.path)
            if suppressions is not None and suppressions.suppresses(finding):
                continue
            findings.append(finding)
    return findings


class _Slot:
    """One file's place in the in-order stage-one pipeline."""

    __slots__ = ("display", "sha", "data", "analysis")

    def __init__(self, display: str) -> None:
        self.display = display
        self.sha = ""
        self.data: Optional[bytes] = None
        self.analysis: Optional[FileAnalysis] = None


def analyze_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    *,
    jobs: int = 1,
    cache: Optional[LintCache] = None,
) -> List[FileAnalysis]:
    """Stage-one analyses for every file named by ``paths``, in order."""
    config = config if config is not None else LintConfig()
    custom_rules = rules is not None
    rules = rules if custom_rules else make_rules()

    slots: List[_Slot] = []
    for path in iter_python_files(paths, config):
        slot = _Slot(_display_path(path).as_posix())
        slots.append(slot)
        try:
            slot.data = path.read_bytes()
        except OSError as exc:
            slot.analysis = _read_error(slot.display, exc)
            continue
        slot.sha = hashlib.sha256(slot.data).hexdigest()
        if cache is not None:
            slot.analysis = cache.get(slot.display, slot.sha)

    # Fan the cache misses out; merge results back in input order so
    # the report is identical whatever the worker count.
    misses = [slot for slot in slots if slot.analysis is None]
    # Custom rule sequences may not be picklable; those runs stay serial.
    if jobs > 1 and not custom_rules and len(misses) > 1:
        from concurrent.futures import ProcessPoolExecutor

        payloads = [(slot.display, slot.data, config) for slot in misses]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for slot, analysis in zip(misses, pool.map(_pool_worker, payloads)):
                slot.analysis = analysis
    else:
        for slot in misses:
            assert slot.data is not None
            slot.analysis = _analyze_source(
                slot.display, slot.data, config, rules
            )

    if cache is not None:
        for slot in misses:
            if slot.sha and slot.analysis is not None:
                cache.put(slot.display, slot.sha, slot.analysis)
        cache.save()
    return [slot.analysis for slot in slots if slot.analysis is not None]


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    *,
    jobs: int = 1,
    cache: Optional[LintCache] = None,
) -> List[Finding]:
    """Lint files and directories; returns all findings sorted."""
    config = config if config is not None else LintConfig()
    rules = rules if rules is not None else make_rules()
    analyses = analyze_paths(
        paths, config=config, rules=rules, jobs=jobs, cache=cache
    )
    findings: List[Finding] = []
    for analysis in analyses:
        findings.extend(analysis.findings)
    findings.extend(_run_graph_rules(analyses, config, rules))
    return sorted(findings)


def lint_file(
    path: Path,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one file; returns surviving findings sorted by location.

    Graph rules see a single-file program, so cross-module reachability
    degenerates to within-module edges — the same behaviour a
    one-file ``lint_paths`` call gets.
    """
    return lint_paths([path], config=config, rules=rules)
