"""The declared architecture layer DAG that RPR011 enforces.

Each top-level component of ``repro`` is assigned to exactly one layer;
an *eager* (module-level, non-``TYPE_CHECKING``) import may only point
sideways or downwards.  ``serve`` sits above the experiments layer —
the service consumes the runtime and telemetry layers but nothing may
reach up into it except the CLI.  Lazy function-scoped imports are exempt — they
are the sanctioned escape hatch for the handful of intentional upward
hops (``sim.engine`` → ``fastpath.loop``, ``runtime.execute`` →
``experiments.platform``) documented in ``docs/static_analysis.md``.

The table below is *declared*, not inferred: it is the architectural
contract, and the linter's job is to keep reality matching it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["LAYER_INDEX", "LAYER_TABLE", "component_layer"]

#: Layer number -> the components living there.  Lower layers may not
#: eagerly import from higher ones.
LAYER_TABLE: Tuple[Tuple[int, Tuple[str, ...]], ...] = (
    (0, ("errors", "units")),
    (1, ("sim", "i2c", "workloads", "lint")),
    (2, ("thermal", "cpu", "fan", "telemetry")),
    (3, ("core", "config", "platform")),
    (4, ("governors", "ipmi")),
    (5, ("cluster",)),
    (6, ("fastpath", "runtime", "analysis")),
    (7, ("experiments", "fleet")),
    (8, ("serve",)),
    (9, ("cli", "__main__", "<root>")),
)

#: component name -> layer number.
LAYER_INDEX: Dict[str, int] = {
    component: layer for layer, components in LAYER_TABLE for component in components
}


def component_layer(component: str) -> Optional[int]:
    """Layer of a component, or ``None`` for undeclared components.

    Undeclared components (new packages, fixture trees) are exempt from
    RPR011 until they are added to :data:`LAYER_TABLE` — the rule
    refuses to guess.
    """
    return LAYER_INDEX.get(component)
