"""Per-module extraction: everything the graph rules need, serialisable.

A :class:`ModuleSummary` is the whole-program layer's unit of caching:
one AST walk per file distils the module into imports, a function table
and module-level mutable bindings, all as plain tuples/strings so the
summary round-trips through JSON (``to_json``/``from_json``) and
pickles cleanly across ``--jobs`` worker processes.

The extraction is deliberately conservative.  Call sites keep only the
three shapes the resolver can act on — bare names, ``self.method`` and
dotted module attributes — and everything else (calls through local
variables, subscripts, returned callables) is opaque.  Known
over/under-approximations are catalogued in
``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from ..base import dotted_name, function_params

__all__ = [
    "FunctionInfo",
    "ImportRecord",
    "KNOWN_COMPONENTS",
    "ModuleSummary",
    "classify_allocation",
    "derive_module_name",
    "module_component",
    "summarize_module",
]

#: Builtin constructors whose call allocates a fresh container/str.
_ALLOCATING_CALLS = frozenset({"dict", "list", "set", "str"})

#: Constructors that produce a *mutable* container (worker-state hazard).
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque",
     "OrderedDict", "Counter"}
)

#: Top-level components of the ``repro`` package, used to locate fixture
#: trees that mirror the package shape (see :func:`module_component`).
KNOWN_COMPONENTS = frozenset(
    {"analysis", "cli", "cluster", "config", "core", "cpu", "errors",
     "experiments", "fan", "fastpath", "governors", "i2c", "ipmi",
     "lint", "runtime", "sim", "telemetry", "thermal", "units",
     "workloads", "__main__"}
)


def classify_allocation(node: ast.AST) -> Optional[str]:
    """Label for a per-call allocation construct, or ``None``.

    This is the single definition of the RPR009 allocation ban list;
    the per-file rule and the transitive RPR010 rule both consult it.
    """
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict built"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list built"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set built"
    if isinstance(node, ast.GeneratorExp):
        return "generator built"
    if isinstance(node, ast.JoinedStr):
        return "f-string built"
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee in _ALLOCATING_CALLS:
            return f"{callee}() allocation"
    if isinstance(node, ast.Lambda):
        return "lambda closure created"
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return f"nested function {node.name!r} closure created"
    return None


@dataclass(frozen=True)
class ImportRecord:
    """One import statement edge.

    ``kind`` is ``"top"`` for eagerly-executed module-level imports,
    ``"lazy"`` for function-scoped imports and ``"tc"`` for imports
    guarded by ``TYPE_CHECKING``.  ``names`` holds ``(name, asname)``
    pairs for ``from X import ...`` and is empty for ``import X``.
    """

    target: str
    kind: str
    line: int
    col: int
    names: Tuple[Tuple[str, str], ...] = ()
    asname: str = ""

    def to_json(self) -> list:
        return [self.target, self.kind, self.line, self.col,
                [list(pair) for pair in self.names], self.asname]

    @staticmethod
    def from_json(raw: list) -> "ImportRecord":
        return ImportRecord(
            target=raw[0], kind=raw[1], line=raw[2], col=raw[3],
            names=tuple((n, a) for n, a in raw[4]), asname=raw[5],
        )


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method as the call graph sees it.

    ``qname`` is the dotted qualified name within the module
    (``"f"``, ``"C.m"``, ``"f.<locals>.g"``).  ``calls`` holds
    ``(kind, name, line)`` descriptors with ``kind`` one of ``"name"``
    (bare-name call), ``"self"`` (``self.x(...)``/``cls.x(...)``) or
    ``"attr"`` (dotted call such as ``mod.f(...)``).  ``allocations``
    and ``param_writes`` carry the evidence RPR010/RPR012 anchor
    findings to.
    """

    qname: str
    line: int
    col: int
    params: Tuple[str, ...]
    is_hotpath: bool
    is_coldpath: bool
    raises_only: bool
    calls: Tuple[Tuple[str, str, int], ...]
    allocations: Tuple[Tuple[int, int, str], ...]
    param_writes: Tuple[Tuple[int, int, str, str], ...]

    def to_json(self) -> list:
        return [
            self.qname, self.line, self.col, list(self.params),
            self.is_hotpath, self.is_coldpath, self.raises_only,
            [list(c) for c in self.calls],
            [list(a) for a in self.allocations],
            [list(w) for w in self.param_writes],
        ]

    @staticmethod
    def from_json(raw: list) -> "FunctionInfo":
        return FunctionInfo(
            qname=raw[0], line=raw[1], col=raw[2], params=tuple(raw[3]),
            is_hotpath=raw[4], is_coldpath=raw[5], raises_only=raw[6],
            calls=tuple((k, n, ln) for k, n, ln in raw[7]),
            allocations=tuple((ln, c, m) for ln, c, m in raw[8]),
            param_writes=tuple((ln, c, p, t) for ln, c, p, t in raw[9]),
        )


@dataclass
class ModuleSummary:
    """Everything the whole-program rules need from one module."""

    path: str
    module: str
    component: str
    imports: Tuple[ImportRecord, ...] = ()
    functions: Tuple[FunctionInfo, ...] = ()
    #: class name -> method names (for self-call / ``C()`` resolution).
    classes: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    #: ``(name, line, col, constructor-label)`` mutable module globals.
    mutable_globals: Tuple[Tuple[int, int, str, str], ...] = ()

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "component": self.component,
            "imports": [imp.to_json() for imp in self.imports],
            "functions": [fn.to_json() for fn in self.functions],
            "classes": {name: list(ms) for name, ms in self.classes.items()},
            "mutable_globals": [list(g) for g in self.mutable_globals],
        }

    @staticmethod
    def from_json(raw: dict) -> "ModuleSummary":
        return ModuleSummary(
            path=raw["path"],
            module=raw["module"],
            component=raw["component"],
            imports=tuple(ImportRecord.from_json(i) for i in raw["imports"]),
            functions=tuple(FunctionInfo.from_json(f) for f in raw["functions"]),
            classes={k: tuple(v) for k, v in raw["classes"].items()},
            mutable_globals=tuple(
                (ln, c, n, d) for ln, c, n, d in raw["mutable_globals"]
            ),
        )


def derive_module_name(path: Path) -> str:
    """Dotted module name for files under a ``repro`` package directory.

    ``src/repro/thermal/rc.py`` → ``"repro.thermal.rc"``; fixture trees
    that embed a ``repro/`` directory resolve the same way.  Files with
    no ``repro`` ancestor get ``""`` (their relative imports stay
    opaque, which is the conservative choice).
    """
    parts = path.parts
    if "repro" not in parts:
        return ""
    idx = len(parts) - 1 - parts[::-1].index("repro")
    rel = [p for p in parts[idx + 1:]]
    if not rel:
        return "repro"
    if rel[-1].endswith(".py"):
        rel[-1] = rel[-1][:-3]
    if rel and rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(["repro", *rel]) if rel else "repro"


def module_component(path: Path, module: str) -> str:
    """Top-level component the module belongs to.

    Derived from the dotted module name when the file lives under a
    ``repro`` tree (``repro.thermal.rc`` → ``"thermal"``, the package
    root → ``"<root>"``); otherwise the *last* path part matching a
    known component name, so path-shaped fixture corpora
    (``tests/lint_fixtures/fastpath/...``) land in the right component.
    """
    if module == "repro":
        return "<root>"
    if module.startswith("repro."):
        return module.split(".")[1]
    stem_parts = [*path.parts[:-1], path.stem]
    for part in reversed(stem_parts):
        if part in KNOWN_COMPONENTS:
            return part
    return ""


def _marker(decorators: List[ast.expr], name: str) -> bool:
    for deco in decorators:
        flat = dotted_name(deco)
        if flat == name or flat.endswith("." + name):
            return True
    return False


def _raises_only(body: List[ast.stmt]) -> bool:
    """True when every top-level statement (past a docstring) raises."""
    stmts = list(body)
    if stmts and isinstance(stmts[0], ast.Expr) and isinstance(
        stmts[0].value, ast.Constant
    ) and isinstance(stmts[0].value.value, str):
        stmts = stmts[1:]
    return bool(stmts) and all(isinstance(s, ast.Raise) for s in stmts)


def _call_descriptor(node: ast.Call) -> Optional[Tuple[str, str, int]]:
    func = node.func
    if isinstance(func, ast.Name):
        return ("name", func.id, node.lineno)
    flat = dotted_name(func)
    if not flat:
        return None
    head, _, rest = flat.partition(".")
    if head in ("self", "cls") and rest and "." not in rest:
        return ("self", rest, node.lineno)
    if head in ("self", "cls"):
        return None
    return ("attr", flat, node.lineno)


def _param_writes(
    func: ast.AST, params: Tuple[str, ...]
) -> Tuple[Tuple[int, int, str, str], ...]:
    """RPR003-style attribute writes rooted at a (non-self) parameter."""
    roots = set(params) - {"self", "cls"}
    if not roots:
        return ()
    out: List[Tuple[int, int, str, str]] = []
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for leaf in ast.walk(target):
                if not isinstance(leaf, ast.Attribute) or not isinstance(
                    leaf.ctx, ast.Store
                ):
                    continue
                base = leaf.value
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in roots:
                    out.append(
                        (leaf.lineno, leaf.col_offset + 1, base.id,
                         ast.unparse(leaf))
                    )
    return tuple(out)


def _mutable_binding(value: ast.expr) -> Optional[str]:
    """Constructor label when ``value`` builds a mutable container."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        callee = dotted_name(value.func)
        tail = callee.rsplit(".", 1)[-1] if callee else ""
        if tail in _MUTABLE_CONSTRUCTORS:
            return f"{tail}()"
    return None


class _Extractor(ast.NodeVisitor):
    """Single-pass walker building the function table and import list."""

    def __init__(self, module: str, is_init: bool) -> None:
        self.module = module
        self.is_init = is_init
        self.imports: List[ImportRecord] = []
        self.functions: List[FunctionInfo] = []
        self.classes: Dict[str, List[str]] = {}
        self._scope: List[str] = []  # qname segments
        self._class: List[str] = []  # enclosing class names
        self._context: List[str] = []  # "fn" / "tc" markers

    # -- imports ---------------------------------------------------------

    def _import_kind(self) -> str:
        if "fn" in self._context:
            return "lazy"
        if "tc" in self._context:
            return "tc"
        return "top"

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports.append(
                ImportRecord(
                    target=alias.name, kind=self._import_kind(),
                    line=node.lineno, col=node.col_offset + 1,
                    asname=alias.asname or "",
                )
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = self._resolve_from(node)
        if target:
            self.imports.append(
                ImportRecord(
                    target=target, kind=self._import_kind(),
                    line=node.lineno, col=node.col_offset + 1,
                    names=tuple(
                        (alias.name, alias.asname or alias.name)
                        for alias in node.names
                    ),
                )
            )
        self.generic_visit(node)

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        if not self.module:
            return ""  # relative import in an anonymous file: opaque
        base = self.module.split(".")
        if not self.is_init:
            base = base[:-1]
        cut = node.level - 1
        if cut > len(base):
            return ""
        base = base[:len(base) - cut] if cut else base
        return ".".join(base + ([node.module] if node.module else []))

    # -- TYPE_CHECKING guards -------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        guarded = "TYPE_CHECKING" in ast.unparse(node.test)
        self._context.append("tc" if guarded else "if")
        self.generic_visit(node)
        self._context.pop()

    # -- functions and classes ------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._scope:
            self.classes[node.name] = [
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
        self._class.append(node.name)
        self._scope.append(node.name)
        for item in node.body:
            self.visit(item)
        self._scope.pop()
        self._class.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _handle_function(self, node: ast.AST) -> None:
        qname = ".".join([*self._scope, node.name])
        params = tuple(function_params(node))
        calls: List[Tuple[str, str, int]] = []
        allocations: List[Tuple[int, int, str]] = []
        nested: List[ast.AST] = []

        def scan(n: ast.AST) -> None:
            for child in ast.iter_child_nodes(n):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    label = classify_allocation(child)
                    if label:
                        allocations.append(
                            (child.lineno, child.col_offset + 1, label)
                        )
                    nested.append(child)
                    continue
                if isinstance(child, ast.Lambda):
                    allocations.append(
                        (child.lineno, child.col_offset + 1,
                         "lambda closure created")
                    )
                    continue  # lambda bodies are opaque
                label = classify_allocation(child)
                if label:
                    allocations.append(
                        (child.lineno, child.col_offset + 1, label)
                    )
                if isinstance(child, ast.Call):
                    descriptor = _call_descriptor(child)
                    if descriptor:
                        calls.append(descriptor)
                scan(child)

        for stmt in node.body:
            label = classify_allocation(stmt)
            if label:
                allocations.append((stmt.lineno, stmt.col_offset + 1, label))
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.append(stmt)
                continue
            if isinstance(stmt, ast.Call):
                descriptor = _call_descriptor(stmt)
                if descriptor:
                    calls.append(descriptor)
            scan(stmt)

        self.functions.append(
            FunctionInfo(
                qname=qname,
                line=node.lineno,
                col=node.col_offset + 1,
                params=params,
                is_hotpath=_marker(node.decorator_list, "hotpath"),
                is_coldpath=_marker(node.decorator_list, "coldpath"),
                raises_only=_raises_only(node.body),
                calls=tuple(calls),
                allocations=tuple(allocations),
                param_writes=_param_writes(node, params),
            )
        )

        # Recurse: nested defs own their bodies; imports inside any
        # function body are "lazy".
        self._scope.append(node.name)
        self._scope.append("<locals>")
        self._context.append("fn")
        for child in nested:
            self.visit(child)
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        if isinstance(sub, ast.Import):
                            self.visit_Import(sub)
                        else:
                            self.visit_ImportFrom(sub)
        self._context.pop()
        self._scope.pop()
        self._scope.pop()


def _module_level_mutables(
    tree: ast.Module,
) -> Tuple[Tuple[int, int, str, str], ...]:
    out: List[Tuple[int, int, str, str]] = []

    def walk_top(body: List[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                walk_top(stmt.body)
                walk_top(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                walk_top(stmt.body)
                for handler in stmt.handlers:
                    walk_top(handler.body)
                walk_top(stmt.orelse)
                walk_top(stmt.finalbody)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is None:
                    continue
                label = _mutable_binding(value)
                if label is None:
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and not (
                        target.id.startswith("__")
                        and target.id.endswith("__")
                    ):
                        out.append(
                            (stmt.lineno, stmt.col_offset + 1,
                             target.id, label)
                        )

    walk_top(tree.body)
    return tuple(out)


def summarize_module(path: Path, tree: ast.Module) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one parsed module."""
    module = derive_module_name(path)
    extractor = _Extractor(module, path.name == "__init__.py")
    for stmt in tree.body:
        extractor.visit(stmt)
    return ModuleSummary(
        path=path.as_posix(),
        module=module,
        component=module_component(path, module),
        imports=tuple(extractor.imports),
        functions=tuple(extractor.functions),
        classes={k: tuple(v) for k, v in extractor.classes.items()},
        mutable_globals=_module_level_mutables(tree),
    )
