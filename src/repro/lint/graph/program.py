"""The whole-program view: import graph + conservative call graph.

:class:`ProgramGraph` is built from a bag of
:class:`~repro.lint.graph.summary.ModuleSummary` records (fresh or
cache-restored) and resolves the three call shapes the summaries keep:

* bare names — same-module functions (including nested siblings),
  same-module classes (→ ``__init__``) and ``from X import f`` bindings;
* ``self.m()`` / ``cls.m()`` — methods of the enclosing class;
* dotted calls — ``import``/``from`` bindings substituted, then matched
  against the longest known module prefix (``mod.f()``,
  ``mod.Class()``, ``mod.Class.method()``).

Anything else — calls through local variables, subscripts, returned
callables, bound methods stored in closure locals — is *opaque*: no
edge is created.  Graph rules are therefore under-approximate by
construction and must never rely on the absence of an edge to prove
safety, only on its presence to report a finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .summary import FunctionInfo, ImportRecord, ModuleSummary

__all__ = ["CallSite", "Node", "ProgramGraph"]

#: A function node: ``(dotted module name, qualified name in module)``.
Node = Tuple[str, str]


@dataclass(frozen=True, order=True)
class CallSite:
    """One resolved call edge, anchored at the call expression."""

    caller_module: str
    caller_qname: str
    callee_module: str
    callee_qname: str
    line: int

    @property
    def caller(self) -> Node:
        return (self.caller_module, self.caller_qname)

    @property
    def callee(self) -> Node:
        return (self.callee_module, self.callee_qname)


class _Bindings:
    """Name bindings one module's imports establish, for call resolution."""

    def __init__(self) -> None:
        #: local name -> dotted module path it abbreviates.
        self.module_alias: Dict[str, str] = {}
        #: local name -> (source module, member name) from ``from X import f``.
        self.member: Dict[str, Tuple[str, str]] = {}


class ProgramGraph:
    """Import and call graph over a set of module summaries."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries: Tuple[ModuleSummary, ...] = tuple(
            sorted(summaries, key=lambda s: s.path)
        )
        #: dotted module name -> summary (anonymous modules excluded).
        self.modules: Dict[str, ModuleSummary] = {
            s.module: s for s in self.summaries if s.module
        }
        #: posix path -> summary (every file, anonymous or not).
        self.by_path: Dict[str, ModuleSummary] = {
            s.path: s for s in self.summaries
        }
        self.functions: Dict[Node, FunctionInfo] = {}
        for summary in self.summaries:
            for fn in summary.functions:
                self.functions[(summary.module or summary.path, fn.qname)] = fn
        self._bindings: Dict[str, _Bindings] = {
            key: self._bind(summary)
            for key, summary in (
                (s.module or s.path, s) for s in self.summaries
            )
        }
        self.call_edges: Dict[Node, List[CallSite]] = {}
        for summary in self.summaries:
            self._resolve_module(summary)

    # -- construction ----------------------------------------------------

    def _bind(self, summary: ModuleSummary) -> _Bindings:
        bindings = _Bindings()
        for imp in summary.imports:
            if imp.names:  # from X import a, b
                for name, asname in imp.names:
                    submodule = f"{imp.target}.{name}"
                    if submodule in self.modules:
                        bindings.module_alias[asname] = submodule
                    else:
                        bindings.member[asname] = (imp.target, name)
            elif imp.asname:  # import a.b as m
                bindings.module_alias[imp.asname] = imp.target
            else:  # import a.b — binds the root name "a"
                root = imp.target.split(".")[0]
                bindings.module_alias.setdefault(root, root)
        return bindings

    def _resolve_module(self, summary: ModuleSummary) -> None:
        key = summary.module or summary.path
        bindings = self._bindings[key]
        for fn in summary.functions:
            caller: Node = (key, fn.qname)
            edges: List[CallSite] = []
            for kind, name, line in fn.calls:
                callee = self._resolve_call(summary, key, bindings, fn, kind, name)
                if callee is not None:
                    edges.append(
                        CallSite(
                            caller_module=key,
                            caller_qname=fn.qname,
                            callee_module=callee[0],
                            callee_qname=callee[1],
                            line=line,
                        )
                    )
            if edges:
                self.call_edges[caller] = edges

    def _local_function(
        self, summary: ModuleSummary, key: str, qname: str
    ) -> Optional[Node]:
        if (key, qname) in self.functions:
            return (key, qname)
        return None

    def _resolve_call(
        self,
        summary: ModuleSummary,
        key: str,
        bindings: _Bindings,
        fn: FunctionInfo,
        kind: str,
        name: str,
    ) -> Optional[Node]:
        if kind == "self":
            head = fn.qname.split(".")[0]
            if head in summary.classes and name in summary.classes[head]:
                return (key, f"{head}.{name}")
            return None
        if kind == "name":
            # Nested siblings first: f.<locals>.g calling h tries
            # f.<locals>.h before module-level h.
            if ".<locals>." in fn.qname:
                scope = fn.qname.rsplit(".", 1)[0]  # ... .<locals>
                while scope.endswith(".<locals>"):
                    candidate = self._local_function(
                        summary, key, f"{scope}.{name}"
                    )
                    if candidate:
                        return candidate
                    scope = scope[: -len(".<locals>")].rsplit(".", 1)[0]
                    if not scope.endswith("<locals>"):
                        break
            local = self._local_function(summary, key, name)
            if local:
                return local
            if name in summary.classes:
                return self._class_init(key, summary, name)
            if name in bindings.member:
                src, member = bindings.member[name]
                return self._member_target(src, member)
            return None
        if kind == "attr":
            head, _, rest = name.partition(".")
            if not rest:
                return None
            if head in bindings.module_alias:
                full = f"{bindings.module_alias[head]}.{rest}"
            elif head in self.modules:
                full = name
            else:
                return None
            return self._resolve_dotted(full)
        return None

    def _class_init(
        self, key: str, summary: ModuleSummary, cls: str
    ) -> Optional[Node]:
        if "__init__" in summary.classes.get(cls, ()):
            return (key, f"{cls}.__init__")
        return None

    def _member_target(self, module: str, member: str) -> Optional[Node]:
        summary = self.modules.get(module)
        if summary is None:
            return None
        key = summary.module
        if (key, member) in self.functions:
            return (key, member)
        if member in summary.classes:
            return self._class_init(key, summary, member)
        # Re-exported through a package __init__: follow one level of
        # ``from .sub import member`` indirection.
        for imp in summary.imports:
            for name, asname in imp.names:
                if asname == member and imp.target in self.modules:
                    return self._member_target(imp.target, name)
        return None

    def _resolve_dotted(self, full: str) -> Optional[Node]:
        # Longest known module prefix wins; the remainder must be a
        # function, a class (→ __init__) or Class.method in that module.
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module not in self.modules:
                continue
            summary = self.modules[module]
            rest = parts[cut:]
            if len(rest) == 1:
                if (module, rest[0]) in self.functions:
                    return (module, rest[0])
                if rest[0] in summary.classes:
                    return self._class_init(module, summary, rest[0])
                return self._member_target(module, rest[0])
            if len(rest) == 2 and rest[0] in summary.classes:
                if rest[1] in summary.classes[rest[0]]:
                    return (module, f"{rest[0]}.{rest[1]}")
            return None
        return None

    # -- queries ---------------------------------------------------------

    def iter_import_edges(
        self, kinds: Sequence[str] = ("top", "lazy", "tc")
    ) -> Iterator[Tuple[ModuleSummary, ImportRecord, str]]:
        """Yield ``(source summary, record, target module)`` for known
        targets, expanding ``from pkg import submodule`` to the
        submodule when it exists in the program."""
        wanted = set(kinds)
        for summary in self.summaries:
            for imp in summary.imports:
                if imp.kind not in wanted:
                    continue
                if imp.target in self.modules:
                    yield summary, imp, imp.target
                for name, _ in imp.names:
                    sub = f"{imp.target}.{name}"
                    if sub in self.modules:
                        yield summary, imp, sub

    def import_closure(
        self, roots: Sequence[str], kinds: Sequence[str] = ("top", "lazy")
    ) -> Set[str]:
        """Modules transitively imported from ``roots`` (roots included).

        Importing ``a.b.c`` executes ``a`` and ``a.b`` too, so parent
        packages are always pulled into the closure.
        """
        wanted = set(kinds)
        closure: Set[str] = set()
        stack = [m for m in roots if m in self.modules]
        while stack:
            module = stack.pop()
            if module in closure:
                continue
            closure.add(module)
            parts = module.split(".")
            for cut in range(1, len(parts)):
                parent = ".".join(parts[:cut])
                if parent in self.modules and parent not in closure:
                    stack.append(parent)
            summary = self.modules[module]
            for imp in summary.imports:
                if imp.kind not in wanted:
                    continue
                if imp.target in self.modules:
                    stack.append(imp.target)
                for name, _ in imp.names:
                    sub = f"{imp.target}.{name}"
                    if sub in self.modules:
                        stack.append(sub)
        return closure

    def reachable(
        self, roots: Sequence[Node], stop: Optional[Set[Node]] = None
    ) -> Dict[Node, Optional[CallSite]]:
        """BFS over call edges from ``roots``.

        Returns ``node -> incoming CallSite`` (``None`` for roots), so
        callers can reconstruct the call chain of any reached node.
        Nodes in ``stop`` are reached but not expanded.
        """
        stop = stop or set()
        parents: Dict[Node, Optional[CallSite]] = {}
        queue: List[Node] = []
        for root in roots:
            if root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            node = queue.pop(0)
            if node in stop:
                continue
            for edge in self.call_edges.get(node, ()):
                if edge.callee not in parents:
                    parents[edge.callee] = edge
                    queue.append(edge.callee)
        return parents

    @staticmethod
    def call_chain(
        parents: Dict[Node, Optional[CallSite]], node: Node
    ) -> List[Node]:
        """Root-to-``node`` path through the BFS parent map."""
        chain = [node]
        seen = {node}
        edge = parents.get(node)
        while edge is not None:
            caller = edge.caller
            if caller in seen:
                break
            chain.append(caller)
            seen.add(caller)
            edge = parents.get(caller)
        return list(reversed(chain))
