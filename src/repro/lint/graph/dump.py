"""Render a :class:`~repro.lint.graph.program.ProgramGraph` for humans.

Two formats, both deterministic (sorted nodes and edges, no
timestamps), so dumps diff cleanly across runs:

* ``dot`` — Graphviz digraph of the *import* graph, modules clustered
  by component, eager imports solid, lazy imports dashed,
  ``TYPE_CHECKING`` imports dotted.
* ``json`` — the full machine view: per-module imports, the function
  table and every resolved call edge.
"""

from __future__ import annotations

import json
from typing import Dict, List, Set, Tuple

from .program import ProgramGraph

__all__ = ["dump_dot", "dump_json"]

_STYLE = {"top": "solid", "lazy": "dashed", "tc": "dotted"}


def dump_dot(graph: ProgramGraph) -> str:
    """Graphviz source of the import graph, clustered by component."""
    lines: List[str] = [
        "digraph repro_imports {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace", fontsize=10];',
    ]
    clusters: Dict[str, List[str]] = {}
    for summary in graph.summaries:
        if not summary.module:
            continue
        clusters.setdefault(summary.component or "?", []).append(summary.module)
    for index, component in enumerate(sorted(clusters)):
        lines.append(f'  subgraph "cluster_{index}" {{')
        lines.append(f'    label="{component}";')
        for module in sorted(clusters[component]):
            lines.append(f'    "{module}";')
        lines.append("  }")
    edges: Set[Tuple[str, str, str]] = set()
    for summary, record, target in graph.iter_import_edges():
        if summary.module and summary.module != target:
            edges.add((summary.module, target, record.kind))
    for source, target, kind in sorted(edges):
        style = _STYLE.get(kind, "solid")
        lines.append(f'  "{source}" -> "{target}" [style={style}];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def dump_json(graph: ProgramGraph) -> str:
    """JSON document with modules, imports, functions and call edges."""
    modules = []
    for summary in graph.summaries:
        key = summary.module or summary.path
        functions = []
        for fn in summary.functions:
            calls = [
                {
                    "module": edge.callee_module,
                    "qname": edge.callee_qname,
                    "line": edge.line,
                }
                for edge in graph.call_edges.get((key, fn.qname), ())
            ]
            functions.append(
                {
                    "qname": fn.qname,
                    "line": fn.line,
                    "hotpath": fn.is_hotpath,
                    "coldpath": fn.is_coldpath,
                    "calls": calls,
                }
            )
        modules.append(
            {
                "path": summary.path,
                "module": summary.module,
                "component": summary.component,
                "imports": [
                    {"target": imp.target, "kind": imp.kind, "line": imp.line}
                    for imp in summary.imports
                ],
                "functions": functions,
                "mutable_globals": [
                    {"name": name, "line": line, "constructor": label}
                    for line, _, name, label in summary.mutable_globals
                ],
            }
        )
    return json.dumps({"modules": modules}, indent=2, sort_keys=True) + "\n"
