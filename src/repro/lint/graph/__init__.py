"""Whole-program analysis substrate for ``repro.lint``.

The per-file rules (RPR001–RPR009) see one module at a time; the rules
that guard *cross-module* seams (RPR010–RPR013) need to know who calls
whom and who imports whom across the whole tree.  This package supplies
that substrate in three stdlib-only pieces:

* :mod:`~repro.lint.graph.summary` — a compact, JSON-serialisable
  :class:`ModuleSummary` extracted from each parsed module: imports
  (with their laziness), a function table with call sites, allocation
  sites, parameter attribute writes and ``@hotpath``/``@coldpath``
  markers, and module-level mutable global bindings.  Summaries are
  what the content-hash cache stores, so warm runs rebuild the program
  graph without re-parsing a single unchanged file.
* :mod:`~repro.lint.graph.program` — :class:`ProgramGraph`, the
  whole-program view over a set of summaries: an import graph (with
  parent-package edges) and a conservative, name-resolution-based
  intra-package call graph, plus the BFS reachability helpers the
  graph rules are written against.
* :mod:`~repro.lint.graph.layers` — the declared architecture layer
  DAG that RPR011 enforces (see ``docs/static_analysis.md``).

:mod:`~repro.lint.graph.dump` renders the graph as DOT or JSON for the
``repro-lint --graph`` CLI.
"""

from __future__ import annotations

from .layers import LAYER_INDEX, LAYER_TABLE, component_layer
from .program import CallSite, ProgramGraph
from .summary import FunctionInfo, ImportRecord, ModuleSummary, summarize_module

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ImportRecord",
    "LAYER_INDEX",
    "LAYER_TABLE",
    "ModuleSummary",
    "ProgramGraph",
    "component_layer",
    "summarize_module",
]
