"""Physical units, conversions and small numeric helpers.

The library works internally in SI-ish engineering units:

========================  =======================================
quantity                  unit
========================  =======================================
time                      seconds (``s``)
temperature               degrees Celsius (``°C``)
power                     watts (``W``)
energy                    joules (``J``)
frequency (CPU)           hertz (``Hz``); helpers accept GHz
fan speed                 revolutions per minute (``RPM``)
PWM duty cycle            fraction in ``[0, 1]`` (helpers accept %)
airflow                   cubic feet per minute (``CFM``)
thermal resistance        kelvin per watt (``K/W``)
thermal capacitance       joules per kelvin (``J/K``)
voltage                   volts (``V``)
========================  =======================================

Duty cycles are *fractions* internally; the paper (and the ADT7467
datasheet) quote percentages, so :func:`duty_from_percent` /
:func:`duty_to_percent` are provided for the boundary.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError

__all__ = [
    "GHZ",
    "MHZ",
    "KHZ",
    "CELSIUS_TO_KELVIN_OFFSET",
    "ghz",
    "to_ghz",
    "duty_from_percent",
    "duty_to_percent",
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "clamp",
    "lerp",
    "inv_lerp",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "almost_equal",
]

#: Number of hertz in one gigahertz.
GHZ: float = 1.0e9
#: Number of hertz in one megahertz.
MHZ: float = 1.0e6
#: Number of hertz in one kilohertz.
KHZ: float = 1.0e3

#: Additive offset between Celsius and Kelvin scales.
CELSIUS_TO_KELVIN_OFFSET: float = 273.15


def ghz(value: float) -> float:
    """Convert a frequency given in GHz to Hz.

    >>> ghz(2.4)
    2400000000.0
    """
    return float(value) * GHZ


def to_ghz(hz: float) -> float:
    """Convert a frequency in Hz to GHz.

    >>> to_ghz(2.4e9)
    2.4
    """
    return float(hz) / GHZ


def duty_from_percent(percent: float) -> float:
    """Convert a PWM duty cycle from percent to a fraction.

    Parameters
    ----------
    percent:
        Duty cycle in ``[0, 100]``.

    Raises
    ------
    ConfigurationError
        If ``percent`` is outside ``[0, 100]``.
    """
    if not 0.0 <= percent <= 100.0:
        raise ConfigurationError(
            f"PWM duty cycle must be in [0, 100] percent, got {percent!r}"
        )
    return float(percent) / 100.0


def duty_to_percent(duty: float) -> float:
    """Convert a fractional PWM duty cycle to percent."""
    if not 0.0 <= duty <= 1.0:
        raise ConfigurationError(
            f"PWM duty fraction must be in [0, 1], got {duty!r}"
        )
    return float(duty) * 100.0


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    return float(celsius) + CELSIUS_TO_KELVIN_OFFSET


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from Kelvin to Celsius."""
    return float(kelvin) - CELSIUS_TO_KELVIN_OFFSET


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``.

    Raises
    ------
    ConfigurationError
        If ``low > high``.
    """
    if low > high:
        raise ConfigurationError(f"clamp bounds reversed: [{low}, {high}]")
    return max(low, min(high, value))


def lerp(a: float, b: float, t: float) -> float:
    """Linear interpolation between ``a`` and ``b`` at parameter ``t``.

    ``t`` is not clamped; ``t=0`` gives ``a``, ``t=1`` gives ``b``.
    """
    return a + (b - a) * t


def inv_lerp(a: float, b: float, value: float) -> float:
    """Inverse of :func:`lerp`: the parameter ``t`` at which ``lerp(a, b, t)
    == value``.

    Raises
    ------
    ConfigurationError
        If ``a == b`` (the mapping is not invertible).
    """
    if a == b:
        raise ConfigurationError("inv_lerp requires a != b")
    return (value - a) / (b - a)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not (value > 0.0) or math.isnan(value):
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if not (value >= 0.0) or math.isnan(value):
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``value`` lies in ``[low, high]`` and return it."""
    if math.isnan(value) or not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return float(value)


def almost_equal(a: float, b: float, *, rel: float = 1e-9, abs_: float = 1e-12) -> bool:
    """Floating-point comparison with both relative and absolute tolerance."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)
