"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime simulation
problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ActuatorError",
    "BusError",
    "DeviceError",
    "WorkloadError",
    "PolicyError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid or inconsistent parameters.

    Raised eagerly at construction time so that a mis-specified platform
    fails before a simulation starts, never half-way through one.
    """


class SimulationError(ReproError, RuntimeError):
    """The simulation engine reached an inconsistent state.

    Examples: stepping a finished simulation, registering a component
    after the run loop has started, or a component raising during a step.
    """


class ActuatorError(ReproError, RuntimeError):
    """An actuator (fan, DVFS, sleep-state) rejected a requested mode."""


class BusError(ReproError, RuntimeError):
    """An i2c bus transaction failed (no device at address, NACK, ...)."""


class DeviceError(ReproError, RuntimeError):
    """A device-model register access was invalid (bad register, RO write)."""


class WorkloadError(ReproError, RuntimeError):
    """A workload was driven incorrectly (e.g. stepped after completion)."""


class PolicyError(ConfigurationError):
    """A thermal-control policy parameter (``P_p``, bounds, ...) is invalid."""


class TelemetryError(ConfigurationError):
    """A telemetry instrument was registered or used inconsistently.

    Examples: re-registering ``name`` as a different metric type, or
    two histograms sharing a name but disagreeing on bucket bounds.
    """
