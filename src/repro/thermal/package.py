"""CPU package thermal model: die + heatsink over ambient.

This wraps :class:`~repro.thermal.rc.RCNetwork` into the specific
two-mass topology of a socketed processor:

.. code-block:: text

    P_cpu ──▶ [die  C_die] ──R_jhs──▶ [sink C_sink] ──R_conv(Q)──▶ (ambient)

``R_jhs`` (junction/IHS/TIM to sink) is fixed by the mechanical
assembly; ``R_conv`` is updated every step from the fan's airflow via a
:class:`~repro.thermal.convection.ConvectionModel`.  The die time
constant is ~1 s (this is what makes Type-I "sudden" behaviour visible
at a 4 Hz sample rate) and the sink time constant is tens of seconds
(Type-II "gradual" drift).

Default parameters are calibrated so that a ~55 W Athlon64-class load
equilibrates near 58 °C at 25 % fan duty and near 50 °C at 100 % duty —
the ≈8 °C spread of the paper's Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import require_non_negative, require_positive
from .ambient import AmbientModel, ConstantAmbient
from .convection import ConvectionModel
from .rc import RCNetwork, ThermalLink, ThermalNode

__all__ = ["PackageParams", "CpuPackage"]


@dataclass(frozen=True)
class PackageParams:
    """Physical constants of the die/heatsink assembly.

    Attributes
    ----------
    c_die:
        Die + IHS + spreader heat capacity, J/K.  Sets the "sudden"
        response (~4 s) and smooths sub-second power swings the way the
        real part's thermal mass does — per-iteration MPI power dips
        must read as fractions of a kelvin, not whole kelvins, or they
        would drown the gradual trend the level-two window tracks.
    c_sink:
        Heatsink heat capacity, J/K.  Sets the "gradual" time constant.
    r_junction_sink:
        Conduction resistance die → sink (includes TIM), K/W.
    initial_temperature:
        Temperature of die and sink at t=0, °C (defaults to ambient-ish).
    """

    c_die: float = 25.0
    c_sink: float = 200.0
    r_junction_sink: float = 0.15
    initial_temperature: float = 38.0

    def __post_init__(self) -> None:
        require_positive(self.c_die, "c_die")
        require_positive(self.c_sink, "c_sink")
        require_positive(self.r_junction_sink, "r_junction_sink")
        if not -20.0 <= self.initial_temperature <= 120.0:
            raise ConfigurationError(
                f"initial_temperature {self.initial_temperature!r} °C "
                "is outside the plausible [-20, 120] range"
            )


class CpuPackage:
    """The die + heatsink thermal stack of one processor.

    Parameters
    ----------
    params:
        Mechanical/thermal constants.
    convection:
        Airflow → resistance model for the sink-to-air hop.
    ambient:
        Boundary temperature model.
    name:
        Prefix for internal node names (useful in multi-node debugging).
    """

    def __init__(
        self,
        params: PackageParams | None = None,
        convection: ConvectionModel | None = None,
        ambient: AmbientModel | None = None,
        name: str = "cpu",
    ) -> None:
        self.params = params if params is not None else PackageParams()
        self.convection = convection if convection is not None else ConvectionModel()
        self.ambient = ambient if ambient is not None else ConstantAmbient()
        self.name = name

        p = self.params
        self._net = RCNetwork()
        self._die = f"{name}.die"
        self._sink = f"{name}.sink"
        self._amb = f"{name}.ambient"
        self._net.add_node(
            ThermalNode(self._die, p.c_die, p.initial_temperature)
        )
        self._net.add_node(
            ThermalNode(self._sink, p.c_sink, p.initial_temperature)
        )
        self._net.add_node(
            ThermalNode(self._amb, None, self.ambient.temperature(0.0))
        )
        self._net.add_link(
            ThermalLink(f"{name}.jhs", self._die, self._sink, p.r_junction_sink)
        )
        # Convective link starts at the still-air value; updated each step.
        self._conv_link = self._net.add_link(
            ThermalLink(
                f"{name}.conv",
                self._sink,
                self._amb,
                self.convection.resistance(0.0),
            )
        )
        self._power = 0.0
        self._airflow = 0.0

    # -- inputs ---------------------------------------------------------------

    def set_power(self, watts: float) -> None:
        """Set the heat dissipated in the die (W)."""
        self._power = require_non_negative(watts, "CPU power")

    def set_airflow(self, cfm: float) -> None:
        """Set the airflow over the heatsink (CFM)."""
        self._airflow = require_non_negative(cfm, "airflow")

    # -- outputs ----------------------------------------------------------

    @property
    def die_temperature(self) -> float:
        """True (un-quantized) die temperature in °C."""
        return self._net.temperature(self._die)

    @property
    def sink_temperature(self) -> float:
        """Heatsink temperature in °C."""
        return self._net.temperature(self._sink)

    @property
    def ambient_temperature(self) -> float:
        """Current boundary (inlet air) temperature in °C."""
        return self._net.temperature(self._amb)

    @property
    def power(self) -> float:
        """Heat currently injected into the die, W."""
        return self._power

    @property
    def airflow(self) -> float:
        """Airflow currently applied over the sink, CFM."""
        return self._airflow

    @property
    def convective_resistance(self) -> float:
        """Sink-to-air resistance at the current airflow, K/W."""
        return self._conv_link.resistance

    # -- dynamics --------------------------------------------------------

    def step(self, t: float, dt: float) -> None:
        """Advance the package thermal state by ``dt`` seconds ending at ``t``."""
        self._conv_link.resistance = self.convection.resistance(self._airflow)
        self._net.set_temperature(self._amb, self.ambient.temperature(t))
        self._net.set_power(self._die, self._power)
        self._net.step(dt)

    def steady_state_die_temperature(
        self, watts: float | None = None, airflow: float | None = None
    ) -> float:
        """Equilibrium die temperature for given (or current) inputs.

        Does not disturb the dynamic state — used for calibration and by
        tests as an analytic oracle:
        ``T_die = T_amb + P·(R_jhs + R_conv(Q))``.
        """
        p = self._power if watts is None else require_non_negative(watts, "watts")
        q = self._airflow if airflow is None else require_non_negative(airflow, "airflow")
        r_total = self.params.r_junction_sink + self.convection.resistance(q)
        return self._net.temperature(self._amb) + p * r_total

    def reset(self, temperature: float | None = None) -> None:
        """Reset die and sink to ``temperature`` (default: initial temp)."""
        temp = (
            self.params.initial_temperature if temperature is None else float(temperature)
        )
        self._net.set_temperature(self._die, temp)
        self._net.set_temperature(self._sink, temp)
