"""Thermal physics substrate.

The paper's controller runs against real silicon; here the silicon is a
lumped-parameter RC thermal network (:mod:`repro.thermal.rc`) wrapped in
a CPU package model (:mod:`repro.thermal.package`) whose sink-to-air
resistance is set by the fan's airflow through a forced-convection
correlation (:mod:`repro.thermal.convection`).  A quantized, noisy
sensor (:mod:`repro.thermal.sensor`) emulates the lm-sensors readings
the paper sampled at 4 Hz.
"""

from .ambient import AmbientModel, ConstantAmbient, RackAmbient, SinusoidalAmbient
from .convection import ConvectionModel
from .multicore import MulticorePackage
from .package import CpuPackage, PackageParams
from .rc import RCNetwork, ThermalLink, ThermalNode
from .sensor import SensorParams, ThermalSensor

__all__ = [
    "ThermalNode",
    "ThermalLink",
    "RCNetwork",
    "ConvectionModel",
    "PackageParams",
    "CpuPackage",
    "MulticorePackage",
    "AmbientModel",
    "ConstantAmbient",
    "SinusoidalAmbient",
    "RackAmbient",
    "SensorParams",
    "ThermalSensor",
]
