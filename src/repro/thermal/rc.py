"""Generic lumped-parameter RC thermal networks.

A thermal network is a graph of nodes (thermal masses with heat
capacity, or fixed-temperature boundaries) joined by links (thermal
resistances).  The governing equations are the standard electro-thermal
analogy:

.. math::

    C_i \\frac{dT_i}{dt} = P_i + \\sum_{j \\sim i} \\frac{T_j - T_i}{R_{ij}}

where :math:`P_i` is power injected into node *i* and the sum runs over
links incident to *i*.  Boundary nodes (``capacitance=None``) hold their
temperature regardless of flux — they model ambient air or a chilled
plate.

Link resistances may change between steps (the fan changes the
convective resistance every tick), so the network re-reads resistances
each step rather than caching a factorized system.  Integration is
explicit (forward Euler) with automatic sub-stepping to honour the
stability bound ``dt < C_i / G_ii``; for the stiff-ish 2-node CPU
package this costs nothing, and it keeps the integrator exact in
behaviour for arbitrary user-built networks.

The class also provides :meth:`RCNetwork.steady_state`, a direct linear
solve for the equilibrium temperatures under constant powers — used by
calibration code and extensively by the test suite as an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..units import require_positive

__all__ = ["ThermalNode", "ThermalLink", "RCNetwork"]


@dataclass
class ThermalNode:
    """One lump of the thermal network.

    Parameters
    ----------
    name:
        Unique identifier within the network.
    capacitance:
        Heat capacity in J/K, or ``None`` for a fixed-temperature
        boundary node.
    temperature:
        Initial (and, for boundary nodes, held) temperature in °C.
    """

    name: str
    capacitance: Optional[float]
    temperature: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("thermal node name must be non-empty")
        if self.capacitance is not None:
            require_positive(self.capacitance, f"capacitance of {self.name!r}")

    @property
    def is_boundary(self) -> bool:
        """True when this node holds a fixed temperature."""
        return self.capacitance is None


class ThermalLink:
    """A thermal resistance between two nodes.

    The resistance may be changed at any time via :attr:`resistance`
    (e.g. by a convection model reacting to fan speed).
    """

    __slots__ = ("name", "a", "b", "_resistance", "_observer", "_slot")

    def __init__(self, name: str, a: str, b: str, resistance: float) -> None:
        if a == b:
            raise ConfigurationError(f"link {name!r} connects {a!r} to itself")
        self.name = name
        self.a = a
        self.b = b
        self._resistance = require_positive(resistance, f"resistance of {name!r}")
        # Set by a compiled stepper (repro.fastpath) so resistance writes
        # invalidate exactly the cached coefficient rows they touch.
        self._observer = None
        self._slot = -1

    @property
    def resistance(self) -> float:
        """Thermal resistance in K/W."""
        return self._resistance

    @resistance.setter
    def resistance(self, value: float) -> None:
        self._resistance = require_positive(value, f"resistance of {self.name!r}")
        observer = self._observer
        if observer is not None:
            observer.mark_link_dirty(self._slot)

    @property
    def conductance(self) -> float:
        """Thermal conductance in W/K (reciprocal resistance)."""
        return 1.0 / self._resistance


class RCNetwork:
    """A mutable lumped RC thermal network with an explicit integrator.

    Typical usage::

        net = RCNetwork()
        net.add_node(ThermalNode("die", capacitance=8.0, temperature=30.0))
        net.add_node(ThermalNode("ambient", capacitance=None, temperature=25.0))
        net.add_link(ThermalLink("conv", "die", "ambient", resistance=0.5))
        net.set_power("die", 40.0)
        net.step(0.05)
        net.temperature("die")
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, ThermalNode] = {}
        self._links: Dict[str, ThermalLink] = {}
        self._order: List[str] = []
        self._powers: Dict[str, float] = {}
        # Compiled stepper attached by repro.fastpath; None means the
        # reference (re-assemble every step) path below is used.
        self._fast = None

    # -- construction ----------------------------------------------------

    def add_node(self, node: ThermalNode) -> ThermalNode:
        """Add a node; names must be unique."""
        if node.name in self._nodes:
            raise ConfigurationError(f"duplicate thermal node {node.name!r}")
        self._nodes[node.name] = node
        self._order.append(node.name)
        self._powers[node.name] = 0.0
        self._invalidate_fast()
        return node

    def add_link(self, link: ThermalLink) -> ThermalLink:
        """Add a link; both endpoints must already exist."""
        for endpoint in (link.a, link.b):
            if endpoint not in self._nodes:
                raise ConfigurationError(
                    f"link {link.name!r} references unknown node {endpoint!r}"
                )
        if link.name in self._links:
            raise ConfigurationError(f"duplicate thermal link {link.name!r}")
        self._links[link.name] = link
        self._invalidate_fast()
        return link

    def _invalidate_fast(self) -> None:
        """Drop any attached compiled stepper after a structural change."""
        fast = self._fast
        if fast is not None:
            self._fast = None
            fast.detach()

    def node(self, name: str) -> ThermalNode:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(
                f"no thermal node named {name!r}; have {sorted(self._nodes)}"
            ) from None

    def link(self, name: str) -> ThermalLink:
        """Look up a link by name."""
        try:
            return self._links[name]
        except KeyError:
            raise ConfigurationError(
                f"no thermal link named {name!r}; have {sorted(self._links)}"
            ) from None

    @property
    def node_names(self) -> List[str]:
        """Node names in insertion order."""
        return list(self._order)

    # -- state -------------------------------------------------------------

    def set_power(self, name: str, watts: float) -> None:
        """Set the power injected into node ``name`` (W, may be negative)."""
        if name not in self._nodes:
            raise ConfigurationError(f"no thermal node named {name!r}")
        if np.isnan(watts):
            raise ConfigurationError(f"power into {name!r} is NaN")
        self._powers[name] = float(watts)

    def power(self, name: str) -> float:
        """Current power injection into ``name`` in watts."""
        return self._powers[self.node(name).name]

    def temperature(self, name: str) -> float:
        """Current temperature of node ``name`` in °C."""
        return self.node(name).temperature

    def set_temperature(self, name: str, celsius: float) -> None:
        """Force a node's temperature (initial conditions, boundary drive)."""
        self.node(name).temperature = float(celsius)

    def temperatures(self) -> Dict[str, float]:
        """Mapping of node name to current temperature."""
        return {n: self._nodes[n].temperature for n in self._order}

    # -- dynamics ------------------------------------------------------------

    def _assemble(self) -> tuple:
        """Build (free names, conductance matrix G, forcing vector b, caps C).

        For free (non-boundary) nodes the ODE is
        ``C dT/dt = -G T + b`` with ``b`` collecting injected power and
        flux from boundary nodes.
        """
        free = [n for n in self._order if not self._nodes[n].is_boundary]
        index = {n: i for i, n in enumerate(free)}
        m = len(free)
        G = np.zeros((m, m), dtype=np.float64)
        b = np.array([self._powers[n] for n in free], dtype=np.float64)
        for link in self._links.values():
            g = link.conductance
            a_free = link.a in index
            b_free = link.b in index
            if a_free:
                i = index[link.a]
                G[i, i] += g
                if b_free:
                    G[i, index[link.b]] -= g
                else:
                    b[i] += g * self._nodes[link.b].temperature
            if b_free:
                j = index[link.b]
                G[j, j] += g
                if a_free:
                    G[j, index[link.a]] -= g
                else:
                    b[j] += g * self._nodes[link.a].temperature
        C = np.array([self._nodes[n].capacitance for n in free], dtype=np.float64)
        return free, G, b, C

    def step(self, dt: float) -> None:
        """Advance all free node temperatures by ``dt`` seconds.

        Uses forward Euler with automatic sub-stepping: the sub-step is
        chosen as half the stability limit ``min_i C_i / G_ii``, so the
        integration is stable for any (positive-resistance) network.

        When a compiled stepper (repro.fastpath) is attached, it takes
        over — its arithmetic is bit-identical to the loop below.
        """
        fast = self._fast
        if fast is not None:
            fast.step(dt)
            return
        require_positive(dt, "dt")
        free, G, b, C = self._assemble()
        if not free:
            return
        diag = np.diag(G)
        with np.errstate(divide="ignore"):
            limits = np.where(diag > 0, C / np.maximum(diag, 1e-300), np.inf)
        h_max = 0.5 * float(np.min(limits))
        if not np.isfinite(h_max) or h_max <= 0:
            h_max = dt
        n_sub = max(1, int(np.ceil(dt / h_max)))
        h = dt / n_sub
        T = np.array([self._nodes[n].temperature for n in free], dtype=np.float64)
        for _ in range(n_sub):
            dTdt = (b - G @ T) / C
            T += h * dTdt
        if not np.all(np.isfinite(T)):
            raise SimulationError("thermal integration diverged (non-finite T)")
        for name, temp in zip(free, T):
            self._nodes[name].temperature = float(temp)

    def steady_state(self) -> Dict[str, float]:
        """Equilibrium temperatures under the current powers/resistances.

        Solves ``G T = b`` directly.  Boundary nodes keep their held
        temperature.  Raises :class:`SimulationError` if the network has
        a free node with no path to any boundary (singular system).
        """
        free, G, b, _ = self._assemble()
        out = {
            n: self._nodes[n].temperature
            for n in self._order
            if self._nodes[n].is_boundary
        }
        if free:
            try:
                T = np.linalg.solve(G, b)
            except np.linalg.LinAlgError as exc:
                raise SimulationError(
                    "steady state is singular: some free node has no "
                    "path to a boundary node"
                ) from exc
            out.update({n: float(t) for n, t in zip(free, T)})
        return out

    def total_stored_energy(self, reference: float = 0.0) -> float:
        """Thermal energy stored relative to ``reference`` °C, in joules.

        Useful for conservation checks in tests: with no injected power
        and adiabatic (boundary-free) networks this is invariant.
        """
        total = 0.0
        for name in self._order:
            node = self._nodes[name]
            if node.capacitance is not None:
                total += node.capacitance * (node.temperature - reference)
        return total
