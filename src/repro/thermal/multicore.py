"""Multi-core package model: per-core hotspots under one heatsink.

The paper's testbed is single-core, but its future work points at
larger systems where *on-chip* hot spots matter.  This substrate
extends the package model to N cores:

.. code-block:: text

    P_0 ─▶ [core0] ──R_cs──┐
    P_1 ─▶ [core1] ──R_cs──┤
      ...                  ├─▶ [sink] ──R_conv(Q)──▶ (ambient)
    P_n ─▶ [coreN] ──R_cs──┘
              │  R_cc  │
              └─lateral─┘

Each core has its own thermal mass and conduction path into the shared
sink, plus lateral conduction to its ring neighbours (heat spreading
through the die).  The hottest core is what a per-package sensor-based
controller sees — :attr:`MulticorePackage.die_temperature` reports it,
so the model drops into :class:`~repro.thermal.sensor.ThermalSensor`
and the whole controller stack unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..units import require_non_negative, require_positive
from .ambient import AmbientModel, ConstantAmbient
from .convection import ConvectionModel
from .rc import RCNetwork, ThermalLink, ThermalNode

__all__ = ["MulticorePackage"]


class MulticorePackage:
    """N cores sharing one heatsink.

    Parameters
    ----------
    n_cores:
        Core count (>= 2; use
        :class:`~repro.thermal.package.CpuPackage` for one).
    c_core:
        Per-core thermal capacitance, J/K.
    c_sink:
        Heatsink capacitance, J/K.
    r_core_sink:
        Conduction resistance core → sink, K/W (per core).
    r_core_core:
        Lateral conduction between ring neighbours, K/W.
    convection:
        Sink-to-air model.
    ambient:
        Inlet air model.
    initial_temperature:
        All masses start here, °C.
    """

    def __init__(
        self,
        n_cores: int = 4,
        c_core: float = 8.0,
        c_sink: float = 200.0,
        r_core_sink: float = 0.45,
        r_core_core: float = 1.2,
        convection: Optional[ConvectionModel] = None,
        ambient: Optional[AmbientModel] = None,
        initial_temperature: float = 38.0,
        name: str = "mc",
    ) -> None:
        if n_cores < 2:
            raise ConfigurationError(
                f"MulticorePackage needs >= 2 cores, got {n_cores}"
            )
        require_positive(c_core, "c_core")
        require_positive(c_sink, "c_sink")
        require_positive(r_core_sink, "r_core_sink")
        require_positive(r_core_core, "r_core_core")
        self.n_cores = n_cores
        self.convection = convection if convection is not None else ConvectionModel()
        self.ambient = ambient if ambient is not None else ConstantAmbient()
        self.name = name

        self._net = RCNetwork()
        self._cores = [f"{name}.core{i}" for i in range(n_cores)]
        self._sink = f"{name}.sink"
        self._amb = f"{name}.ambient"
        for core in self._cores:
            self._net.add_node(ThermalNode(core, c_core, initial_temperature))
        self._net.add_node(ThermalNode(self._sink, c_sink, initial_temperature))
        self._net.add_node(
            ThermalNode(self._amb, None, self.ambient.temperature(0.0))
        )
        for i, core in enumerate(self._cores):
            self._net.add_link(
                ThermalLink(f"{core}.cs", core, self._sink, r_core_sink)
            )
            # ring topology: lateral spreading to the next core
            neighbour = self._cores[(i + 1) % n_cores]
            if n_cores > 2 or i == 0:  # avoid a duplicate link when N=2
                self._net.add_link(
                    ThermalLink(f"{core}.lat", core, neighbour, r_core_core)
                )
        self._conv = self._net.add_link(
            ThermalLink(
                f"{name}.conv", self._sink, self._amb,
                self.convection.resistance(0.0),
            )
        )
        self._powers = [0.0] * n_cores
        self._airflow = 0.0

    # -- inputs ------------------------------------------------------------

    def set_core_power(self, core: int, watts: float) -> None:
        """Set the heat dissipated in one core, W."""
        if not 0 <= core < self.n_cores:
            raise ConfigurationError(
                f"core index {core} out of range [0, {self.n_cores - 1}]"
            )
        self._powers[core] = require_non_negative(watts, "core power")

    def set_powers(self, watts: Sequence[float]) -> None:
        """Set all core powers at once."""
        if len(watts) != self.n_cores:
            raise ConfigurationError(
                f"need {self.n_cores} powers, got {len(watts)}"
            )
        for i, w in enumerate(watts):
            self.set_core_power(i, w)

    def set_airflow(self, cfm: float) -> None:
        """Set the airflow over the shared sink, CFM."""
        self._airflow = require_non_negative(cfm, "airflow")

    # -- outputs -----------------------------------------------------------

    def core_temperature(self, core: int) -> float:
        """Temperature of one core, °C."""
        if not 0 <= core < self.n_cores:
            raise ConfigurationError(
                f"core index {core} out of range [0, {self.n_cores - 1}]"
            )
        return self._net.temperature(self._cores[core])

    def core_temperatures(self) -> List[float]:
        """All core temperatures, index order."""
        return [self._net.temperature(c) for c in self._cores]

    @property
    def die_temperature(self) -> float:
        """Hottest core, °C — what a per-package diode sensor reports."""
        return max(self.core_temperatures())

    @property
    def sink_temperature(self) -> float:
        """Shared heatsink temperature, °C."""
        return self._net.temperature(self._sink)

    @property
    def ambient_temperature(self) -> float:
        """Inlet air temperature, °C — the fan chip's local diode."""
        return self._net.temperature(self._amb)

    @property
    def hotspot_spread(self) -> float:
        """Hottest minus coolest core, K — the on-chip gradient."""
        temps = self.core_temperatures()
        return max(temps) - min(temps)

    # -- dynamics ----------------------------------------------------------

    def step(self, t: float, dt: float) -> None:
        """Advance the package by ``dt`` seconds ending at ``t``."""
        self._conv.resistance = self.convection.resistance(self._airflow)
        self._net.set_temperature(self._amb, self.ambient.temperature(t))
        for core, power in zip(self._cores, self._powers):
            self._net.set_power(core, power)
        self._net.step(dt)

    def steady_state(self) -> List[float]:
        """Equilibrium core temperatures under the current inputs."""
        self._conv.resistance = self.convection.resistance(self._airflow)
        for core, power in zip(self._cores, self._powers):
            self._net.set_power(core, power)
        solution = self._net.steady_state()
        return [solution[c] for c in self._cores]
