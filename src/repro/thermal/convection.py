"""Airflow-to-thermal-resistance convection model.

The out-of-band control path in the paper is: PWM duty → fan RPM →
airflow → heatsink convective resistance → die temperature.  This
module supplies the last hop.

For forced convection over a finned heatsink the Nusselt number scales
roughly like :math:`Re^{0.8}` (Dittus–Boelter exponent), i.e. the
convective conductance grows sub-linearly with airflow and saturates.
We model the sink-to-air resistance as

.. math::

    R(Q) = R_\\infty + \\frac{R_0 - R_\\infty}{1 + (Q / Q_{ref})^{\\alpha}}

with :math:`R_0` the still-air (natural convection) resistance,
:math:`R_\\infty` the asymptotic high-flow resistance and
:math:`Q_{ref}` the flow at which half the reducible resistance is
gone.  The curve is strictly decreasing in :math:`Q` — more airflow
always cools at least as well — which is the monotonicity the paper's
thermal control array relies on when it ranks fan modes by
effectiveness.

The default constants are calibrated (see DESIGN.md §5) against the
paper's operating points: a BT-class ~57 W load equilibrates ≈58 °C at
25 % duty, just above the 51 °C tDVFS threshold at 50 % duty, and just
below it at 75 % duty — which is what makes Table 1's "DVFS must act at
50/25 % but not 75 %" pattern reproducible.  The steeper-than-0.8
exponent reflects the ducted heatsink geometry where bypass flow is
recovered as speed rises.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import require_non_negative, require_positive

__all__ = ["ConvectionModel"]


@dataclass(frozen=True)
class ConvectionModel:
    """Monotone airflow → sink-to-air resistance map.

    Parameters
    ----------
    r_still:
        Resistance at zero airflow (natural convection), K/W.
    r_max_flow:
        Asymptotic resistance at infinite airflow, K/W.  Must be
        strictly less than ``r_still``.
    q_ref:
        Airflow (CFM) at which half of ``r_still - r_max_flow`` has
        been removed.
    exponent:
        Reynolds-number exponent of the correlation (default 0.8).
    """

    r_still: float = 0.95
    r_max_flow: float = 0.13
    q_ref: float = 8.0
    exponent: float = 2.0

    def __post_init__(self) -> None:
        require_positive(self.r_still, "r_still")
        require_positive(self.r_max_flow, "r_max_flow")
        require_positive(self.q_ref, "q_ref")
        require_positive(self.exponent, "exponent")
        if self.r_max_flow >= self.r_still:
            raise ConfigurationError(
                f"r_max_flow ({self.r_max_flow}) must be < r_still "
                f"({self.r_still}); otherwise more airflow would heat the part"
            )

    def resistance(self, airflow_cfm: float) -> float:
        """Sink-to-air resistance in K/W at the given airflow (CFM)."""
        q = require_non_negative(airflow_cfm, "airflow_cfm")
        span = self.r_still - self.r_max_flow
        return self.r_max_flow + span / (1.0 + (q / self.q_ref) ** self.exponent)

    def conductance(self, airflow_cfm: float) -> float:
        """Sink-to-air conductance in W/K at the given airflow."""
        return 1.0 / self.resistance(airflow_cfm)
