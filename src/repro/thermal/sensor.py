"""Digital thermal sensor model (lm-sensors emulation).

The paper reads the Athlon64's embedded digital thermal sensor through
lm-sensors at four samples per second.  Real on-die sensors are *not*
clean: they quantize (the ADT7467's remote channel resolves 0.25 °C),
they carry a few tenths of a degree of noise, and they can hold a
calibration offset.  That imperfection is load-bearing for this paper —
quantization plus noise is precisely the Type-III "jitter" that the
two-level history window must refuse to chase.

:class:`ThermalSensor` wraps a temperature source (anything with a
``die_temperature`` attribute, e.g. :class:`~repro.thermal.package.CpuPackage`)
and produces quantized, noisy, optionally lagged samples on demand.  The
sampling cadence itself is owned by the node wiring (a
:class:`~repro.sim.clock.PeriodicTask` at 4 Hz by default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from ..errors import SimulationError
from ..units import require_non_negative, require_positive

__all__ = ["TemperatureSource", "SensorParams", "ThermalSensor"]


class TemperatureSource(Protocol):
    """Anything exposing a true die temperature in °C."""

    @property
    def die_temperature(self) -> float: ...


@dataclass(frozen=True)
class SensorParams:
    """Sensor imperfection model.

    Attributes
    ----------
    quantum:
        Quantization step in °C (0.25 matches the ADT7467 remote
        channel; set 1.0 for coarse sensors, 0 to disable).
    noise_sigma:
        Standard deviation of additive Gaussian read noise, °C.
    offset:
        Static calibration offset, °C.
    lag:
        First-order sensor lag time constant in seconds (0 disables).
        Die sensors are effectively instantaneous; case sensors lag.
    """

    quantum: float = 0.25
    noise_sigma: float = 0.2
    offset: float = 0.0
    lag: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative(self.quantum, "quantum")
        require_non_negative(self.noise_sigma, "noise_sigma")
        require_non_negative(self.lag, "lag")


class ThermalSensor:
    """Quantized, noisy reader of a :class:`TemperatureSource`.

    Parameters
    ----------
    source:
        The object whose ``die_temperature`` is measured.
    params:
        Imperfection model.
    rng:
        Generator for read noise.  Pass a stream from
        :class:`~repro.sim.rng.RngStreams` for reproducibility; when
        ``None``, noise is disabled regardless of ``noise_sigma``.
    """

    def __init__(
        self,
        source: TemperatureSource,
        params: SensorParams | None = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._source = source
        self.params = params if params is not None else SensorParams()
        self._rng = rng
        self._filtered: Optional[float] = None
        self._last_sample: Optional[float] = None
        self._last_time: Optional[float] = None
        self._count = 0

    def sample(self, t: float) -> float:
        """Take one reading at simulation time ``t`` and return it (°C)."""
        true = float(self._source.die_temperature)

        if self.params.lag > 0.0:
            if self._filtered is None or self._last_time is None:
                self._filtered = true
            else:
                dt = max(0.0, t - self._last_time)
                alpha = 1.0 - np.exp(-dt / self.params.lag)
                self._filtered += alpha * (true - self._filtered)
            value = self._filtered
        else:
            value = true

        value += self.params.offset
        if self._rng is not None and self.params.noise_sigma > 0.0:
            value += float(self._rng.normal(0.0, self.params.noise_sigma))
        if self.params.quantum > 0.0:
            value = round(value / self.params.quantum) * self.params.quantum

        self._last_sample = value
        self._last_time = t
        self._count += 1
        return value

    @property
    def last_sample(self) -> float:
        """The most recent reading.

        Raises
        ------
        SimulationError
            If no sample has been taken yet.
        """
        if self._last_sample is None:
            raise SimulationError("sensor read before first sample")
        return self._last_sample

    @property
    def sample_count(self) -> int:
        """Number of readings taken so far."""
        return self._count
