"""Ambient (inlet air) temperature models.

The boundary node of every CPU package is the local ambient air.  In a
rack, that air is not constant: it drifts with the HVAC duty cycle and
it rises when neighbouring nodes dump heat into the shared airstream —
the "hot spots or pockets of elevated temperatures" the paper's
introduction motivates.  Three models are provided:

* :class:`ConstantAmbient` — fixed inlet temperature (the paper's
  single-rack testbed approximation).
* :class:`SinusoidalAmbient` — slow periodic drift (HVAC cycling).
* :class:`RackAmbient` — inlet temperature increases with the heat
  recirculated from other nodes in the same rack, producing the
  vertical thermal gradient used by the scaling experiment.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..units import require_non_negative, require_positive

__all__ = [
    "AmbientModel",
    "ConstantAmbient",
    "SinusoidalAmbient",
    "RackAmbient",
]


class AmbientModel:
    """Protocol: ambient temperature as a function of simulation time."""

    def temperature(self, t: float) -> float:
        """Inlet air temperature (°C) at simulation time ``t``."""
        raise NotImplementedError


class ConstantAmbient(AmbientModel):
    """Fixed inlet temperature.

    Parameters
    ----------
    celsius:
        The held ambient temperature.
    """

    def __init__(self, celsius: float = 28.0) -> None:
        if not -50.0 <= celsius <= 80.0:
            raise ConfigurationError(
                f"ambient {celsius!r} °C is outside the plausible [-50, 80] range"
            )
        self._celsius = float(celsius)

    def temperature(self, t: float) -> float:
        return self._celsius


class SinusoidalAmbient(AmbientModel):
    """Slow sinusoidal ambient drift around a mean.

    Models HVAC duty cycling: ``T(t) = mean + amplitude·sin(2πt/period)``.
    """

    def __init__(
        self,
        mean: float = 28.0,
        amplitude: float = 1.0,
        period: float = 600.0,
        phase: float = 0.0,
    ) -> None:
        self._mean = float(mean)
        self._amplitude = require_non_negative(amplitude, "amplitude")
        self._period = require_positive(period, "period")
        self._phase = float(phase)

    def temperature(self, t: float) -> float:
        return self._mean + self._amplitude * math.sin(
            2.0 * math.pi * t / self._period + self._phase
        )


class RackAmbient(AmbientModel):
    """Inlet temperature coupled to heat recirculating within a rack.

    Each node sees ``T = inlet + kappa · P_recirc`` where ``P_recirc``
    is the recirculated power (set by the cluster each step from the
    other nodes' dissipation) and ``kappa`` converts watts of
    recirculated heat to degrees of inlet rise.  This is the simplest
    form of the cross-interference matrices used by data-center thermal
    models (Moore et al.'s Weatherman learns exactly this map).

    Parameters
    ----------
    inlet:
        Cold-aisle supply temperature, °C.
    kappa:
        Inlet rise per recirculated watt, K/W.  Typical rack values are
        small (0.001–0.02 K/W).
    """

    def __init__(self, inlet: float = 26.0, kappa: float = 0.004) -> None:
        self._inlet = float(inlet)
        self._kappa = require_non_negative(kappa, "kappa")
        self._recirc_watts = 0.0

    def set_recirculated_power(self, watts: float) -> None:
        """Update the recirculated power seen by this node (W >= 0)."""
        self._recirc_watts = require_non_negative(watts, "recirculated power")

    @property
    def recirculated_power(self) -> float:
        """The most recently set recirculated power in watts."""
        return self._recirc_watts

    def temperature(self, t: float) -> float:
        return self._inlet + self._kappa * self._recirc_watts
