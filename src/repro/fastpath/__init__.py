"""The step compiler: a fused, cache-friendly inner loop for the engine.

Every experiment funnels through the same per-tick hot loop — component
dispatch, RC re-assembly, per-sample trace writes.  This package
compiles that loop structurally at engine start instead of interpreting
it tick by tick:

* :mod:`repro.fastpath.rc` flattens an :class:`~repro.thermal.rc.RCNetwork`
  into parallel arrays with coefficient caching keyed on link-resistance
  writes, so the common case (only the convective link moved) refreshes
  two matrix rows instead of re-walking the graph.
* :mod:`repro.fastpath.node` fuses one :class:`~repro.cluster.node.Node`'s
  per-tick sequence into a single closure over pre-bound sub-models.
* :mod:`repro.fastpath.loop` batches physics microticks between task
  boundaries — tasks fire at ≥ 1 s periods while physics runs at
  dt = 0.05 s, so up to 20 ticks run back to back with no task scan.
* :mod:`repro.fastpath.recording` buffers trace samples and flushes
  them through :meth:`~repro.sim.trace.Trace.extend`.
* :mod:`repro.fastpath.batch` stacks N independent runs into one
  structure-of-arrays stepper advanced in lockstep — one ``(N, m, m)``
  thermal solve per tick across a whole parameter sweep — with each
  run's results still bitwise identical to its own serial fastpath
  execution.

The contract is **byte-identical equivalence**: the compiled loop
performs the same IEEE-754 operations in the same order as the
reference engine, so traces, events and telemetry match bit for bit
(enforced by ``tests/test_fastpath_equivalence.py``,
``tests/test_fastpath_batch.py`` and CI).  Opt in via
``SimulationEngine(fastpath=True)``, ``RunSpec(fastpath=True)`` or
``repro run --fastpath``; batched sweeps via ``RunExecutor(batch=True)``
or ``repro run --batch``.

:mod:`~repro.fastpath.loop`, :mod:`~repro.fastpath.node` and
:mod:`~repro.fastpath.batch` are imported lazily (by
``SimulationEngine.run`` / ``repro.runtime.execute``) because they
reach back into :mod:`repro.cluster`; import them by submodule path.
"""

from __future__ import annotations

from .marker import coldpath, hotpath
from .rc import CompiledRC, compile_network
from .recording import TraceBlockWriter

__all__ = [
    "CompiledRC",
    "TraceBlockWriter",
    "coldpath",
    "compile_network",
    "hotpath",
]
