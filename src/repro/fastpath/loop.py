"""The fused engine run loop: tick batches between task boundaries.

The reference :meth:`~repro.sim.engine.SimulationEngine.run` loop pays,
every physics tick, for a Python method frame per component plus a
``maybe_fire`` modulo test per periodic task — even though tasks fire
at ≥ 1 s periods while physics runs at dt = 0.05 s.  :func:`run_fused`
computes each task's next firing tick arithmetically (from the same
integer tick counts ``maybe_fire`` uses) and runs the physics
microticks between boundaries in a tight inner loop over pre-compiled
per-component step callables.

Semantics are replicated exactly: components step in registration
order; due tasks fire in registration order after the components of
their tick; ``until`` and ``stop`` are evaluated after **every** tick
(a workload can finish on any tick); the deadline / ``max_ticks``
checks keep the reference's check order and raise the reference's
error.  Tick counts, task ``fire_count`` values and the clock state
come out identical to the reference loop.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import SimulationError
from ..sim.engine import SimulationEngine

__all__ = ["compile_steps", "run_fused"]


def compile_steps(engine: SimulationEngine) -> List[Callable[[float, float], None]]:
    """Per-component step callables, fused where the structure is known.

    :class:`~repro.cluster.node.Node` components get the fully fused
    closure from :func:`repro.fastpath.node.compile_node_step`.  A
    :class:`~repro.cluster.multicore_node.MulticoreNode` keeps its own
    reference ``step`` logic — the fused closure hard-assumes the
    2-node die/sink package — but its floorplan's RC network is
    compiled through :func:`repro.fastpath.rc.compile_network` (which
    is generic over network shape and byte-identical by the compiler's
    contract), so the N-core thermal solve still runs on the fast
    arrays.  Any other component falls back to its bound ``step``
    method (still saving the dispatch indirection of the reference
    loop).
    """
    from ..cluster.multicore_node import MulticoreNode
    from ..cluster.node import Node
    from .node import compile_node_step
    from .rc import compile_network

    steps: List[Callable[[float, float], None]] = []
    for component in engine._components:
        if type(component) is Node:
            steps.append(compile_node_step(component))
        else:
            if type(component) is MulticoreNode:
                compile_network(component.package._net)
            steps.append(component.step)
    return steps


def run_fused(
    engine: SimulationEngine,
    deadline_tick: Optional[int],
    budget: Optional[int],
    until: Optional[Callable[[], bool]],
) -> int:
    """Run the fused loop; returns the number of ticks executed.

    Mirrors the reference ``SimulationEngine.run`` loop body —
    including its stop semantics and its ``max_ticks`` error — and
    leaves the engine's clock and tasks in the identical state.
    """
    clock = engine.clock
    dt = clock.dt
    steps = compile_steps(engine)
    tasks = engine._tasks

    # Next firing tick per task: smallest T > current tick with
    # T >= phase and (T - phase) % period == 0 — the same set of ticks
    # PeriodicTask.maybe_fire fires on.
    ticks = clock.ticks
    fires: List[int] = []
    periods: List[int] = []
    for task in tasks:
        period = task._period_ticks
        phase = task._phase_ticks
        base = ticks + 1
        k = (base - phase + period - 1) // period if base > phase else 0
        fires.append(phase + k * period)
        periods.append(period)
    n_tasks = len(tasks)
    no_boundary = 1 << 62

    ticks_done = 0
    stop_now = False
    while True:
        if deadline_tick is not None and ticks >= deadline_tick:
            break
        if budget is not None and ticks_done >= budget:
            if deadline_tick is not None or until is not None:
                raise SimulationError(
                    f"max_ticks={budget} exhausted before the stop "
                    "condition was reached"
                )
            break
        # Boundary of this batch: the earliest of the next task firing,
        # the deadline and the tick budget.  All ticks up to (and
        # including) the boundary may execute without re-checking.
        boundary = min(fires) if fires else no_boundary
        if deadline_tick is not None and deadline_tick < boundary:
            boundary = deadline_tick
        if budget is not None and ticks + (budget - ticks_done) < boundary:
            boundary = ticks + (budget - ticks_done)
        # Microticks strictly before the boundary: no task can fire.
        last = boundary - 1
        while ticks < last:
            ticks += 1
            clock._ticks = ticks
            t = ticks * dt
            for f in steps:
                f(t, dt)
            ticks_done += 1
            if engine._stop_requested or (until is not None and until()):
                stop_now = True
                break
        if stop_now:
            break
        # The boundary tick: components, then any due tasks, in
        # registration order — exactly the reference step().
        ticks += 1
        clock._ticks = ticks
        t = ticks * dt
        for f in steps:
            f(t, dt)
        ticks_done += 1
        for i in range(n_tasks):
            if fires[i] == ticks:
                task = tasks[i]
                task.callback(t)
                task.fire_count += 1
                fires[i] = ticks + periods[i]
        if engine._stop_requested:
            break
        if until is not None and until():
            break
    return ticks_done
