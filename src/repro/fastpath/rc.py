"""Compiled RC-network stepper: flat arrays + coefficient caching.

The reference :meth:`repro.thermal.rc.RCNetwork.step` re-walks the
node/link graph every call: it rebuilds the conductance matrix ``G``,
the forcing vector ``b`` and the capacitance vector ``C`` from the
Python-object graph, then recomputes the stability sub-step count —
all before doing any integration.  For the 3-node CPU package stepped
20 times per second per node, that graph walk dominates the whole
simulation.

:class:`CompiledRC` compiles the structure once:

* node order, link incidence and boundary-coupling terms become flat
  parallel lists;
* ``G`` and the per-link conductances are cached and invalidated
  per-link — a resistance write on a :class:`~repro.thermal.rc.ThermalLink`
  notifies this stepper (via the link's ``_observer`` back-reference)
  and only the matrix rows of that link's free endpoints are rebuilt;
* the stability sub-step count ``n_sub`` (and sub-step ``h``) is cached
  until a resistance actually changes.

Equivalence contract: every floating-point operation the reference
path performs is reproduced here with the same operands in the same
order — matrix rows accumulate conductances in link insertion order,
the forcing vector adds boundary terms in the reference's link order,
and the integration uses the identical numpy ufunc sequence
``(b - G @ T) / C`` then ``T += h * dTdt`` (with preallocated ``out=``
buffers, which does not change the computed bits).  Free-node
temperatures and injected powers are re-read from the live network
objects each step, so external ``set_temperature`` / ``set_power``
calls behave exactly as on the reference path.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..errors import SimulationError
from ..thermal.rc import RCNetwork
from ..units import require_positive
from .marker import coldpath, hotpath

__all__ = ["CompiledRC", "compile_network"]


def _raise_diverged() -> None:
    raise SimulationError("thermal integration diverged (non-finite T)")


class CompiledRC:
    """Flat-array stepper attached to one :class:`RCNetwork`.

    Build via :func:`compile_network`, which also attaches the stepper
    to the network (``net._fast``) so ``RCNetwork.step`` delegates here.
    Structural changes to the network (``add_node`` / ``add_link``)
    detach the stepper automatically.
    """

    __slots__ = (
        "_net",
        "_links",
        "_free_names",
        "_free_nodes",
        "_m",
        "_rows",
        "_bterms",
        "_link_ends",
        "_g",
        "_diag",
        "_G",
        "_C",
        "_C_list",
        "_T",
        "_b",
        "_Gt",
        "_dT",
        "_powers",
        "_dirty_slots",
        "_all_dirty",
        "_cached_dt",
        "_n_sub",
        "_h",
    )

    def __init__(self, net: RCNetwork) -> None:
        self._net = net
        nodes = net._nodes
        self._links = list(net._links.values())
        free = [n for n in net._order if not nodes[n].is_boundary]
        index = {name: i for i, name in enumerate(free)}
        m = len(free)
        self._m = m
        self._free_names = free
        self._free_nodes = [nodes[n] for n in free]
        self._powers = net._powers

        # Per free node: incident links as (slot, other-free-index or -1),
        # in global link insertion order — the order the reference path
        # accumulates matrix entries in.
        self._rows: List[list] = [[] for _ in range(m)]
        # Boundary couplings as (free-index, slot, boundary node), in the
        # reference's b-vector accumulation order (a-side before b-side
        # of each link).
        self._bterms: List[tuple] = []
        # Per link: free indices of its endpoints (-1 = boundary side).
        self._link_ends: List[tuple] = []
        for slot, link in enumerate(self._links):
            i = index.get(link.a, -1)
            j = index.get(link.b, -1)
            self._link_ends.append((i, j))
            if i >= 0:
                self._rows[i].append((slot, j))
                if j < 0:
                    self._bterms.append((i, slot, nodes[link.b]))
            if j >= 0:
                self._rows[j].append((slot, i))
                if i < 0:
                    self._bterms.append((j, slot, nodes[link.a]))
            link._observer = self
            link._slot = slot

        self._g = [0.0] * len(self._links)
        self._diag = [0.0] * m
        self._G = np.zeros((m, m), dtype=np.float64)
        self._C = np.array(
            [nodes[n].capacitance for n in free], dtype=np.float64
        )
        self._C_list = [float(nodes[n].capacitance) for n in free]
        self._T = np.empty(m, dtype=np.float64)
        self._b = np.empty(m, dtype=np.float64)
        self._Gt = np.empty(m, dtype=np.float64)
        self._dT = np.empty(m, dtype=np.float64)

        self._dirty_slots: set = set()
        self._all_dirty = True
        self._cached_dt: float | None = None
        self._n_sub = 1
        self._h = 0.0

    # -- invalidation -----------------------------------------------------

    def mark_link_dirty(self, slot: int) -> None:
        """Invalidate the cached coefficients of the link at ``slot``."""
        self._dirty_slots.add(slot)

    def detach(self) -> None:
        """Drop the observer back-references (structure changed)."""
        for link in self._links:
            link._observer = None
            link._slot = -1

    def adopt_observer(self, observer) -> None:
        """Route this network's link-dirty notifications to ``observer``.

        Used by :mod:`repro.fastpath.batch` while a batch stepper owns
        the integration: resistance writes through the public
        :attr:`~repro.thermal.rc.ThermalLink.resistance` setter must
        reach the *batch* (which holds the live conductance stack), not
        this stepper's per-network dirty set.  Slots are untouched, so
        the adopted observer sees the same ``mark_link_dirty(slot)``
        indices this stepper would.
        """
        for link in self._links:
            link._observer = observer

    def restore_observer(self) -> None:
        """Re-point link-dirty notifications back at this stepper.

        The inverse of :meth:`adopt_observer`; callers that refreshed
        coefficients out-of-band must also set ``_all_dirty`` so the
        next :meth:`step` rebuilds from the live resistances.
        """
        for link in self._links:
            link._observer = self

    # -- coefficient refresh ----------------------------------------------

    @coldpath
    def _refresh(self, dt: float) -> None:
        """Recompute invalidated conductance rows and the sub-step cache.

        Runs only when ``dt`` changes or a resistance write dirtied a
        link — not per tick — hence ``@coldpath``: RPR010 stops hot
        reachability here and the row-rebuild allocations stay legal.
        """
        require_positive(dt, "dt")
        m = self._m
        links = self._links
        g = self._g
        if self._all_dirty:
            for slot, link in enumerate(links):
                g[slot] = 1.0 / link._resistance
            rows_to_build = range(m)
            self._all_dirty = False
            self._dirty_slots.clear()
        else:
            touched = set()
            for slot in self._dirty_slots:
                g[slot] = 1.0 / links[slot]._resistance
                i, j = self._link_ends[slot]
                if i >= 0:
                    touched.add(i)
                if j >= 0:
                    touched.add(j)
            self._dirty_slots.clear()
            rows_to_build = sorted(touched)

        G = self._G
        diag = self._diag
        for i in rows_to_build:
            row = G[i]
            row[:] = 0.0
            acc = 0.0
            for slot, j in self._rows[i]:
                gv = g[slot]
                acc += gv
                if j >= 0:
                    row[j] -= gv
            row[i] = acc
            diag[i] = acc

        # Stability sub-step, mirroring the reference arithmetic exactly:
        # h_max = 0.5 * min_i C_i / max(G_ii, 1e-300) over G_ii > 0.
        best = math.inf
        C_list = self._C_list
        for i in range(m):
            d = diag[i]
            if d > 0.0:
                lim = C_list[i] / (d if d > 1e-300 else 1e-300)
                if lim < best:
                    best = lim
        h_max = 0.5 * best
        if not math.isfinite(h_max) or h_max <= 0.0:
            h_max = dt
        n_sub = math.ceil(dt / h_max)
        if n_sub < 1:
            n_sub = 1
        self._n_sub = n_sub
        self._h = dt / n_sub
        self._cached_dt = dt

    # -- integration -------------------------------------------------------

    @hotpath
    def step(self, dt: float) -> None:
        """Advance the network by ``dt`` — bit-identical to the reference."""
        if dt != self._cached_dt or self._dirty_slots or self._all_dirty:
            self._refresh(dt)
        m = self._m
        if m == 0:
            return
        free_nodes = self._free_nodes
        free_names = self._free_names
        powers = self._powers
        T = self._T
        b = self._b
        for i in range(m):
            T[i] = free_nodes[i].temperature
            b[i] = powers[free_names[i]]
        g = self._g
        for i, slot, bnode in self._bterms:
            b[i] += g[slot] * bnode.temperature
        G = self._G
        C = self._C
        Gt = self._Gt
        dT = self._dT
        h = self._h
        matmul = np.matmul
        subtract = np.subtract
        divide = np.divide
        multiply = np.multiply
        add = np.add
        for _ in range(self._n_sub):
            matmul(G, T, out=Gt)
            subtract(b, Gt, out=dT)
            divide(dT, C, out=dT)
            multiply(dT, h, out=dT)
            add(T, dT, out=T)
        item = T.item
        isfinite = math.isfinite
        for i in range(m):
            if not isfinite(item(i)):
                _raise_diverged()
        for i in range(m):
            free_nodes[i].temperature = item(i)


def compile_network(net: RCNetwork) -> CompiledRC:
    """Attach (or return the existing) compiled stepper for ``net``."""
    fast = net._fast
    if fast is None:
        fast = CompiledRC(net)
        net._fast = fast
    return fast
